"""Table I — average and median app sizes, 2014-2018.

Paper values:

=====  ============  ===========  =========
Year   Average Size  Median Size  # Samples
=====  ============  ===========  =========
2014   13.8 MB        8.4 MB      2,840
2015   18.8 MB       12.4 MB      1,375
2016   21.6 MB       16.2 MB      3,510
2017   32.9 MB       30.0 MB      1,706
2018   42.6 MB       38.0 MB      3,178
=====  ============  ===========  =========

The corpus sampler reproduces the year-over-year upscaling trend; the
benchmark measures the sampling itself and prints measured-vs-paper
averages and medians.
"""

import statistics

from benchmarks.conftest import emit_table, render_table
from repro.workload.corpus import TABLE1_APP_SIZES, sample_year_corpus


def _sample_all_years():
    return {
        year: sample_year_corpus(year, count=TABLE1_APP_SIZES[year][2])
        for year in sorted(TABLE1_APP_SIZES)
    }


def test_table1_app_sizes(benchmark):
    corpora = benchmark.pedantic(_sample_all_years, rounds=1, iterations=1)

    rows = []
    for year, apps in corpora.items():
        sizes = [a.size_mb for a in apps]
        paper_avg, paper_med, paper_n = TABLE1_APP_SIZES[year]
        rows.append([
            str(year),
            f"{statistics.fmean(sizes):.1f}MB",
            f"{paper_avg}MB",
            f"{statistics.median(sizes):.1f}MB",
            f"{paper_med}MB",
            str(len(apps)),
        ])
    emit_table(
        "table1_app_sizes",
        render_table(
            "Table I: app sizes per year (measured vs paper)",
            ["Year", "Avg", "Avg(paper)", "Median", "Median(paper)", "#Samples"],
            rows,
        ),
    )

    # Shape assertions: the upscaling trend must hold.
    medians = [statistics.median([a.size_mb for a in apps])
               for apps in corpora.values()]
    assert medians == sorted(medians), "median size must grow year over year"
    assert medians[-1] / medians[0] > 3.5, "2018 median ~4x the 2014 median"
