"""A Shimple-like SSA intermediate representation.

BackDroid "leverage[s] Soot's Shimple IR (an IR in the Static Single
Assignment form)" (Sec. II-A).  This module defines the statement and
expression taxonomy that the paper's Sec. V enumerates as the complete set
its analyses must handle:

* statements: ``DefinitionStmt`` (with subclass ``AssignStmt``),
  ``InvokeStmt`` and ``ReturnStmt`` — plus control-flow statements
  (``IfStmt``/``GotoStmt``) so realistic method bodies with branches and
  loops can be expressed;
* expressions: ``BinopExpr``, ``CastExpr``, ``InvokeExpr``, ``NewExpr``,
  ``NewArrayExpr`` and ``PhiExpr``.

Every statement knows its *defs* and *uses*, which is all the backward
slicer and the forward propagation need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union

from repro.dex.types import FieldSignature, MethodSignature


# ======================================================================
# Values
# ======================================================================


class Value:
    """Base class for everything that can appear inside a statement."""

    def used_locals(self) -> Iterator["Local"]:
        """Yield every :class:`Local` read when evaluating this value."""
        return iter(())


@dataclass(frozen=True)
class Local(Value):
    """An SSA register, e.g. ``$r13`` or ``i0``."""

    name: str
    java_type: str = "java.lang.Object"

    def used_locals(self) -> Iterator["Local"]:
        yield self

    def __str__(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# Constants
# ----------------------------------------------------------------------


class Constant(Value):
    """Base class for compile-time constants."""


@dataclass(frozen=True)
class IntConstant(Constant):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class LongConstant(Constant):
    value: int

    def __str__(self) -> str:
        return f"{self.value}L"


@dataclass(frozen=True)
class DoubleConstant(Constant):
    value: float

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class StringConstant(Constant):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class NullConstant(Constant):
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class ClassConstant(Constant):
    """A ``const-class`` literal, e.g. ``HttpServerService.class``.

    These are the explicit-ICC parameters the two-time ICC search
    (Sec. IV-D) greps for.
    """

    class_name: str

    def __str__(self) -> str:
        return f"class \"{self.class_name}\""


# ----------------------------------------------------------------------
# References
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ThisRef(Value):
    """``@this: com.a.B`` — the receiver pseudo-parameter."""

    java_type: str

    def __str__(self) -> str:
        return f"@this: {self.java_type}"


@dataclass(frozen=True)
class ParameterRef(Value):
    """``@parameterN: T`` — a formal parameter pseudo-value."""

    index: int
    java_type: str

    def __str__(self) -> str:
        return f"@parameter{self.index}: {self.java_type}"


@dataclass(frozen=True)
class InstanceFieldRef(Value):
    """``base.<com.a.B: int f>`` — an instance field access."""

    base: Local
    fieldsig: FieldSignature

    def used_locals(self) -> Iterator[Local]:
        yield self.base

    def __str__(self) -> str:
        return f"{self.base}.{self.fieldsig.to_soot()}"


@dataclass(frozen=True)
class StaticFieldRef(Value):
    """``<com.a.B: int f>`` — a static field access."""

    fieldsig: FieldSignature

    def __str__(self) -> str:
        return self.fieldsig.to_soot()


@dataclass(frozen=True)
class ArrayRef(Value):
    """``base[index]`` — an array element access."""

    base: Local
    index: Value

    def used_locals(self) -> Iterator[Local]:
        yield self.base
        yield from self.index.used_locals()

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expr(Value):
    """Base class for right-hand-side expressions."""


@dataclass(frozen=True)
class BinopExpr(Expr):
    """An arithmetic/logic/comparison binary expression."""

    op: str
    left: Value
    right: Value

    def used_locals(self) -> Iterator[Local]:
        yield from self.left.used_locals()
        yield from self.right.used_locals()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class CastExpr(Expr):
    """``(T) value`` — a checked cast."""

    to_type: str
    value: Value

    def used_locals(self) -> Iterator[Local]:
        yield from self.value.used_locals()

    def __str__(self) -> str:
        return f"({self.to_type}) {self.value}"


class InvokeKind(enum.Enum):
    """The five Dalvik invocation kinds."""

    VIRTUAL = "virtual"
    SPECIAL = "special"
    STATIC = "static"
    INTERFACE = "interface"
    DIRECT = "direct"

    @property
    def soot_keyword(self) -> str:
        return f"{self.value}invoke"

    @property
    def dex_opcode(self) -> str:
        return f"invoke-{self.value}"


@dataclass(frozen=True)
class InvokeExpr(Expr):
    """A method invocation expression.

    ``base`` is ``None`` for static invokes.  Rendered in Soot style as
    ``virtualinvoke $r13.<com.a.B: void start()>()``.
    """

    kind: InvokeKind
    method: MethodSignature
    base: Optional[Local] = None
    args: tuple[Value, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def used_locals(self) -> Iterator[Local]:
        if self.base is not None:
            yield self.base
        for arg in self.args:
            yield from arg.used_locals()

    def __str__(self) -> str:
        rendered_args = ", ".join(str(a) for a in self.args)
        if self.base is None:
            return f"staticinvoke {self.method.to_soot()}({rendered_args})"
        return f"{self.kind.soot_keyword} {self.base}.{self.method.to_soot()}({rendered_args})"


@dataclass(frozen=True)
class NewExpr(Expr):
    """``new com.a.B`` — object allocation (constructor runs separately)."""

    class_name: str

    def __str__(self) -> str:
        return f"new {self.class_name}"


@dataclass(frozen=True)
class NewArrayExpr(Expr):
    """``new T[size]`` — array allocation."""

    element_type: str
    size: Value

    def used_locals(self) -> Iterator[Local]:
        yield from self.size.used_locals()

    def __str__(self) -> str:
        return f"new {self.element_type}[{self.size}]"


@dataclass(frozen=True)
class PhiExpr(Expr):
    """``Phi(v1, v2, ...)`` — an SSA merge of control-flow-dependent values."""

    values: tuple[Value, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    def used_locals(self) -> Iterator[Local]:
        for value in self.values:
            yield from value.used_locals()

    def __str__(self) -> str:
        return "Phi(" + ", ".join(str(v) for v in self.values) + ")"


#: Anything assignable on the left-hand side of an AssignStmt.
LValue = Union[Local, InstanceFieldRef, StaticFieldRef, ArrayRef]


# ======================================================================
# Statements
# ======================================================================


@dataclass
class Stmt:
    """Base class for IR statements.

    ``label`` marks a statement as a branch target (``IfStmt``/``GotoStmt``
    refer to labels by name).
    """

    label: Optional[str] = field(default=None, kw_only=True)

    def defs(self) -> list[LValue]:
        """L-values written by this statement."""
        return []

    def uses(self) -> list[Value]:
        """Top-level values read by this statement."""
        return []

    def used_locals(self) -> set[Local]:
        """Every local read anywhere inside this statement."""
        found: set[Local] = set()
        for value in self.uses():
            found.update(value.used_locals())
        return found

    def invoke_expr(self) -> Optional[InvokeExpr]:
        """The embedded :class:`InvokeExpr`, if this statement has one."""
        return None


class DefinitionStmt(Stmt):
    """Common base of :class:`IdentityStmt` and :class:`AssignStmt`.

    This mirrors Soot's ``DefinitionStmt``, which the paper lists as one of
    the three statement kinds its forward taint propagation tracks.
    """


@dataclass
class IdentityStmt(DefinitionStmt):
    """``r0 := @this: com.a.B`` or ``r1 := @parameter0: int``."""

    local: Local = None  # type: ignore[assignment]
    ref: Union[ThisRef, ParameterRef] = None  # type: ignore[assignment]

    def defs(self) -> list[LValue]:
        return [self.local]

    def uses(self) -> list[Value]:
        return [self.ref]

    def __str__(self) -> str:
        return f"{self.local} := {self.ref}"


@dataclass
class AssignStmt(DefinitionStmt):
    """``lhs = rhs`` — the workhorse definition statement."""

    lhs: LValue = None  # type: ignore[assignment]
    rhs: Value = None  # type: ignore[assignment]

    def defs(self) -> list[LValue]:
        return [self.lhs]

    def uses(self) -> list[Value]:
        used: list[Value] = [self.rhs]
        # Writing through a field/array reference *reads* the base object.
        if isinstance(self.lhs, (InstanceFieldRef, ArrayRef)):
            used.append(self.lhs.base)
        return used

    def invoke_expr(self) -> Optional[InvokeExpr]:
        return self.rhs if isinstance(self.rhs, InvokeExpr) else None

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass
class InvokeStmt(Stmt):
    """A bare invocation whose result (if any) is discarded."""

    invoke: InvokeExpr = None  # type: ignore[assignment]

    def uses(self) -> list[Value]:
        return [self.invoke]

    def invoke_expr(self) -> Optional[InvokeExpr]:
        return self.invoke

    def __str__(self) -> str:
        return str(self.invoke)


@dataclass
class ReturnStmt(Stmt):
    """``return`` or ``return value``."""

    value: Optional[Value] = None

    def uses(self) -> list[Value]:
        return [] if self.value is None else [self.value]

    def __str__(self) -> str:
        return "return" if self.value is None else f"return {self.value}"


@dataclass
class IfStmt(Stmt):
    """``if cond goto target`` — conditional branch to a label."""

    condition: Value = None  # type: ignore[assignment]
    target: str = ""

    def uses(self) -> list[Value]:
        return [self.condition]

    def __str__(self) -> str:
        return f"if {self.condition} goto {self.target}"


@dataclass
class GotoStmt(Stmt):
    """``goto target`` — unconditional branch to a label."""

    target: str = ""

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass
class ThrowStmt(Stmt):
    """``throw value`` — abrupt termination."""

    value: Value = None  # type: ignore[assignment]

    def uses(self) -> list[Value]:
        return [] if self.value is None else [self.value]

    def __str__(self) -> str:
        return f"throw {self.value}"


@dataclass
class NopStmt(Stmt):
    """A no-op; useful as a pure label carrier."""

    def __str__(self) -> str:
        return "nop"


# ======================================================================
# Body-level helpers
# ======================================================================


def invoked_signatures(body: Iterable[Stmt]) -> Iterator[MethodSignature]:
    """Yield the signature of every method invoked anywhere in *body*."""
    for stmt in body:
        expr = stmt.invoke_expr()
        if expr is not None:
            yield expr.method


def accessed_fields(body: Iterable[Stmt]) -> Iterator[FieldSignature]:
    """Yield the signature of every field read or written in *body*."""
    for stmt in body:
        for value in list(stmt.uses()) + list(stmt.defs()):
            if isinstance(value, (InstanceFieldRef, StaticFieldRef)):
                yield value.fieldsig


def referenced_classes(body: Iterable[Stmt]) -> Iterator[str]:
    """Yield every class named by the statements of *body*.

    This is the "class use" relation that the recursive static-initializer
    search (Sec. IV-C) explores: a class is *used* by another when the
    latter's bytecode mentions it via ``new-instance``, ``const-class``, a
    field access or a method invocation.
    """
    for stmt in body:
        expr = stmt.invoke_expr()
        if expr is not None:
            yield expr.method.class_name
        for value in list(stmt.uses()) + list(stmt.defs()):
            if isinstance(value, NewExpr):
                yield value.class_name
            elif isinstance(value, ClassConstant):
                yield value.class_name
            elif isinstance(value, (InstanceFieldRef, StaticFieldRef)):
                yield value.fieldsig.class_name
            elif isinstance(value, CastExpr):
                yield value.to_type.rstrip("[]")
