"""Dataflow facts for the forward constant and points-to propagation.

The forward analysis (Sec. V-B) maintains a fact map correlating each
variable with its dataflow fact.  Two special object structures preserve
points-to information along flow paths:

* :class:`NewObjFact` — "Each NewObj object contains a pointer to its
  constructor class, a map of member objects (in any class type) and
  their reference names";
* :class:`ArrayObjFact` — "we define an ArrayObj object to wrap the
  points-to information of array expression and its array map between
  indexes and values".

Joins (SSA phi nodes, multiple callers) produce :class:`MultiFact`
merges; anything the analysis cannot model becomes :class:`UnknownFact`
with a reason, so the final "complete dataflow representation (either a
constant or an expression)" is always printable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Union

#: Python-side representation of Java constants.
ConstValue = Union[str, int, float, bool, None]

_MERGE_WIDTH_LIMIT = 16


class Fact:
    """Base class of all dataflow facts."""

    def possible_consts(self) -> Iterator[ConstValue]:
        """Every concrete constant this fact may evaluate to."""
        return iter(())

    def possible_strings(self) -> list[str]:
        """The string constants among the possible values."""
        return [v for v in self.possible_consts() if isinstance(v, str)]

    def is_resolved(self) -> bool:
        """True when the fact carries at least one concrete value."""
        return next(self.possible_consts(), _SENTINEL) is not _SENTINEL


_SENTINEL = object()


@dataclass(frozen=True)
class ConstFact(Fact):
    """A fully resolved constant (string, number, boolean or null)."""

    value: ConstValue

    def possible_consts(self) -> Iterator[ConstValue]:
        yield self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        if self.value is None:
            return "null"
        return str(self.value)


@dataclass(frozen=True)
class UnknownFact(Fact):
    """An unmodelled value, with the reason it could not be resolved."""

    reason: str = "unmodelled"

    def __str__(self) -> str:
        return f"<unknown: {self.reason}>"


@dataclass(frozen=True)
class ExprFact(Fact):
    """A symbolic expression over unresolved inputs (printable)."""

    expression: str

    def __str__(self) -> str:
        return self.expression


@dataclass(frozen=True)
class NewObjFact(Fact):
    """Points-to fact: one allocation site with its member map.

    ``members`` maps member reference names to facts.  Constructor
    arguments are recorded as ``arg0``, ``arg1``, ...; instance fields by
    their field names.  The map is stored as a sorted tuple so the fact
    stays hashable.
    """

    class_name: str
    members: tuple[tuple[str, Fact], ...] = ()

    @staticmethod
    def make(class_name: str, members: Optional[dict[str, Fact]] = None) -> "NewObjFact":
        items = tuple(sorted((members or {}).items()))
        return NewObjFact(class_name=class_name, members=items)

    def member(self, name: str) -> Optional[Fact]:
        for key, fact in self.members:
            if key == name:
                return fact
        return None

    def with_member(self, name: str, fact: Fact) -> "NewObjFact":
        updated = {k: v for k, v in self.members}
        updated[name] = fact
        return NewObjFact.make(self.class_name, updated)

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in self.members)
        return f"new {self.class_name}({rendered})"


@dataclass(frozen=True)
class ArrayObjFact(Fact):
    """Points-to fact for arrays: element type plus index->fact map."""

    element_type: str
    elements: tuple[tuple[int, Fact], ...] = ()

    @staticmethod
    def make(element_type: str, elements: Optional[dict[int, Fact]] = None) -> "ArrayObjFact":
        items = tuple(sorted((elements or {}).items()))
        return ArrayObjFact(element_type=element_type, elements=items)

    def element(self, index: int) -> Optional[Fact]:
        for key, fact in self.elements:
            if key == index:
                return fact
        return None

    def with_element(self, index: int, fact: Fact) -> "ArrayObjFact":
        updated = {k: v for k, v in self.elements}
        updated[index] = fact
        return ArrayObjFact.make(self.element_type, updated)

    def __str__(self) -> str:
        rendered = ", ".join(f"[{k}]={v}" for k, v in self.elements)
        return f"new {self.element_type}[]{{{rendered}}}"


@dataclass(frozen=True)
class MultiFact(Fact):
    """A merge of several possible facts (phi nodes, multiple callers)."""

    options: tuple[Fact, ...]

    def possible_consts(self) -> Iterator[ConstValue]:
        seen: set[ConstValue] = set()
        for option in self.options:
            for value in option.possible_consts():
                # None is hashable; all ConstValues are.
                if value not in seen:
                    seen.add(value)
                    yield value

    def __str__(self) -> str:
        return "{" + " | ".join(str(o) for o in self.options) + "}"


def merge_facts(facts: Iterable[Fact]) -> Fact:
    """Join facts, flattening nested merges and deduplicating.

    The merge width is bounded: pathological joins collapse into an
    :class:`UnknownFact` rather than growing without bound.
    """
    flattened: list[Fact] = []
    seen: set[Fact] = set()
    for fact in facts:
        options = fact.options if isinstance(fact, MultiFact) else (fact,)
        for option in options:
            if option not in seen:
                seen.add(option)
                flattened.append(option)
    if not flattened:
        return UnknownFact("empty merge")
    if len(flattened) == 1:
        return flattened[0]
    if len(flattened) > _MERGE_WIDTH_LIMIT:
        return UnknownFact(f"merge wider than {_MERGE_WIDTH_LIMIT}")
    return MultiFact(options=tuple(flattened))


def facts_equal(left: Optional[Fact], right: Optional[Fact]) -> bool:
    """Equality helper tolerating ``None`` (used by the fixpoint loop)."""
    return left == right
