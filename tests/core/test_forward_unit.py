"""Focused unit tests for the forward propagation machinery."""

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.core import BackDroid, BackDroidConfig
from repro.core.forward import ForwardPropagation
from repro.core.slicer import BackwardSlicer
from repro.core.values import ConstFact, MultiFact
from repro.dex.builder import AppBuilder


def _analyze_single(app_builder_fn, rules=("crypto-ecb",)):
    apk = app_builder_fn()
    driver = BackDroid(BackDroidConfig(sink_rules=rules))
    sites = driver.find_sink_call_sites(apk)
    assert len(sites) == 1
    slicer = BackwardSlicer(apk)
    ssg = slicer.slice_sink(sites[0])
    return apk, ssg, ForwardPropagation(apk, ssg).run()


def _entry_app(body_fn):
    """An Activity whose onCreate body is produced by *body_fn*."""

    def build():
        app = AppBuilder()
        main = app.new_class("com.f.Main", superclass="android.app.Activity")
        main.default_constructor()
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        body_fn(oc, app)
        oc.return_void()
        manifest = Manifest("com.f")
        manifest.register("com.f.Main", ComponentKind.ACTIVITY)
        return Apk(package="com.f", classes=app.build(), manifest=manifest)

    return build


def _sink(oc, value_local):
    oc.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[value_local],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )


class TestConstantPropagation:
    def test_direct_constant(self):
        def body(oc, app):
            t = oc.const_string("AES/GCM/NoPadding")
            _sink(oc, t)

        _, _, facts = _analyze_single(_entry_app(body))
        assert facts[0] == ConstFact("AES/GCM/NoPadding")

    def test_copy_chain(self):
        def body(oc, app):
            t = oc.const_string("DES")
            a = oc.move(t)
            b = oc.move(a)
            _sink(oc, b)

        _, _, facts = _analyze_single(_entry_app(body))
        assert facts[0] == ConstFact("DES")

    def test_phi_merges_branch_values(self):
        def body(oc, app):
            flag = oc.const_int(1)
            oc.if_goto(flag, "ECB")
            a = oc.const_string("AES/GCM/NoPadding")
            oc.goto("DONE")
            oc.label("ECB")
            b = oc.const_string("AES/ECB/PKCS5Padding")
            oc.label("DONE")
            merged = oc.phi([a, b], result_type="java.lang.String")
            _sink(oc, merged)

        _, _, facts = _analyze_single(_entry_app(body))
        assert isinstance(facts[0], MultiFact)
        assert set(facts[0].possible_consts()) == {
            "AES/GCM/NoPadding", "AES/ECB/PKCS5Padding",
        }

    def test_arithmetic_mimicked(self):
        def body(oc, app):
            base = oc.const_int(8000)
            offset = oc.const_int(89)
            port = oc.binop("+", base, offset)
            text = oc.invoke_static(
                "java.lang.Integer", "toString", args=[port], params=["int"],
                returns="java.lang.String",
            )
            _sink(oc, text)

        _, _, facts = _analyze_single(_entry_app(body))
        assert facts[0] == ConstFact("8089")

    def test_contained_method_return_value(self):
        def body(oc, app):
            helper = app.new_class("com.f.Conf")
            get = helper.method("mode", returns="java.lang.String", static=True)
            value = get.const_string("AES/ECB/PKCS5Padding")
            get.return_value(value)
            t = oc.invoke_static("com.f.Conf", "mode", returns="java.lang.String")
            _sink(oc, t)

        _, _, facts = _analyze_single(_entry_app(body))
        assert facts[0] == ConstFact("AES/ECB/PKCS5Padding")

    def test_instance_field_round_trip(self):
        def body(oc, app):
            holder = app.new_class("com.f.Holder")
            holder.field("mode", "java.lang.String")
            holder.default_constructor()
            obj = oc.new_init("com.f.Holder")
            oc.put_field(obj, "com.f.Holder", "mode", "java.lang.String",
                         "AES/ECB/PKCS5Padding")
            loaded = oc.get_field(obj, "com.f.Holder", "mode", "java.lang.String")
            _sink(oc, loaded)

        _, _, facts = _analyze_single(_entry_app(body))
        assert facts[0] == ConstFact("AES/ECB/PKCS5Padding")

    def test_array_element_round_trip(self):
        def body(oc, app):
            arr = oc.new_array("java.lang.String", 2)
            oc.array_put(arr, 0, "AES/GCM/NoPadding")
            oc.array_put(arr, 1, "DES")
            loaded = oc.array_get(arr, 1, element_type="java.lang.String")
            _sink(oc, loaded)

        _, _, facts = _analyze_single(_entry_app(body))
        assert facts[0] == ConstFact("DES")

    def test_unresolved_value_reported_as_unknown(self):
        def body(oc, app):
            ext = oc.invoke_static(
                "com.other.Missing", "mystery", returns="java.lang.String"
            )
            _sink(oc, ext)

        _, _, facts = _analyze_single(_entry_app(body))
        assert not facts[0].is_resolved()
