"""On-the-fly bytecode search (the paper's key novelty, Sec. IV).

BackDroid locates caller methods *just in time* by searching the
disassembled bytecode plaintext, instead of consulting a whole-app call
graph.  The package mirrors the paper's structure:

* :mod:`repro.search.index` — the raw text-search engine over the
  dexdump plaintext, with command-level caching (Sec. IV-F);
* :mod:`repro.search.backends` — pluggable line-level scan backends
  (linear O(text) scan vs. prebuilt inverted index);
* :mod:`repro.search.basic` — the signature-based search for static /
  private / constructor callees, including child-class signatures
  (Sec. IV-A);
* :mod:`repro.search.advanced` — constructor search + forward object
  taint analysis for super classes, interfaces, callbacks and
  asynchronous flows (Sec. IV-B);
* :mod:`repro.search.clinit` — the recursive reachability search for
  static initializers (Sec. IV-C);
* :mod:`repro.search.icc` — the two-time ICC search (Sec. IV-D);
* :mod:`repro.search.lifecycle` — the on-demand lifecycle-handler search
  (Sec. IV-E);
* :mod:`repro.search.caching` / :mod:`repro.search.loops` — the
  implementation enhancements of Sec. IV-F;
* :mod:`repro.search.engine` — the orchestrator the backward slicer calls
  whenever "a caller needs to be located".
"""

from repro.search.backends import (
    BACKENDS,
    InvertedIndexBackend,
    LinearScanBackend,
    SearchBackend,
    create_backend,
)
from repro.search.common import CallChainLink, CallSite, ResolvedCaller, ResolutionResult
from repro.search.index import BytecodeSearcher, SearchHit
from repro.search.caching import SearchCommandCache, SinkReachabilityCache
from repro.search.loops import LoopDetector, LoopKind
from repro.search.engine import CallerResolutionEngine

# NOTE: repro.search.reflection is intentionally NOT imported here — it
# builds on repro.core (slicer + forward propagation), so importing it at
# package level would be circular.  Use
# ``from repro.search.reflection import ReflectionResolver`` directly.

__all__ = [
    "BACKENDS",
    "BytecodeSearcher",
    "CallChainLink",
    "InvertedIndexBackend",
    "LinearScanBackend",
    "SearchBackend",
    "create_backend",
    "CallSite",
    "CallerResolutionEngine",
    "LoopDetector",
    "LoopKind",
    "ResolutionResult",
    "ResolvedCaller",
    "SearchCommandCache",
    "SearchHit",
    "SinkReachabilityCache",
]
