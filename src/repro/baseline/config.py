"""Baseline configuration, timeouts and failure modes.

Amandroid and FlowDroid "need to configure a set of parameters to balance
their performance and precision" (Sec. VI-A).  This module captures the
knobs the paper talks about, each mapped to an observable behaviour of
the baseline analyzers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

#: Amandroid's ``liblist.txt``: packages whose analysis is skipped by
#: default ("Amandroid by default skipped the analysis of 139 popular
#: libraries, such as AdMob, Flurry, and Facebook" — Sec. I; the missed
#: detections of Sec. VI-C involved Amazon, Tencent and Facebook
#: packages).  A representative subset is enough for the reproduction.
LIBLIST: tuple[str, ...] = (
    "com.google.ads.",
    "com.google.android.gms.",
    "com.flurry.",
    "com.facebook.",
    "com.amazon.",
    "com.tencent.",
    "com.admob.",
    "com.unity3d.",
    "com.mopub.",
    "com.chartboost.",
    "com.inmobi.",
    "com.millennialmedia.",
    "com.adjust.",
    "com.appsflyer.",
    "io.fabric.",
    "com.crashlytics.",
)


class AnalysisTimeout(Exception):
    """The analysis exceeded its wall-clock budget."""


class AnalysisError(Exception):
    """An internal analyzer failure (the paper's "occasional errors",
    e.g. "Could not find procedure" / "key not found")."""


@dataclass
class Deadline:
    """A wall-clock budget checked cooperatively inside analysis loops."""

    timeout_seconds: Optional[float]
    started_at: float = field(default_factory=time.perf_counter)

    def check(self) -> None:
        if self.timeout_seconds is None:
            return
        if time.perf_counter() - self.started_at > self.timeout_seconds:
            raise AnalysisTimeout(
                f"exceeded budget of {self.timeout_seconds:.1f}s"
            )

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at


@dataclass
class AmandroidConfig:
    """The default Amandroid-style configuration (its ``config.ini``).

    Every flag corresponds to a behaviour the paper observed:

    * ``skip_liblist`` — sinks inside skipped packages are never analyzed
      (8 of the 54 BackDroid-only detections, Sec. VI-C);
    * ``async_edges`` / ``callback_edges`` — the hardwired implicit-flow
      maps; ``Executor.execute`` is absent and ``AsyncTask`` /
      ``setOnClickListener`` handling is "unrobust" (8 of the 54);
    * ``treat_unregistered_components_as_entries`` — the cause of the six
      false positives whose flows start in Activities "not in manifest";
    * ``unresolved_procedure_tolerance`` — apps with more dangling
      references than this raise :class:`AnalysisError` (10 of the 54);
    * ``timeout_seconds`` — the per-app budget (the paper gave Amandroid
      300 minutes; benchmarks scale this down, keeping the ratio to
      BackDroid's runtime).
    """

    skip_liblist: bool = True
    liblist: tuple[str, ...] = LIBLIST
    #: (class, method) -> target method name.  The default map knows
    #: Thread.start and Handler.post but NOT Executor.execute, and its
    #: AsyncTask/onClick handling can be disabled per-app by the
    #: robustness knob below.
    async_edges: dict[tuple[str, str], str] = field(
        default_factory=lambda: {
            ("java.lang.Thread", "start"): "run",
            ("android.os.Handler", "post"): "run",
            ("android.os.Handler", "postDelayed"): "run",
            ("android.os.AsyncTask", "execute"): "doInBackground",
            ("java.util.Timer", "schedule"): "run",
        }
    )
    #: registration method name -> (listener interface, callback method).
    callback_edges: dict[str, tuple[str, str]] = field(
        default_factory=lambda: {
            "setOnClickListener": ("android.view.View$OnClickListener", "onClick"),
            "setOnLongClickListener": (
                "android.view.View$OnLongClickListener",
                "onLongClick",
            ),
        }
    )
    #: "Unrobust handling of certain implicit flows": when an app's
    #: dispatch site count for AsyncTask/onClick exceeds this, the extra
    #: sites are silently dropped (deterministic, inspectable stand-in
    #: for the flakiness the paper observed).
    implicit_flow_site_budget: int = 4
    treat_unregistered_components_as_entries: bool = True
    unresolved_procedure_tolerance: int = 2
    timeout_seconds: Optional[float] = 30.0
    #: Fixpoint bound for the whole-app constant propagation.
    max_passes: int = 6


@dataclass
class FlowDroidConfig:
    """FlowDroid-style call-graph generation settings (Sec. II-C)."""

    #: "geomPTA" (context-sensitive, the paper's choice) or "SPARK"
    #: (context-insensitive, cheaper).
    callgraph_algorithm: str = "geomPTA"
    #: geomPTA's context-refinement rounds (its extra cost over SPARK).
    context_rounds: int = 3
    timeout_seconds: Optional[float] = 30.0
