"""Unit tests for the Shimple-like IR statements and expressions."""

from repro.dex.instructions import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    ClassConstant,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InstanceFieldRef,
    IntConstant,
    InvokeExpr,
    InvokeKind,
    InvokeStmt,
    Local,
    NewArrayExpr,
    NewExpr,
    NullConstant,
    ParameterRef,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    StringConstant,
    ThisRef,
    accessed_fields,
    invoked_signatures,
    referenced_classes,
)
from repro.dex.types import FieldSignature, MethodSignature


def _local(name="r0", java_type="java.lang.Object"):
    return Local(name, java_type)


class TestValues:
    def test_local_uses_itself(self):
        local = _local()
        assert list(local.used_locals()) == [local]

    def test_constants_use_nothing(self):
        for const in (IntConstant(1), StringConstant("x"), NullConstant(),
                      ClassConstant("com.a.B")):
            assert list(const.used_locals()) == []

    def test_instance_field_ref_uses_base(self):
        base = _local("r1")
        ref = InstanceFieldRef(base, FieldSignature("com.a.B", "f", "int"))
        assert list(ref.used_locals()) == [base]

    def test_static_field_ref_uses_nothing(self):
        ref = StaticFieldRef(FieldSignature("com.a.B", "f", "int"))
        assert list(ref.used_locals()) == []

    def test_array_ref_uses_base_and_index(self):
        base, idx = _local("arr"), _local("i", "int")
        ref = ArrayRef(base, idx)
        assert set(ref.used_locals()) == {base, idx}

    def test_binop_uses_both_sides(self):
        left, right = _local("a", "int"), _local("b", "int")
        assert set(BinopExpr("+", left, right).used_locals()) == {left, right}

    def test_invoke_expr_uses_base_and_args(self):
        base, arg = _local("obj"), _local("arg")
        expr = InvokeExpr(
            InvokeKind.VIRTUAL,
            MethodSignature("com.a.B", "m", ("java.lang.Object",), "void"),
            base=base,
            args=(arg,),
        )
        assert set(expr.used_locals()) == {base, arg}

    def test_static_invoke_has_no_base(self):
        expr = InvokeExpr(
            InvokeKind.STATIC, MethodSignature("com.a.B", "m", (), "void")
        )
        assert expr.base is None
        assert "staticinvoke" in str(expr)

    def test_phi_uses_all_incoming(self):
        a, b = _local("a"), _local("b")
        assert set(PhiExpr((a, b)).used_locals()) == {a, b}

    def test_invoke_expr_soot_rendering(self):
        # Matches the call-site statement shown in Fig. 3.
        expr = InvokeExpr(
            InvokeKind.VIRTUAL,
            MethodSignature(
                "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
            ),
            base=_local("$r13"),
        )
        assert str(expr) == (
            "virtualinvoke $r13.<com.connectsdk.service.netcast."
            "NetcastHttpServer: void start()>()"
        )


class TestStatements:
    def test_identity_stmt(self):
        local = _local("r0", "com.a.B")
        stmt = IdentityStmt(local=local, ref=ThisRef("com.a.B"))
        assert stmt.defs() == [local]
        assert str(stmt) == "r0 := @this: com.a.B"

    def test_identity_param(self):
        local = _local("r1", "int")
        stmt = IdentityStmt(local=local, ref=ParameterRef(0, "int"))
        assert str(stmt) == "r1 := @parameter0: int"

    def test_assign_defs_and_uses(self):
        lhs, rhs = _local("x", "int"), _local("y", "int")
        stmt = AssignStmt(lhs=lhs, rhs=rhs)
        assert stmt.defs() == [lhs]
        assert stmt.used_locals() == {rhs}

    def test_field_store_reads_base(self):
        base, val = _local("obj"), _local("v")
        ref = InstanceFieldRef(base, FieldSignature("com.a.B", "f", "int"))
        stmt = AssignStmt(lhs=ref, rhs=val)
        assert stmt.used_locals() == {base, val}
        assert stmt.defs() == [ref]

    def test_invoke_stmt_exposes_invoke_expr(self):
        expr = InvokeExpr(InvokeKind.STATIC, MethodSignature("com.a.B", "m", (), "void"))
        stmt = InvokeStmt(invoke=expr)
        assert stmt.invoke_expr() is expr

    def test_assign_from_invoke_exposes_invoke_expr(self):
        expr = InvokeExpr(
            InvokeKind.STATIC, MethodSignature("com.a.B", "m", (), "int")
        )
        stmt = AssignStmt(lhs=_local("x", "int"), rhs=expr)
        assert stmt.invoke_expr() is expr

    def test_plain_assign_has_no_invoke_expr(self):
        stmt = AssignStmt(lhs=_local("x"), rhs=IntConstant(3))
        assert stmt.invoke_expr() is None

    def test_return_variants(self):
        assert ReturnStmt().uses() == []
        value = _local("v")
        assert ReturnStmt(value=value).uses() == [value]
        assert str(ReturnStmt()) == "return"

    def test_branches(self):
        cond = _local("c", "boolean")
        assert IfStmt(condition=cond, target="L1").uses() == [cond]
        assert GotoStmt(target="L2").uses() == []

    def test_label_carrier(self):
        stmt = GotoStmt(target="L1", label="HEAD")
        assert stmt.label == "HEAD"


class TestBodyHelpers:
    def _body(self):
        sig = MethodSignature("com.a.Helper", "help", (), "void")
        field = FieldSignature("com.a.Conf", "PORT", "int")
        return [
            AssignStmt(lhs=_local("x"), rhs=NewExpr("com.a.Obj")),
            AssignStmt(lhs=_local("p", "int"), rhs=StaticFieldRef(field)),
            AssignStmt(lhs=_local("k"), rhs=ClassConstant("com.a.Target")),
            AssignStmt(lhs=_local("c"), rhs=CastExpr("com.a.Shape", _local("x"))),
            InvokeStmt(invoke=InvokeExpr(InvokeKind.STATIC, sig)),
            AssignStmt(lhs=_local("arr"), rhs=NewArrayExpr("int", IntConstant(4))),
            ReturnStmt(),
        ]

    def test_invoked_signatures(self):
        sigs = list(invoked_signatures(self._body()))
        assert sigs == [MethodSignature("com.a.Helper", "help", (), "void")]

    def test_accessed_fields(self):
        fields = list(accessed_fields(self._body()))
        assert fields == [FieldSignature("com.a.Conf", "PORT", "int")]

    def test_referenced_classes_covers_all_mention_kinds(self):
        classes = set(referenced_classes(self._body()))
        # new-instance, static field class, const-class, cast and invoke
        # declaring class are all "class uses" for the clinit search.
        assert {"com.a.Obj", "com.a.Conf", "com.a.Target", "com.a.Shape",
                "com.a.Helper"} <= classes
