"""FlowDroid-style call-graph-only generation (the Fig. 1 experiment).

Sec. II-C measures how long the *call graph alone* takes to build for
modern apps: FlowDroid decouples call-graph generation from its taint
analysis, and with the context-sensitive geomPTA algorithm "24% apps
failed even after running for 5 hours each".

The generator here builds the same whole-app graph as the Amandroid-style
baseline and then, when configured with ``geomPTA``, performs the
context-refinement rounds that give geomPTA its precision — and its cost:
each round revisits every reachable method's dispatch sites and
re-resolves them against the (growing) set of allocated receiver types
per calling context.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.android.apk import Apk
from repro.baseline.callgraph import CallGraph, _cha_targets, build_whole_app_callgraph
from repro.baseline.config import (
    AmandroidConfig,
    AnalysisError,
    AnalysisTimeout,
    Deadline,
    FlowDroidConfig,
)


@dataclass
class CgReport:
    """The outcome of one call-graph-only generation run."""

    package: str
    generation_seconds: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    reachable_methods: int = 0
    edges: int = 0
    algorithm: str = "geomPTA"

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None


class FlowDroidStyleCallGraphGenerator:
    """Builds whole-app call graphs, SPARK- or geomPTA-flavoured."""

    def __init__(self, config: Optional[FlowDroidConfig] = None) -> None:
        self.config = config if config is not None else FlowDroidConfig()

    def generate(self, apk: Apk) -> CgReport:
        report = CgReport(package=apk.package, algorithm=self.config.callgraph_algorithm)
        started = time.perf_counter()
        deadline = Deadline(self.config.timeout_seconds)
        # FlowDroid analyzes libraries too (no liblist) and takes every
        # component as an entry; IccTA is not launched (Sec. II-C), so no
        # inter-component edges are added.
        cg_config = AmandroidConfig(
            skip_liblist=False,
            treat_unregistered_components_as_entries=True,
            unresolved_procedure_tolerance=1 << 30,
            timeout_seconds=None,
        )
        try:
            graph = build_whole_app_callgraph(apk, cg_config, deadline)
            if self.config.callgraph_algorithm == "geomPTA":
                self._context_refinement(apk, graph, deadline)
            report.reachable_methods = len(graph.reachable)
            report.edges = graph.edge_count
        except AnalysisTimeout:
            report.timed_out = True
        except AnalysisError as failure:  # pragma: no cover - defensive
            report.error = str(failure)
        report.generation_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _context_refinement(
        self, apk: Apk, graph: CallGraph, deadline: Deadline
    ) -> None:
        """geomPTA's extra work: per-context dispatch re-resolution.

        Each round walks every reachable method, re-resolves each of its
        dispatch sites, and intersects the targets with the receiver
        types observed for the calling context.  The precision gain is
        irrelevant here (Fig. 1 measures cost); the per-round cost —
        proportional to methods × call sites × contexts — is the point.
        """
        pool = apk.full_pool
        contexts: dict[str, set[str]] = {}
        for _ in range(self.config.context_rounds):
            for sig in graph.reachable:
                deadline.check()
                method = pool.resolve_method(sig)
                if method is None or not method.has_body:
                    continue
                for stmt in method.body:
                    expr = stmt.invoke_expr()
                    if expr is None:
                        continue
                    targets = _cha_targets(pool, expr.method, expr.kind)
                    bucket = contexts.setdefault(expr.method.class_name, set())
                    for target in targets:
                        bucket.add(target.declaring_class)
