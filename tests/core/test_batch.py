"""Tests for the corpus-scale batch driver."""

import os

import pytest

from repro.core import BackDroidConfig, run_batch
from repro.core.batch import (
    AppOutcome,
    BatchResult,
    analyze_spec,
    resolve_worker_count,
)
from repro.workload.corpus import benchmark_app_spec, year_app_spec
from repro.workload.generator import AppSpec


def _specs(count=4, scale=0.05):
    return [benchmark_app_spec(i, scale=scale) for i in range(count)]


class TestAnalyzeSpec:
    def test_single_spec_outcome(self):
        outcome = analyze_spec(_specs(1)[0])
        assert outcome.ok
        assert outcome.package == "com.bench.app000"
        assert outcome.sink_count > 0
        assert outcome.seconds > 0.0

    def test_error_captured_not_raised(self):
        bad = AppSpec(package="com.broken", patterns=(("no-such",),))
        outcome = analyze_spec(bad)
        assert not outcome.ok
        assert outcome.package == "com.broken"
        assert outcome.error

    def test_backend_recorded(self):
        outcome = analyze_spec(
            _specs(1)[0], BackDroidConfig(search_backend="indexed")
        )
        assert outcome.backend == "indexed"


class TestRunBatch:
    def test_serial_and_thread_agree(self):
        specs = _specs(3)
        serial = run_batch(specs, executor="serial")
        threaded = run_batch(specs, executor="thread", max_workers=3)
        assert [o.package for o in serial.outcomes] == \
            [o.package for o in threaded.outcomes]
        assert [o.findings for o in serial.outcomes] == \
            [o.findings for o in threaded.outcomes]
        assert serial.executor == "serial" and threaded.executor == "thread"

    def test_process_pool_roundtrip(self):
        specs = _specs(2)
        result = run_batch(specs, executor="process", max_workers=2)
        assert result.app_count == 2
        assert not result.failures
        assert [o.package for o in result.outcomes] == \
            [s.package for s in specs]

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            run_batch(_specs(1), executor="quantum")

    def test_order_preserved_and_progress_called(self):
        specs = _specs(4)
        seen = []
        result = run_batch(
            specs, executor="thread", max_workers=4, progress=seen.append
        )
        assert [o.package for o in result.outcomes] == \
            [s.package for s in specs]
        assert sorted(o.package for o in seen) == \
            sorted(s.package for s in specs)

    def test_failure_isolated_from_batch(self):
        specs = _specs(2)
        specs.insert(1, AppSpec(package="com.broken", patterns=(("bad",),)))
        result = run_batch(specs, executor="thread")
        assert len(result.failures) == 1
        assert len(result.analyzed) == 2
        assert result.failures[0].package == "com.broken"

    def test_year_specs_are_analyzable(self):
        specs = [year_app_spec(2016, i, scale=0.05) for i in range(2)]
        result = run_batch(specs, executor="serial")
        assert not result.failures
        assert all(o.package.startswith("com.corpus.y2016") for o in result.outcomes)
        assert all(o.sink_count > 0 for o in result.outcomes)


class TestAggregates:
    def test_aggregate_statistics(self):
        result = run_batch(_specs(4), executor="serial")
        assert result.app_count == 4
        assert result.total_sinks == sum(o.sink_count for o in result.outcomes)
        assert result.mean_seconds > 0.0
        assert result.median_seconds > 0.0
        assert 0.0 <= result.mean_search_cache_rate <= 1.0
        assert result.wall_seconds >= 0.0

    def test_render_contains_per_app_and_aggregate(self):
        result = run_batch(_specs(3), executor="serial")
        text = result.render()
        for outcome in result.outcomes:
            assert outcome.package in text
        assert "wall time" in text
        assert "cache rates" in text
        assert "findings" in text
        assert "3 apps" in text

    def test_empty_batch_renders(self):
        result = BatchResult()
        assert result.mean_seconds == 0.0
        assert "0 apps" in result.render()

    def test_bounded_cache_records_evictions(self):
        config = BackDroidConfig(search_cache_max_entries=2)
        outcome = analyze_spec(_specs(1)[0], config)
        assert outcome.ok
        assert outcome.search_cache_evictions > 0


class TestWorkerCounts:
    """The reported pool size comes from public inputs, not from the
    executor's private ``_max_workers`` attribute."""

    def test_explicit_workers_reported(self):
        result = run_batch(_specs(2), executor="thread", max_workers=3)
        assert result.workers == 3

    def test_serial_reports_one_worker(self):
        assert run_batch(_specs(1), executor="serial").workers == 1
        assert resolve_worker_count("serial", max_workers=8) == 1

    def test_default_thread_count_matches_stdlib_formula(self):
        expected = min(32, (os.cpu_count() or 1) + 4)
        assert resolve_worker_count("thread") == expected
        assert run_batch(_specs(1), executor="thread").workers == expected

    def test_default_process_count_matches_stdlib_formula(self):
        assert resolve_worker_count("process") == (os.cpu_count() or 1)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_worker_count("quantum")


class TestStoreReporting:
    def test_store_line_only_rendered_when_enabled(self, tmp_path):
        plain = run_batch(_specs(2), executor="serial")
        assert "store" not in plain.render()

        config = BackDroidConfig(
            store_dir=str(tmp_path / "s"), store_mode="full"
        )
        cold = run_batch(_specs(2), config, executor="serial")
        assert "store          : 0 hit(s) / 2 miss(es)" in cold.render()

        warm = run_batch(_specs(2), config, executor="serial")
        assert warm.store_hits == 2 and warm.store_misses == 0
        assert warm.warm_hit_rate == 1.0
        assert "store          : 2 hit(s) / 0 miss(es) (100% warm)" \
            in warm.render()
        assert "[warm]" in warm.render()

    def test_index_restores_counted(self, tmp_path):
        config = BackDroidConfig(
            search_backend="indexed",
            store_dir=str(tmp_path / "s"),
            store_mode="index",
        )
        cold = run_batch(_specs(2), config, executor="serial")
        warm = run_batch(_specs(2), config, executor="serial")
        assert cold.index_restores == 0
        assert warm.index_restores == 2
        assert "2 restored index(es)" in warm.render()


class TestRequests:
    def test_run_batch_with_request_overrides_targets(self):
        from repro.api import AnalysisRequest

        specs = _specs(3)
        default = run_batch(specs, executor="serial")
        crypto_only = run_batch(
            specs,
            executor="serial",
            request=AnalysisRequest(
                rules=("crypto-ecb",), backend="indexed"
            ),
        )
        assert crypto_only.backend == "indexed"
        for outcome in crypto_only.analyzed:
            assert outcome.backend == "indexed"
            assert {rule for rule, _ in outcome.findings} <= {"crypto-ecb"}
        # The override is a restriction of the default rule set.
        assert crypto_only.total_sinks <= default.total_sinks

    def test_analyze_spec_shares_sessions_across_requests(self):
        from repro.api import AnalysisRequest, SessionCache
        from repro.core.backdroid import BackDroidConfig

        spec = _specs(1)[0]
        config = BackDroidConfig(search_backend="indexed")
        sessions = SessionCache()
        first = analyze_spec(
            spec, config,
            request=AnalysisRequest(rules=("crypto-ecb",)),
            sessions=sessions,
        )
        second = analyze_spec(
            spec, config,
            request=AnalysisRequest(rules=("ssl-verifier",)),
            sessions=sessions,
        )
        assert first.ok and second.ok
        # The second, differently-targeted run reused the warm session's
        # index: zero build time without any artifact store.
        assert second.index_build_seconds == 0.0
        assert sessions.describe()["hits"] == 1
        assert len(sessions) == 1

    def test_duplicate_specs_reuse_one_session_in_serial_batch(self):
        from repro.core.backdroid import BackDroidConfig

        spec = _specs(1)[0]
        config = BackDroidConfig(search_backend="indexed")
        result = run_batch([spec, spec], config=config, executor="serial")
        assert all(o.ok for o in result.outcomes)
        builds = [o.index_build_seconds for o in result.outcomes]
        # One build at most: the duplicate rides the cached session.
        assert sum(1 for b in builds if b > 0) <= 1
