"""Content-addressed shard grouping for the artifact store.

Real-world apps embed largely identical library/framework code (the
paper's Table I corpus is dominated by shared SDKs), so per-app
monolithic artifacts duplicate the same token streams and posting lists
across the whole store.  This module splits one app's disassembly into
**shard groups** — maximal runs of consecutively rendered classes that
share a library prefix — and gives each group a *position-independent*
content key, so two apps embedding the same library hash its group to
the same shard no matter where the library lands in either app's
rendered text.

Position independence is what makes cross-app dedup possible: the raw
rendered lines of a class differ between apps (dexdump-style ``Class
#N`` counters, interned ``// method@NNNN`` ids, absolute addresses), but
the *token stream* the search backends are built from carries none of
that — only signatures, descriptors and literals.  A shard therefore
stores the group's tokens with line numbers relative to the group start,
plus a prefolded mini-index (vocabulary, posting lists, string-token
ids) over those relative lines.

Composition is exact: concatenating a manifest's groups in render order,
re-basing each shard's relative lines onto the group's recorded start
line, reproduces the app's token stream byte for byte — and merging the
mini-indexes in the same order reproduces a freshly built
:class:`~repro.search.backends.indexed.TokenIndex` structure for
structure (the parity suite enforces equality on ``vocab``,
``postings``, ``exact``, ``containing`` and the string-id list).
"""

from __future__ import annotations

import hashlib
import json
import types
from dataclasses import dataclass

from repro.dex.disassembler import Disassembly, LineToken
from repro.search.backends.indexed import TokenIndex

#: The *content-address* version: feeds every app key and shard key.
#: Deliberately decoupled from the store's container FORMAT_VERSION —
#: v3 changed only the shard *encoding* (binary sections instead of
#: JSON), not the logical content, so v2 JSON shards and v3 binary
#: shards of the same class group share one sha and one manifest
#: reference.  Bump this only when the hashed content itself changes
#: (token shapes, line-count semantics), which orphans every stored
#: entry.
KEY_VERSION = 2


def group_label(class_name: str) -> str:
    """The library-fingerprint label of one class.

    The first two dot-separated package segments (``com.lge.app1.Main``
    -> ``com.lge``) — the granularity at which real apps vendor
    libraries.  Classes sharing a label render contiguously (the
    disassembler sorts classes by name, and names under one package
    prefix are lexicographically contiguous), so one label yields one
    group per app.
    """
    parts = class_name.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else class_name


@dataclass(frozen=True)
class ShardGroup:
    """One contiguous class group, with group-relative tokens.

    ``tokens`` holds ``(rel_line, kind, text)`` triples where
    ``rel_line = absolute_line - start_line``; identical library code
    yields identical triples in every app that embeds it.
    """

    label: str
    start_line: int
    line_count: int
    tokens: tuple[tuple[int, str, str], ...]

    @property
    def end_line(self) -> int:
        """The exclusive end of the group's line range."""
        return self.start_line + self.line_count

    def canonical_bytes(self) -> bytes:
        """The group's canonical token serialization, computed once.

        One JSON dump of the whole token list: C-speed, and any
        structural ambiguity (kind/text containing separators) is
        handled by JSON string escaping.  Cached on the group object so
        a save that hashes the group and anything downstream that needs
        the same bytes (verification replay, legacy-JSON encoding)
        serializes the token list exactly once per group.
        """
        cached = self.__dict__.get("_canonical_bytes")
        if cached is None:
            cached = json.dumps(
                self.tokens,  # tuples serialize as JSON arrays
                separators=(",", ":"),
                ensure_ascii=True,
            ).encode("utf-8", "surrogatepass")
            object.__setattr__(self, "_canonical_bytes", cached)
        return cached


def partition_disassembly(disassembly: Disassembly) -> list[ShardGroup]:
    """Split a disassembly into library-prefix shard groups.

    Consecutive :class:`~repro.dex.disassembler.ClassSpan` entries with
    the same :func:`group_label` merge into one group.  A disassembly
    without class spans (hand-built test doubles) degrades to a single
    app-wide group, so every store code path works on any
    :class:`Disassembly` — it just stops deduplicating.
    """
    spans = getattr(disassembly, "class_spans", None) or []
    tokens = disassembly.tokens
    if not spans:
        whole = tuple(
            (t.line_no, t.kind, t.text) for t in tokens
        )
        return [ShardGroup("app", 0, len(disassembly.lines), whole)]

    # Merge consecutive spans sharing a label into (label, start, end).
    ranges: list[list] = []
    for span in spans:
        label = group_label(span.class_name)
        if ranges and ranges[-1][0] == label and ranges[-1][2] == span.start_line:
            ranges[-1][2] = span.end_line
        else:
            ranges.append([label, span.start_line, span.end_line])

    # Tokens are emitted in line order, so one forward sweep assigns
    # each token to its group.
    groups: list[ShardGroup] = []
    cursor = 0
    for label, start, end in ranges:
        rel: list[tuple[int, str, str]] = []
        while cursor < len(tokens) and tokens[cursor].line_no < end:
            token = tokens[cursor]
            if token.line_no >= start:
                rel.append((token.line_no - start, token.kind, token.text))
            cursor += 1
        groups.append(ShardGroup(label, start, end - start, tuple(rel)))
    return groups


def shard_key(group: ShardGroup, key_version: int = KEY_VERSION) -> str:
    """The content address of one shard group.

    Hashes the group's relative token triples, its rendered line count
    (later groups' offsets depend on it) and the :data:`KEY_VERSION` —
    but *not* its label or absolute position, so identical library code
    dedups across apps regardless of where each app renders it, and
    *not* the container format, so a JSON shard and its binary
    migration share one content address.
    """
    digest = hashlib.sha256()
    digest.update(f"backdroid-shard-v{key_version}\n".encode())
    digest.update(str(group.line_count).encode())
    digest.update(b"\n")
    digest.update(group.canonical_bytes())
    return digest.hexdigest()


def fold_group(
    tokens,
) -> tuple[list[str], list[list[int]], list[int], dict[str, list[int]]]:
    """Fold one group's tokens into a mini-index.

    Delegates to :class:`TokenIndex` over the group-relative tokens, so
    there is exactly one authoritative fold in the codebase — shard
    mini-indexes are *by construction* what a fresh index would build
    for the group, and can never drift from it.  Returns ``(vocab,
    postings, string_ids, containing)`` over group-relative lines and
    group-local token ids.
    """
    index = TokenIndex(
        types.SimpleNamespace(
            tokens=[
                LineToken(rel_line, kind, text)
                for rel_line, kind, text in tokens
            ],
            lines=[],
        )
    )
    return index.vocab, index.postings, index._string_ids, index.containing


def shard_payload(group: ShardGroup, key: str, format_version: int) -> dict:
    """The JSON payload published for one shard.

    Carries both restore products: the relative token stream (composed
    back into per-app token streams) and the prefolded mini-index —
    vocabulary, posting lists, string ids and the local containment map
    (merged into per-app structures without re-folding any token or
    re-running the containment regexes).
    """
    vocab, postings, string_ids, containing = fold_group(group.tokens)
    return {
        "version": format_version,
        "key": key,
        "line_count": group.line_count,
        "tokens": [[rel, kind, text] for rel, kind, text in group.tokens],
        "vocab": vocab,
        "postings": postings,
        "string_ids": string_ids,
        "containing": containing,
    }


def tokens_from_shard(payload: dict) -> tuple[tuple[int, str, str], ...]:
    """The relative token triples a shard payload carries.

    Raises ``KeyError``/``TypeError``/``ValueError`` on shape mismatch
    so the store can classify the shard as corrupt.
    """
    return tuple(
        (int(rel), str(kind), str(text))
        for rel, kind, text in payload["tokens"]
    )


def compose_tokens(parts: list[tuple[int, dict]]) -> list[LineToken]:
    """Rebase shard token streams onto absolute lines, in group order.

    ``parts`` is ``(start_line, shard_payload)`` per manifest group.
    The result is byte-identical to the original
    ``disassembly.tokens`` list the shards were split from.
    """
    tokens: list[LineToken] = []
    for start_line, payload in parts:
        for rel, kind, text in tokens_from_shard(payload):
            tokens.append(LineToken(start_line + rel, kind, text))
    return tokens


def compose_index(parts: list[tuple[int, dict]]) -> TokenIndex:
    """Merge shard mini-indexes into one app-level :class:`TokenIndex`.

    Groups are merged in manifest (render) order, so the merged
    vocabulary reproduces the global first-appearance order a fresh
    fold would assign; posting lists are re-based per group; and the
    containment map is merged by remapping each shard's local token
    ids and sorting the union — exact because a fresh build's bucket
    for any substring is precisely the ascending list of every token
    id whose text contains it (:func:`_containment_keys` yields each
    substring at most once per token).  The composed index is
    structure-for-structure identical to a fresh build, and reports
    ``restored=True`` / ``build_seconds == 0.0``.

    Raises ``KeyError``/``TypeError``/``ValueError`` on any payload
    shape mismatch, mirroring :meth:`TokenIndex.from_payload`.
    """
    vocab: list[str] = []
    postings: list[list[int]] = []
    string_ids: list[int] = []
    exact: dict[str, int] = {}
    containing_sets: dict[str, set[int]] = {}
    for start_line, payload in parts:
        local_vocab = [str(text) for text in payload["vocab"]]
        local_postings = payload["postings"]
        if len(local_postings) != len(local_vocab):
            raise ValueError("shard postings/vocab length mismatch")
        local_strings = {int(tid) for tid in payload["string_ids"]}
        remap: list[int] = []
        for local_tid, text in enumerate(local_vocab):
            tid = exact.get(text)
            if tid is None:
                tid = len(vocab)
                exact[text] = tid
                vocab.append(text)
                postings.append([])
                if local_tid in local_strings:
                    string_ids.append(tid)
            remap.append(tid)
            posting = postings[tid]
            for rel in local_postings[local_tid]:
                line_no = start_line + int(rel)
                if not posting or posting[-1] != line_no:
                    posting.append(line_no)
        for sub, local_tids in payload["containing"].items():
            bucket = containing_sets.setdefault(str(sub), set())
            for local_tid in local_tids:
                bucket.add(remap[local_tid])

    index = TokenIndex.__new__(TokenIndex)
    index.restored = True
    index.patched_groups = 0
    index.vocab = vocab
    index.postings = postings
    index.exact = exact
    index._string_ids = string_ids
    index.containing = {
        sub: sorted(bucket) for sub, bucket in containing_sets.items()
    }
    index._joined_vocab = None
    index._joined_strings = None
    index.posting_entries = sum(len(p) for p in postings)
    index.build_seconds = 0.0
    return index
