"""Unit tests for the class/method builder DSL."""

from repro.dex.builder import AppBuilder
from repro.dex.instructions import (
    AssignStmt,
    ClassConstant,
    IdentityStmt,
    InstanceFieldRef,
    IntConstant,
    InvokeExpr,
    InvokeKind,
    InvokeStmt,
    NewExpr,
    ReturnStmt,
    StaticFieldRef,
    StringConstant,
)
from repro.dex.types import MethodSignature


class TestMethodBuilder:
    def test_this_and_param_emit_identity_stmts(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go", params=["int", "java.lang.String"])
        this = m.this()
        p0 = m.param(0)
        p1 = m.param(1)
        m.return_void()
        body = cls.dex_class.find_method("go").body
        assert isinstance(body[0], IdentityStmt) and body[0].local == this
        assert p0.java_type == "int"
        assert p1.java_type == "java.lang.String"
        assert isinstance(body[-1], ReturnStmt)

    def test_new_init_emits_new_then_ctor_invoke(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go")
        obj = m.new_init("com.a.Worker", args=["cfg"])
        m.return_void()
        body = cls.dex_class.find_method("go").body
        assert isinstance(body[0].rhs, NewExpr)
        ctor_invoke = body[1].invoke_expr()
        assert ctor_invoke.kind == InvokeKind.SPECIAL
        assert ctor_invoke.method == MethodSignature(
            "com.a.Worker", "<init>", ("java.lang.String",), "void"
        )
        assert ctor_invoke.base == obj

    def test_invoke_with_return_assigns_fresh_local(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go")
        obj = m.new_init("java.lang.StringBuilder")
        result = m.invoke_virtual(
            obj, "java.lang.StringBuilder", "toString", returns="java.lang.String"
        )
        m.return_value(result)
        assert result is not None
        assert result.java_type == "java.lang.String"

    def test_void_invoke_emits_invoke_stmt(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go")
        obj = m.new_init("com.a.Server")
        out = m.invoke_virtual(obj, "com.a.Server", "start")
        assert out is None
        body = cls.dex_class.find_method("go").body
        assert isinstance(body[-1], InvokeStmt)

    def test_static_invoke_signature(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go")
        m.invoke_static(
            "com.connectsdk.core.Util",
            "runInBackground",
            args=[m.const_null("java.lang.Runnable")],
            params=["java.lang.Runnable"],
        )
        body = cls.dex_class.find_method("go").body
        expr = body[-1].invoke_expr()
        assert expr.kind == InvokeKind.STATIC
        assert expr.base is None
        assert expr.method.param_types == ("java.lang.Runnable",)

    def test_literal_lifting(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go")
        m.invoke_static("com.a.C", "f", args=["text", 7, None],
                        params=["java.lang.String", "int", "java.lang.Object"])
        expr = cls.dex_class.find_method("go").body[-1].invoke_expr()
        assert isinstance(expr.args[0], StringConstant)
        assert isinstance(expr.args[1], IntConstant)

    def test_field_helpers(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go")
        this = m.this()
        m.put_field(this, "com.a.B", "port", "int", 8089)
        got = m.get_field(this, "com.a.B", "port", "int")
        m.put_static("com.a.Conf", "PORT", "int", got)
        loaded = m.get_static("com.a.Conf", "PORT", "int")
        m.return_value(loaded)
        body = cls.dex_class.find_method("go").body
        stores = [s for s in body if isinstance(s, AssignStmt)
                  and isinstance(s.lhs, (InstanceFieldRef, StaticFieldRef))]
        assert len(stores) == 2

    def test_const_class_for_icc(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go")
        k = m.const_class("com.lge.app1.fota.HttpServerService")
        body = cls.dex_class.find_method("go").body
        assert isinstance(body[0].rhs, ClassConstant)
        assert k.java_type == "java.lang.Class"

    def test_control_flow_helpers(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("go", params=["boolean"])
        cond = m.param(0)
        m.if_goto(cond, "THEN")
        a = m.const_string("AES/GCM/NoPadding")
        m.goto("END")
        m.label("THEN")
        b = m.const_string("AES/ECB/PKCS5Padding")
        m.label("END")
        merged = m.phi([a, b], result_type="java.lang.String")
        m.return_value(merged)
        body = cls.dex_class.find_method("go").body
        labels = [s.label for s in body if s.label]
        assert labels == ["THEN", "END"]


class TestClassBuilder:
    def test_default_constructor(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        cls.default_constructor()
        ctor = cls.dex_class.find_method("<init>")
        assert ctor.is_constructor
        expr = ctor.body[1].invoke_expr()
        assert expr.method.class_name == "java.lang.Object"

    def test_interface_flags(self):
        app = AppBuilder()
        iface = app.new_interface("com.a.I")
        iface.method("work", abstract=True)
        built = iface.build()
        assert built.is_interface
        assert built.find_method("work").is_abstract

    def test_private_strips_public(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        m = cls.method("secret", private=True)
        m.return_void()
        method = cls.dex_class.find_method("secret")
        assert method.is_private and not method.flags & (
            method.flags.__class__.PUBLIC
        )

    def test_static_initializer_flags(self):
        app = AppBuilder()
        cls = app.new_class("com.a.B")
        cl = cls.static_initializer()
        cl.put_static("com.a.B", "PORT", "int", 8089)
        cl.return_void()
        clinit = cls.dex_class.static_initializer()
        assert clinit is not None and clinit.is_static
