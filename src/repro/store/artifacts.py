"""The content-addressed on-disk artifact store.

Market-scale vetting re-analyzes the same corpus again and again
(new sink rules, new detector versions, re-runs after crashes), yet the
per-app preprocessing — disassembly tokenization and the inverted-index
posting lists — is identical across runs as long as the app's bytecode
is unchanged.  This store persists those artifacts on disk, keyed by a
hash of the disassembly plaintext plus a format version, so a second
batch run over an unchanged corpus restores each app's index instead of
rebuilding it, and (in ``"full"`` mode) restores the finished per-app
outcome instead of re-analyzing.

Layout (one directory per app key)::

    <root>/objects/<key[:2]>/<key>/
        tokens.json             the disassembler's per-line token stream
        index.json              the InvertedIndexBackend posting lists
        outcome-<config>.json   one finished batch outcome per config

Concurrency: batch runs write from many pool processes at once.  Every
write goes to a same-directory temp file first and is published with an
atomic :func:`os.replace`, so concurrent readers only ever see absent or
complete entries — never a torn file.  Duplicate writers race benignly
(last rename wins; the content is identical by construction).

Corruption and staleness are handled by treating every unreadable,
version-mismatched or key-mismatched entry as a miss: the caller falls
back to a fresh build and overwrites the entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
import types
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.dex.disassembler import Disassembly, LineToken
from repro.search.backends.indexed import TokenIndex

#: Bump when any serialized artifact shape changes: the version feeds the
#: content hash, so old entries become unreachable (and are additionally
#: rejected by the per-payload version check, for entries written by a
#: tampered or future store).
FORMAT_VERSION = 1


@dataclass
class StoreStats:
    """Hit/miss counters for one store root (one process's view).

    Shared by every :class:`ArtifactStore` handle on the same root in
    this process — configs hand out fresh handles per analysis, and a
    per-handle view would read as permanently zero to anything
    monitoring the aggregate (the service's ``/v1/stats``).  Counter
    bumps are single ``int`` operations, so sharing across worker
    threads is safe.
    """

    index_hits: int = 0
    index_misses: int = 0
    token_hits: int = 0
    token_misses: int = 0
    outcome_hits: int = 0
    outcome_misses: int = 0
    writes: int = 0
    #: Entries that existed but were unreadable or failed validation
    #: (torn JSON, wrong version, key mismatch) and fell back to a miss.
    corrupt_entries: int = 0

    def as_dict(self) -> dict:
        return {
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "token_hits": self.token_hits,
            "token_misses": self.token_misses,
            "outcome_hits": self.outcome_hits,
            "outcome_misses": self.outcome_misses,
            "writes": self.writes,
            "corrupt_entries": self.corrupt_entries,
        }


@dataclass
class StoreInventory:
    """What ``describe`` reports: the on-disk shape of a store."""

    root: str
    entries: int = 0
    files_by_kind: dict[str, int] = field(default_factory=dict)
    total_bytes: int = 0

    def render(self) -> str:
        lines = [
            f"store at {self.root}",
            f"  entries     : {self.entries}",
            f"  total bytes : {self.total_bytes}",
        ]
        for kind in sorted(self.files_by_kind):
            lines.append(f"  {kind:11} : {self.files_by_kind[kind]} file(s)")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "entries": self.entries,
            "files_by_kind": dict(self.files_by_kind),
            "total_bytes": self.total_bytes,
        }


#: Warm-hit classification levels a probe can report, warmest first:
#: a finished outcome for the probed config beats a restorable index,
#: which beats a bare token stream, which beats nothing.
PROBE_LEVELS = ("outcome", "index", "tokens", "none")

#: Levels the schedulers treat as warm (cheap enough for a fast lane).
WARM_LEVELS = ("outcome", "index")


@dataclass(frozen=True)
class StoreProbe:
    """The warmest artifact level present for one content key."""

    key: str
    level: str

    @property
    def warm(self) -> bool:
        return self.level in WARM_LEVELS


@dataclass(frozen=True)
class VerifyEntry:
    """One entry's verdict from :meth:`ArtifactStore.verify`.

    Failing statuses are ``mismatch`` (valid payload, wrong lists),
    ``corrupt`` (unreadable/key-mismatched payload) and
    ``missing-tokens`` (nothing to rebuild from).  ``no-index``
    (outcome-only entry) and ``stale`` (older format version — the
    runtime load path treats these as harmless misses and rebuilds)
    are skips, not failures.
    """

    key: str
    status: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "no-index", "stale")


def _tokens_from_payload(payload: dict) -> list[LineToken]:
    """The token stream a stored payload carries.

    Raises ``KeyError``/``TypeError``/``ValueError`` on any shape
    mismatch — the one parse both the live load path and the verifier
    must agree on.
    """
    return [
        LineToken(int(line_no), str(kind), str(text))
        for line_no, kind, text in payload["tokens"]
    ]


def store_key(disassembly: Disassembly) -> str:
    """The content address of one app's disassembly (memoized).

    Hashes every plaintext line plus the store format version, so any
    bytecode change — or any change to the artifact shapes — yields a
    different key and naturally invalidates stale entries.
    """
    cached = getattr(disassembly, "_store_key_cache", None)
    if cached is None:
        digest = hashlib.sha256()
        digest.update(f"backdroid-store-v{FORMAT_VERSION}\n".encode())
        for line in disassembly.lines:
            digest.update(line.encode("utf-8", "surrogatepass"))
            digest.update(b"\n")
        cached = digest.hexdigest()
        disassembly._store_key_cache = cached
    return cached


#: One shared StoreStats per store root per process (see StoreStats).
_STATS_BY_ROOT: dict[str, StoreStats] = {}


class ArtifactStore:
    """A content-addressed warm-start store rooted at one directory.

    Handles are cheap to construct and safe to build per process: all
    state lives on disk, and every publish is an atomic rename.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.stats = _STATS_BY_ROOT.setdefault(
            os.path.abspath(str(self.root)), StoreStats()
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_dir(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / key

    def _index_path(self, key: str) -> Path:
        return self.entry_dir(key) / "index.json"

    def _tokens_path(self, key: str) -> Path:
        return self.entry_dir(key) / "tokens.json"

    def _outcome_path(self, key: str, config_fingerprint: str) -> Path:
        return self.entry_dir(key) / f"outcome-{config_fingerprint}.json"

    def _spec_path(self, spec_fingerprint: str) -> Path:
        return (
            self.root / "specmap" / spec_fingerprint[:2]
            / f"{spec_fingerprint}.json"
        )

    # ------------------------------------------------------------------
    # Raw I/O (atomic writes, torn-read tolerant reads)
    # ------------------------------------------------------------------
    def _write_json(self, path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def _read_json(self, path: Path, key: str) -> Optional[dict]:
        """A validated payload, or None for missing/corrupt/stale entries."""
        status, payload = self._classify_payload(path, key)
        if status == "ok":
            return payload
        if status in ("corrupt", "stale"):
            self.stats.corrupt_entries += 1
        return None

    def _classify_payload(
        self, path: Path, key: str
    ) -> tuple[str, Optional[dict]]:
        """``(status, payload)`` distinguishing stale entries from rot.

        ``"ok"`` / ``"missing"`` / ``"corrupt"`` / ``"stale"`` — unlike
        :meth:`_read_json` (where every non-hit is simply a miss), the
        verifier must not report an *older-format* entry as corruption:
        the live load path rebuilds those harmlessly.
        """
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return "missing", None
        except (OSError, UnicodeDecodeError):
            return "corrupt", None
        try:
            payload = json.loads(raw)
        except ValueError:
            return "corrupt", None
        if not isinstance(payload, dict):
            return "corrupt", None
        if payload.get("version") != FORMAT_VERSION:
            return "stale", None
        if payload.get("key") != key:
            return "corrupt", None
        return "ok", payload

    # ------------------------------------------------------------------
    # Token-stream artifacts
    # ------------------------------------------------------------------
    def save_tokens(self, disassembly: Disassembly) -> None:
        key = store_key(disassembly)
        self._write_json(
            self._tokens_path(key),
            {
                "version": FORMAT_VERSION,
                "key": key,
                "tokens": [
                    [t.line_no, t.kind, t.text] for t in disassembly.tokens
                ],
            },
        )

    def load_tokens(self, disassembly: Disassembly) -> Optional[list[LineToken]]:
        key = store_key(disassembly)
        payload = self._read_json(self._tokens_path(key), key)
        if payload is None:
            self.stats.token_misses += 1
            return None
        try:
            tokens = _tokens_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            self.stats.corrupt_entries += 1
            self.stats.token_misses += 1
            return None
        self.stats.token_hits += 1
        return tokens

    # ------------------------------------------------------------------
    # Inverted-index artifacts
    # ------------------------------------------------------------------
    def save_index(self, disassembly: Disassembly, index: TokenIndex) -> None:
        """Persist the posting lists (and the token stream) for one app.

        The token stream is not needed to *restore* the index
        (``TokenIndex.from_payload`` is self-contained) but is the raw
        input any future artifact consumer — incremental re-indexing,
        cross-app shard dedup (see ROADMAP) — starts from, so it is
        published alongside.
        """
        key = store_key(disassembly)
        self.save_tokens(disassembly)
        self._write_json(
            self._index_path(key),
            {
                "version": FORMAT_VERSION,
                "key": key,
                "vocab": index.vocab,
                "postings": index.postings,
                "string_ids": index._string_ids,
                "containing": index.containing,
            },
        )

    def load_index(self, disassembly: Disassembly) -> Optional[TokenIndex]:
        """Restore the posting lists for an unchanged app, or None.

        The restored index answers every query byte-identically to a
        fresh build (enforced by the backend-parity suite) and reports
        ``build_seconds == 0.0`` / ``restored is True``.
        """
        key = store_key(disassembly)
        payload = self._read_json(self._index_path(key), key)
        if payload is None:
            self.stats.index_misses += 1
            return None
        try:
            index = TokenIndex.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            self.stats.corrupt_entries += 1
            self.stats.index_misses += 1
            return None
        self.stats.index_hits += 1
        return index

    # ------------------------------------------------------------------
    # Finished per-app outcomes (batch warm starts)
    # ------------------------------------------------------------------
    def save_outcome(
        self, disassembly: Disassembly, config_fingerprint: str, outcome: dict
    ) -> None:
        """Persist one finished batch outcome (a plain JSON-able dict)."""
        key = store_key(disassembly)
        self._write_json(
            self._outcome_path(key, config_fingerprint),
            {
                "version": FORMAT_VERSION,
                "key": key,
                "config": config_fingerprint,
                "outcome": outcome,
            },
        )

    def load_outcome(
        self, disassembly: Disassembly, config_fingerprint: str
    ) -> Optional[dict]:
        key = store_key(disassembly)
        payload = self._read_json(
            self._outcome_path(key, config_fingerprint), key
        )
        if payload is None or payload.get("config") != config_fingerprint:
            self.stats.outcome_misses += 1
            return None
        outcome = payload.get("outcome")
        if not isinstance(outcome, dict):
            self.stats.corrupt_entries += 1
            self.stats.outcome_misses += 1
            return None
        self.stats.outcome_hits += 1
        return outcome

    # ------------------------------------------------------------------
    # Probing (store-aware scheduling)
    # ------------------------------------------------------------------
    def probe(
        self, key: str, config_fingerprint: Optional[str] = None
    ) -> StoreProbe:
        """Classify the warmest artifact present for *key*.

        Pure existence checks — no payload is read or deserialized, so a
        scheduler can probe every submission cheaply before dispatch.  A
        probe is advisory: the artifact may still fail validation on the
        real load, in which case the analysis falls back to a cold build.
        """
        if (
            config_fingerprint is not None
            and self._outcome_path(key, config_fingerprint).is_file()
        ):
            return StoreProbe(key, "outcome")
        if self._index_path(key).is_file():
            return StoreProbe(key, "index")
        if self._tokens_path(key).is_file():
            return StoreProbe(key, "tokens")
        return StoreProbe(key, "none")

    def save_spec_key(self, spec_fingerprint: str, key: str) -> None:
        """Record which content key a deterministic app spec produced.

        The map lets schedulers resolve a submission to its disassembly
        sha *without generating the app*: a spec seen by any earlier
        store-attached run resolves immediately; an unseen spec simply
        misses and is treated as cold.  An entry pointing at a different
        key (a generator change survived by the store) is overwritten,
        so the map self-heals on the next analysis.
        """
        if self.load_spec_key(spec_fingerprint) == key:
            return  # already current
        self._write_json(
            self._spec_path(spec_fingerprint),
            {
                "version": FORMAT_VERSION,
                "key": spec_fingerprint,
                "target": key,
            },
        )

    def load_spec_key(self, spec_fingerprint: str) -> Optional[str]:
        """The content key recorded for a spec, or None when unseen."""
        payload = self._read_json(self._spec_path(spec_fingerprint),
                                  spec_fingerprint)
        if payload is None:
            return None
        target = payload.get("target")
        if not isinstance(target, str) or not target:
            self.stats.corrupt_entries += 1
            return None
        return target

    # ------------------------------------------------------------------
    # Verification (the ``backdroid store verify`` action)
    # ------------------------------------------------------------------
    def verify(self) -> list[VerifyEntry]:
        """Replay the backend-parity check against every stored index.

        For each entry the stored posting lists are restored via
        :meth:`TokenIndex.from_payload` and compared — structure for
        structure — against a fresh fold of the entry's stored token
        stream, exactly the equality the parity suite enforces for live
        restores.  Any divergence means on-disk corruption that the
        per-payload validation cannot catch (valid JSON, wrong lists).
        """
        results: list[VerifyEntry] = []
        for entry in self.entries():
            key = entry.name
            if not self._index_path(key).is_file():
                results.append(VerifyEntry(key, "no-index"))
                continue
            status, payload = self._classify_payload(
                self._index_path(key), key
            )
            if status == "missing":
                # Present at the is_file() check, gone now: a concurrent
                # gc is collecting the entry — a skip, not corruption.
                results.append(VerifyEntry(key, "no-index"))
                continue
            if status != "ok":
                results.append(
                    VerifyEntry(key, status, "index payload unreadable"
                                if status == "corrupt" else
                                "older format version; a live run "
                                "rebuilds this entry")
                )
                continue
            try:
                restored = TokenIndex.from_payload(payload)
            except (KeyError, TypeError, ValueError) as exc:
                results.append(
                    VerifyEntry(key, "corrupt", f"index payload: {exc}")
                )
                continue
            tokens_status, tokens_payload = self._classify_payload(
                self._tokens_path(key), key
            )
            if tokens_status == "stale":
                results.append(
                    VerifyEntry(key, "stale",
                                "older-format token stream; a live run "
                                "rebuilds this entry")
                )
                continue
            if tokens_status == "corrupt":
                results.append(
                    VerifyEntry(key, "corrupt", "token payload unreadable")
                )
                continue
            if tokens_payload is None:
                results.append(
                    VerifyEntry(key, "missing-tokens",
                                "no token stream to rebuild from")
                )
                continue
            try:
                tokens = _tokens_from_payload(tokens_payload)
            except (KeyError, TypeError, ValueError) as exc:
                results.append(
                    VerifyEntry(key, "corrupt", f"token payload: {exc}")
                )
                continue
            fresh = TokenIndex(types.SimpleNamespace(tokens=tokens, lines=[]))
            mismatched = [
                name
                for name, stored_side, fresh_side in (
                    ("vocab", restored.vocab, fresh.vocab),
                    ("postings", restored.postings, fresh.postings),
                    ("string_ids", restored._string_ids, fresh._string_ids),
                    ("containing", restored.containing, fresh.containing),
                )
                if stored_side != fresh_side
            ]
            if mismatched:
                results.append(
                    VerifyEntry(
                        key, "mismatch",
                        "stored index diverges from a fresh build on: "
                        + ", ".join(mismatched),
                    )
                )
            else:
                results.append(VerifyEntry(key, "ok"))
        return results

    # ------------------------------------------------------------------
    # Maintenance (the ``backdroid store`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """Every entry directory currently published in the store."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.is_dir():
                    yield entry

    def _spec_files(self) -> Iterator[Path]:
        """Every published specmap file."""
        specmap = self.root / "specmap"
        if not specmap.is_dir():
            return
        for shard in sorted(specmap.iterdir()):
            if not shard.is_dir():
                continue
            for mapping in sorted(shard.iterdir()):
                if mapping.is_file() and mapping.suffix == ".json":
                    yield mapping

    def describe(self) -> StoreInventory:
        inventory = StoreInventory(root=str(self.root))
        for entry in self.entries():
            inventory.entries += 1
            try:
                for artifact in entry.iterdir():
                    if not artifact.is_file() or artifact.suffix == ".tmp":
                        continue
                    kind = artifact.name.split("-", 1)[0].split(".", 1)[0]
                    inventory.files_by_kind[kind] = (
                        inventory.files_by_kind.get(kind, 0) + 1
                    )
                    inventory.total_bytes += artifact.stat().st_size
            except OSError:
                # A concurrent gc swept the entry mid-walk; report what
                # was still there.
                continue
        for mapping in self._spec_files():
            try:
                size = mapping.stat().st_size
            except OSError:
                continue  # swept by a concurrent gc mid-walk
            inventory.files_by_kind["specmap"] = (
                inventory.files_by_kind.get("specmap", 0) + 1
            )
            inventory.total_bytes += size
        return inventory

    def gc(self, max_age_seconds: float = 0.0) -> tuple[int, int]:
        """Drop entries whose newest artifact is older than the cutoff.

        ``max_age_seconds == 0`` clears the whole store, specmap
        included.  Specmap files are swept by the same age rule (a
        dangling mapping is harmless — it only costs a cold probe — but
        a long-lived store must not leak one file per spec forever).
        Returns ``(entries_removed, bytes_reclaimed)``; removed specmap
        files count toward the reclaimed bytes, not the entry count.
        """
        cutoff = time.time() - max_age_seconds
        removed = 0
        reclaimed = 0
        for entry in list(self.entries()):
            try:
                artifacts = [p for p in entry.iterdir() if p.is_file()]
                newest = max(
                    (p.stat().st_mtime for p in artifacts), default=0.0
                )
                if newest > cutoff:
                    continue
                reclaimed += sum(p.stat().st_size for p in artifacts)
                shutil.rmtree(entry)
                removed += 1
            except OSError:
                # A concurrent writer re-published the entry mid-sweep;
                # leave it for the next collection.
                continue
        for mapping in list(self._spec_files()):
            try:
                stat = mapping.stat()
                if stat.st_mtime > cutoff:
                    continue
                size = stat.st_size
                mapping.unlink()
                reclaimed += size
            except OSError:
                continue
        return removed, reclaimed
