"""The session API: many targeted requests, one warm app, zero rebuilds.

Demonstrates the three pillars of ``repro.api``:

1. an :class:`AnalysisSession` owning the expensive per-app state — the
   second, differently-targeted request performs **zero index builds**;
2. streaming progress events (``SinkDiscovered``/``SinkAnalyzed``);
3. the versioned :class:`ReportEnvelope` round-tripping through JSON.

Run with::

    PYTHONPATH=src python examples/api_session.py
"""

import json

from repro.api import (
    AnalysisFinished,
    AnalysisRequest,
    AnalysisSession,
    ReportEnvelope,
    SinkAnalyzed,
    SinkDiscovered,
)
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app


def main() -> None:
    apk = generate_app(benchmark_app_spec(5, scale=0.2)).apk
    session = AnalysisSession(apk, default_backend="indexed")

    # --- request 1: crypto sinks only (pays the one index build) -----
    crypto = session.run(AnalysisRequest(rules=("crypto-ecb",)))
    stats = crypto.report.backend_stats
    print(f"[crypto-ecb]    {crypto.report.sink_count} sinks, "
          f"{len(crypto.findings)} finding(s), "
          f"index built in {stats['index_build_seconds'] * 1000:.1f}ms")

    # --- request 2: SSL sinks, same session: the index is reused -----
    ssl = session.run(AnalysisRequest(rules=("ssl-verifier",)))
    stats = ssl.report.backend_stats
    print(f"[ssl-verifier]  {ssl.report.sink_count} sinks, "
          f"{len(ssl.findings)} finding(s), "
          f"index_prebuilt={stats['index_prebuilt']}, "
          f"index_build_seconds={stats['index_build_seconds']}")
    assert stats["index_prebuilt"] is True, "second request must reuse the index"
    assert stats["index_build_seconds"] == 0.0, "second request must not rebuild"
    assert session.describe()["index_builds"] == 1, "exactly one build per session"

    # --- request 3: streamed, sink-by-sink progress -------------------
    print("[streaming]     ", end="")
    for event in session.stream(AnalysisRequest(rules=("crypto-ecb", "ssl-verifier"))):
        if isinstance(event, SinkDiscovered):
            print("d", end="")
        elif isinstance(event, SinkAnalyzed):
            print("A" if event.record.reachable else "a", end="")
        elif isinstance(event, AnalysisFinished):
            print(f"  -> {event.envelope.report.sink_count} sinks "
                  f"(schema v{event.envelope.schema_version})")
            envelope = event.envelope

    # --- the envelope survives a JSON round trip exactly --------------
    wire = json.dumps(envelope.as_dict(), sort_keys=True)
    restored = ReportEnvelope.from_dict(json.loads(wire))
    assert restored.report == envelope.report, "envelope round trip must be exact"
    print(f"[envelope]      {len(wire)} bytes on the wire, exact round trip ok")

    served = session.describe()["requests_served"]
    print(f"session served {served} requests over one app "
          f"with {session.describe()['index_builds']} index build")


if __name__ == "__main__":
    main()
