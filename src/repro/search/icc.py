"""The two-time ICC search (Sec. IV-D).

ICC calls (``startService`` and friends) cannot be located by callee
signature: the target component is chosen by the *Intent parameter* —
explicitly via a component class (``new Intent(ctx,
HttpServerService.class)``) or implicitly via an action string the OS
resolves against manifest intent filters.

The paper's mechanism launches two searches and merges them:

1. search the ICC *calls* (``startService:``, ``startActivity:``, ...);
2. search the ICC *parameters* — ``const-class .*,
   Lcom/lge/app1/fota/HttpServerService;`` for explicit ICC, or
   ``const-string`` of the matching action names for implicit ICC.

A method appearing in both result sets hosts the ICC call we are looking
for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.framework import ICC_CALL_APIS, component_kind_of
from repro.android.manifest import Manifest
from repro.dex.hierarchy import ClassPool
from repro.dex.types import MethodSignature
from repro.search.common import CallSite
from repro.search.index import BytecodeSearcher


@dataclass(frozen=True)
class IccCallSite:
    """A matched ICC call: where, which API, and how the target matched."""

    caller: MethodSignature
    stmt_index: int
    icc_api: str
    #: ``"explicit"`` (const-class) or ``"implicit"`` (action string).
    match_kind: str


def _icc_apis_for_component(pool: ClassPool, component_class: str) -> list[str]:
    """Which ICC APIs can launch this component (by its base class)."""
    base = component_kind_of(pool, component_class)
    return [api for api, target in ICC_CALL_APIS.items() if target == base]


def icc_search(
    searcher: BytecodeSearcher,
    pool: ClassPool,
    manifest: Manifest,
    component_class: str,
) -> list[IccCallSite]:
    """Find the methods that launch *component_class* via ICC."""
    apis = _icc_apis_for_component(pool, component_class)
    if not apis:
        return []

    # --- first search: ICC calls --------------------------------------
    call_hits: dict[tuple[MethodSignature, str], list] = {}
    for api in apis:
        for hit in searcher.find_invocations_by_name(api):
            if hit.method is None:
                continue
            call_hits.setdefault((hit.method, api), []).append(hit)

    # --- second search: ICC parameters --------------------------------
    explicit_methods: set[MethodSignature] = set()
    for hit in searcher.find_const_class(component_class):
        if hit.method is not None:
            explicit_methods.add(hit.method)

    implicit_methods: set[MethodSignature] = set()
    component = manifest.component(component_class)
    if component is not None:
        for intent_filter in component.intent_filters:
            for action in intent_filter.actions:
                for hit in searcher.find_const_string(action):
                    if hit.method is not None:
                        implicit_methods.add(hit.method)

    # --- merge ----------------------------------------------------------
    sites: list[IccCallSite] = []
    for (method, api), hits in sorted(
        call_hits.items(), key=lambda item: (str(item[0][0]), item[0][1])
    ):
        if method in explicit_methods:
            match_kind = "explicit"
        elif method in implicit_methods:
            match_kind = "implicit"
        else:
            continue
        stmt_index = hits[0].stmt_index if hits[0].stmt_index is not None else 0
        sites.append(
            IccCallSite(
                caller=method,
                stmt_index=stmt_index,
                icc_api=api,
                match_kind=match_kind,
            )
        )
    return sites


def icc_call_sites_as_callers(sites: list[IccCallSite]) -> list[CallSite]:
    """Adapt ICC matches into plain call sites for the slicer."""
    return [CallSite(caller=s.caller, stmt_index=s.stmt_index) for s in sites]
