#!/usr/bin/env python
"""Sustained-traffic latency under zero-copy shard restores.

Two phases, both with enforced acceptance bars (the script exits
nonzero when any bar fails, so CI can run it directly):

**Phase A — warm restore microbenchmark.**  The same multi-library app
is published into a legacy v2 JSON store (eager composed restores) and
a v3 binary store (mmap-backed lazy restores), then warm-restored and
queried with a single-group needle.  Bars:

* lazy v3 restore+query is **>= 2x faster** than the eager v2 path;
* the subset query **decodes strictly fewer bytes** than it maps
  (``bytes_decoded < bytes_mapped``), i.e. untouched groups stay raw.

**Phase B — sustained HTTP traffic, threaded vs async stacks.**  A
pre-warmed corpus plus a trickle of cold submissions is pushed over
HTTP (keep-alive) through *both* service stacks until saturation:

* the **threaded baseline** — ``ThreadedAnalysisServer`` over an
  all-in-process scheduler (``cold_executor="thread"``): warm restores
  share the GIL with cold disassembly/index folds;
* the **async stack** — the asyncio ``AnalysisServer`` over a
  process-isolated cold lane (``cold_executor="process"``): the service
  interpreter only runs the event loop and warm mmap-backed restores.

Each stack gets its own store directory and its own pre-warm, so cold
submissions in one run never warm the other.  Bars (enforced on the
async stack; the threaded run is the comparison baseline):

* p99 warm **service time** (queue wait excluded — turnaround at
  saturation is dominated by queue depth; measured over steady-state
  warm jobs, i.e. those started after the submission burst, for both
  stacks alike) beats the mean **cold turnaround**: even the worst
  warm job finishes its work before an average cold submission gets
  through the system;
* submission ingest sustains **>= 100 submissions/sec** over HTTP —
  probes are stat-only, so enqueueing must never parse shard payloads;
* warm p99 service time under the saturating cold load is **>= 2x
  better** on the async stack than the threaded baseline — the
  GIL-isolation payoff, measured end to end;
* **telemetry overhead**: a third async run with tracing and the
  metrics registry disabled; warm p99 service time with telemetry ON
  must stay within 5% (plus a 1ms timer-resolution grace) of the
  disabled run.

Usage::

    PYTHONPATH=src python benchmarks/bench_sustained_traffic.py
    PYTHONPATH=src python benchmarks/bench_sustained_traffic.py --smoke

``--smoke`` shrinks the corpus and job count for CI while keeping every
bar enforced.
"""

from __future__ import annotations

import argparse
import http.client
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _p in (str(_ROOT), str(_ROOT / "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from benchmarks.conftest import emit_table, render_table  # noqa: E402
from repro.core import BackDroidConfig, analyze_spec  # noqa: E402
from repro.search.backends.indexed import TokenIndex  # noqa: E402
from repro.service import (  # noqa: E402
    AnalysisServer,
    StoreAwareScheduler,
    ThreadedAnalysisServer,
)
from repro.store import ArtifactStore  # noqa: E402
from repro.workload.corpus import benchmark_app_spec  # noqa: E402
from repro.workload.generator import (  # noqa: E402
    AppSpec,
    LibrarySpec,
    generate_app,
)

#: Warm-restore speedup bar (v3 lazy vs v2 eager JSON).
RESTORE_SPEEDUP_BAR = 2.0
#: Submission ingest bar: probes are stat-only, enqueue must be cheap.
INGEST_BAR = 100.0
#: Warm-p99 isolation bar: async + process cold lane vs threaded + GIL.
WARM_ISOLATION_BAR = 2.0
#: Telemetry overhead bar: warm p99 service time with tracing+metrics
#: ON must land within this factor of the disabled run.
TELEMETRY_OVERHEAD_BAR = 1.05
#: Absolute grace on the overhead bar (seconds): at smoke scale the
#: p99 window is a handful of millisecond-sized samples, where timer
#: resolution and scheduler jitter alone exceed 5% of the value.
TELEMETRY_OVERHEAD_GRACE_S = 0.001


# ======================================================================
# Phase A — warm restore comparison
# ======================================================================

def _restore_app(n_libs: int, classes: int):
    libs = tuple(
        LibrarySpec(package=f"org.bench{i}.sdk", seed=60 + i,
                    classes=classes)
        for i in range(n_libs)
    )
    return generate_app(
        AppSpec(package="com.traffic.host", seed=3, libraries=libs)
    ).apk


def _needle(index: TokenIndex) -> str:
    """A descriptor only one library group's shard can answer."""
    return next(t for t in index.vocab
                if t.startswith("Lorg/bench1/") and t.endswith(";"))


def _time_warm_restores(store, disassembly, needle, repeats):
    """Best-of-N warm restore + single-group query, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        index = store.load_index(disassembly)
        index.token_lines(needle)
        best = min(best, time.perf_counter() - started)
        assert index is not None and index.restored
    return best


def run_restore_comparison(root: str, smoke: bool) -> dict:
    n_libs, classes = (8, 6) if smoke else (14, 8)
    repeats = 3 if smoke else 5
    apk = _restore_app(n_libs, classes)
    fresh = TokenIndex.for_disassembly(apk.disassembly)
    needle = _needle(fresh)
    expected = fresh.token_lines(needle)

    timings = {}
    for fmt in ("json", "binary"):
        store = ArtifactStore(Path(root) / f"restore-{fmt}",
                              shard_format=fmt)
        store.save_index(apk.disassembly, fresh)
        timings[fmt] = _time_warm_restores(
            store, apk.disassembly, needle, repeats
        )
        if fmt == "binary":
            lazy = store.load_index(apk.disassembly)
            assert getattr(lazy, "lazy", False), \
                "binary warm restore must take the lazy path"
            assert lazy.token_lines(needle) == expected
            decoded, mapped = lazy.bytes_decoded, lazy.bytes_mapped
            groups = (lazy.materialized_groups, lazy.groups_total)

    speedup = timings["json"] / timings["binary"]
    return {
        "eager_s": timings["json"],
        "lazy_s": timings["binary"],
        "speedup": speedup,
        "bytes_decoded": decoded,
        "bytes_mapped": mapped,
        "groups": groups,
    }


# ======================================================================
# Phase B — sustained HTTP traffic through both service stacks
# ======================================================================

STACKS = {
    # stack name -> (server class, cold executor)
    "threaded": (ThreadedAnalysisServer, "thread"),
    "async": (AnalysisServer, "process"),
}


def run_sustained_traffic(
    root: str, smoke: bool, stack: str, telemetry: bool = True
) -> dict:
    corpus = 3 if smoke else 8
    n_jobs = 30 if smoke else 600
    cold_every = 5  # one cold submission per five warm ones
    scale = 0.05 if smoke else 0.1
    # Cold submissions are deliberately heavy: the bar measures warm
    # latency under a *saturating* cold load, so the cold lane must
    # stay busy for the whole warm stream.
    cold_scale = 0.3 if smoke else 0.4
    server_cls, cold_executor = STACKS[stack]
    # Per-variant store: cold submissions warm the store as they
    # finish, so a shared directory would hand a later run a warmer
    # corpus.
    variant = stack if telemetry else f"{stack}-notelemetry"
    store_dir = str(Path(root) / f"service-store-{variant}")
    config = BackDroidConfig(
        search_backend="indexed", store_dir=store_dir, store_mode="full"
    )
    for i in range(corpus):
        outcome = analyze_spec(benchmark_app_spec(i, scale=scale), config)
        assert outcome.ok, outcome.error

    scheduler = StoreAwareScheduler(
        config,
        workers=2,
        fast_lane_workers=1,
        max_finished_jobs=n_jobs + 16,
        cold_executor=cold_executor,
        tracing_enabled=telemetry,
        enable_metrics=telemetry,
    )
    with server_cls(scheduler, port=0) as server:
        host, port = server.address
        # One keep-alive connection: the ingest bar measures the
        # service's submission path, not TCP handshakes.
        conn = http.client.HTTPConnection(host, port, timeout=60)
        jobs = []
        started = time.perf_counter()
        cold_seq = corpus  # spec ids beyond the pre-warmed corpus are cold
        for n in range(n_jobs):
            if n % cold_every == cold_every - 1:
                app_index, job_scale = cold_seq, cold_scale
                cold_seq += 1
            else:
                app_index, job_scale = n % corpus, scale
            conn.request(
                "POST",
                "/v1/jobs",
                json.dumps({"app": f"bench:{app_index}",
                            "scale": job_scale}),
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 202, body
            # Hold the live Job records: they are mutated in place as
            # jobs run (followers included), which keeps the timing
            # reads free of per-job HTTP polling.
            jobs.append(scheduler.queue.get(body["id"]))
        submitted = time.perf_counter() - started
        # Steady-state cutoff: while the submission burst is being
        # parsed, handler threads GIL-compete with the warm lane in
        # *both* stacks, adding the same latency to each.  The warm
        # bars compare jobs started after the burst, when the only
        # remaining contention is the one under test: the saturated
        # cold lane (threads vs nice'd processes).
        ingest_done = time.time()
        drained = server.drain(timeout=1200)
        assert drained, "drain timed out"
        wall = time.perf_counter() - started
        conn.request("GET", "/v1/stats")
        stats = json.loads(conn.getresponse().read())
        conn.close()

    finished = jobs
    failed = [job for job in finished if job.state != "done"]
    assert not failed, [(job.id, job.error) for job in failed]
    warm = [job for job in finished if job.warm]
    cold = [job for job in finished if not job.warm]

    def turnaround(job):
        return job.finished_at - job.submitted_at

    def service(job):
        return job.finished_at - job.started_at

    def p99(values):
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    loop_lag = (stats.get("server") or {}).get("event_loop_lag_seconds")
    warm_turn = sorted(turnaround(job) for job in warm)
    steady = [job for job in warm if job.started_at >= ingest_done]
    if len(steady) < 10:  # tiny smoke corpus: keep every sample
        steady = warm
    return {
        "stack": stack,
        "jobs": n_jobs,
        "warm": len(warm),
        "cold": len(cold),
        "steady_warm": len(steady),
        "p50_warm": warm_turn[len(warm_turn) // 2],
        "p99_warm": p99(warm_turn),
        # Queue-free job cost: at saturation, turnaround is dominated
        # by queue depth, so the latency bar compares service times,
        # over the steady-state (post-burst) warm population.
        "p99_warm_service": p99(service(job) for job in steady),
        "mean_cold_service": statistics.fmean(service(job) for job in cold),
        "mean_cold": statistics.fmean(turnaround(job) for job in cold),
        "ingest_rate": n_jobs / submitted,
        "drain_rate": n_jobs / wall,
        "loop_lag_p99": loop_lag["p99"] if loop_lag else None,
        "stats": stats,
    }


# ======================================================================
# Driver
# ======================================================================

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized corpus and job count (every bar still enforced)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bdtraffic-") as root:
        restore = run_restore_comparison(root, args.smoke)
        threaded = run_sustained_traffic(root, args.smoke, "threaded")
        traffic = run_sustained_traffic(root, args.smoke, "async")
        # Telemetry overhead: the same async stack with tracing and
        # the metrics registry disabled.  The default-on run above is
        # the "on" sample.
        no_telemetry = run_sustained_traffic(
            root, args.smoke, "async", telemetry=False
        )

    isolation = (
        threaded["p99_warm_service"] / traffic["p99_warm_service"]
        if traffic["p99_warm_service"] > 0
        else float("inf")
    )
    touched, total = restore["groups"]
    rows = [
        ["warm restore, v2 eager JSON", f"{restore['eager_s'] * 1e3:.2f}ms"],
        ["warm restore, v3 lazy mmap", f"{restore['lazy_s'] * 1e3:.2f}ms"],
        ["restore speedup", f"{restore['speedup']:.1f}x"],
        ["groups touched / total", f"{touched} / {total}"],
        ["bytes decoded / mapped",
         f"{restore['bytes_decoded']} / {restore['bytes_mapped']}"],
        ["jobs per stack (warm + cold)",
         f"{traffic['jobs']} ({traffic['warm']} + {traffic['cold']})"],
        ["steady-state warm samples (threaded / async)",
         f"{threaded['steady_warm']} / {traffic['steady_warm']}"],
        ["warm service p99, threaded+GIL",
         f"{threaded['p99_warm_service'] * 1e3:.1f}ms"],
        ["warm service p99, async+process",
         f"{traffic['p99_warm_service'] * 1e3:.1f}ms"],
        ["warm p99 isolation gain", f"{isolation:.1f}x"],
        ["warm turnaround p50 / p99 (async)",
         f"{traffic['p50_warm'] * 1e3:.1f}ms / "
         f"{traffic['p99_warm'] * 1e3:.1f}ms"],
        ["cold turnaround / service mean (async)",
         f"{traffic['mean_cold'] * 1e3:.1f}ms / "
         f"{traffic['mean_cold_service'] * 1e3:.1f}ms"],
        ["submission ingest (async, HTTP)",
         f"{traffic['ingest_rate']:.0f}/s"],
        ["drain throughput (async)",
         f"{traffic['drain_rate']:.1f} jobs/s"],
        ["event-loop lag p99 (async)",
         f"{traffic['loop_lag_p99'] * 1e3:.2f}ms"
         if traffic["loop_lag_p99"] is not None else "n/a"],
        ["warm service p99, telemetry on / off",
         f"{traffic['p99_warm_service'] * 1e3:.1f}ms / "
         f"{no_telemetry['p99_warm_service'] * 1e3:.1f}ms"],
    ]
    emit_table(
        "sustained_traffic",
        render_table(
            "Sustained HTTP traffic: threaded+GIL vs async+process cold lane"
            + (" (smoke)" if args.smoke else ""),
            ["Metric", "Value"],
            rows,
        ),
    )

    bars = [
        (
            restore["speedup"] >= RESTORE_SPEEDUP_BAR,
            f"warm restore speedup {restore['speedup']:.2f}x "
            f"(bar: >= {RESTORE_SPEEDUP_BAR:.1f}x)",
        ),
        (
            0 < restore["bytes_decoded"] < restore["bytes_mapped"],
            f"subset query decoded {restore['bytes_decoded']} of "
            f"{restore['bytes_mapped']} mapped bytes (bar: strict subset)",
        ),
        (
            touched < total,
            f"{touched} of {total} groups materialized "
            f"(bar: untouched groups stay raw)",
        ),
        (
            traffic["p99_warm_service"] < traffic["mean_cold"],
            f"p99 warm service {traffic['p99_warm_service'] * 1e3:.1f}ms "
            f"vs mean cold turnaround {traffic['mean_cold'] * 1e3:.1f}ms "
            f"(bar: worst warm job beats an average cold submission)",
        ),
        (
            traffic["ingest_rate"] >= INGEST_BAR,
            f"ingest {traffic['ingest_rate']:.0f}/s over HTTP "
            f"(bar: >= {INGEST_BAR:.0f}/s, stat-only probes)",
        ),
        (
            isolation >= WARM_ISOLATION_BAR,
            f"warm p99 service {isolation:.2f}x better on async+process "
            f"({threaded['p99_warm_service'] * 1e3:.1f}ms -> "
            f"{traffic['p99_warm_service'] * 1e3:.1f}ms; "
            f"bar: >= {WARM_ISOLATION_BAR:.1f}x)",
        ),
        (
            traffic["p99_warm_service"]
            <= no_telemetry["p99_warm_service"] * TELEMETRY_OVERHEAD_BAR
            + TELEMETRY_OVERHEAD_GRACE_S,
            f"telemetry overhead: warm p99 service "
            f"{traffic['p99_warm_service'] * 1e3:.1f}ms on vs "
            f"{no_telemetry['p99_warm_service'] * 1e3:.1f}ms off "
            f"(bar: <= {(TELEMETRY_OVERHEAD_BAR - 1) * 100:.0f}% + "
            f"{TELEMETRY_OVERHEAD_GRACE_S * 1e3:.0f}ms grace)",
        ),
    ]
    failures = 0
    for ok, label in bars:
        print(("PASS  " if ok else "FAIL  ") + label)
        if not ok:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
