"""AnalysisSession: state reuse, zero rebuilds, streaming, registry."""

import threading

import pytest

from repro.api import (
    AnalysisFinished,
    AnalysisRequest,
    AnalysisSession,
    SessionCache,
    SinkAnalyzed,
    SinkDiscovered,
    TargetRegistry,
)
from repro.android.framework import SinkSpec
from repro.core import BackDroidConfig
from repro.core.detectors import Detector, Finding
from repro.dex.types import MethodSignature


class TestIndexReuse:
    def test_second_request_performs_zero_index_builds(self, bench_apk):
        """The acceptance bar: request 2 on a warm session never rebuilds."""
        session = AnalysisSession(bench_apk, default_backend="indexed")
        first = session.run(AnalysisRequest(rules=("crypto-ecb",)))
        second = session.run(AnalysisRequest(rules=("ssl-verifier",)))

        assert first.report.backend_stats["index_prebuilt"] is False
        assert second.report.backend_stats["index_prebuilt"] is True
        assert second.report.backend_stats["index_build_seconds"] == 0.0
        assert second.report.backend_stats["index_restored"] is False
        assert session.describe()["index_builds"] == 1
        assert session.describe()["requests_served"] == 2

    def test_backend_instance_is_shared_across_requests(self, bench_apk):
        session = AnalysisSession(bench_apk, default_backend="indexed")
        session.run(AnalysisRequest(rules=("crypto-ecb",)))
        backend = session.backend_for()
        session.run(AnalysisRequest(rules=("crypto-ecb",)))
        assert session.backend_for() is backend
        # Cumulative queries live on the backend; reports carry deltas.
        assert backend.describe()["token_queries"] > 0

    def test_per_request_backend_override(self, bench_apk):
        session = AnalysisSession(bench_apk, default_backend="linear")
        linear = session.run(AnalysisRequest(rules=("crypto-ecb",)))
        indexed = session.run(
            AnalysisRequest(rules=("crypto-ecb",), backend="indexed")
        )
        assert linear.report.search_backend == "linear"
        assert indexed.report.search_backend == "indexed"
        # Identical findings regardless of backend.
        assert [r.finding for r in linear.report.records] == [
            r.finding for r in indexed.report.records
        ]

    def test_search_cache_carries_across_requests(self, bench_apk):
        session = AnalysisSession(bench_apk)
        request = AnalysisRequest(rules=("crypto-ecb",))
        first = session.run(request)
        second = session.run(request)
        # The repeated run's searches are all warm in the shared cache.
        assert second.report.search_cache_rate >= first.report.search_cache_rate
        assert second.report.search_cache_rate == 1.0

    def test_disabled_search_cache_stays_private_and_unreported(self, bench_apk):
        session = AnalysisSession(bench_apk)
        report = session.run(
            AnalysisRequest(rules=("crypto-ecb",), enable_search_cache=False)
        ).report
        assert report.search_cache_lookups == 0
        assert report.search_cache_rate == 0.0
        assert session.search_cache.stats.lookups == 0  # untouched


class TestStreaming:
    def test_event_order_and_counts(self, bench_apk):
        session = AnalysisSession(bench_apk)
        events = list(session.stream(AnalysisRequest(rules=("crypto-ecb",))))
        discovered = [e for e in events if isinstance(e, SinkDiscovered)]
        analyzed = [e for e in events if isinstance(e, SinkAnalyzed)]
        finished = [e for e in events if isinstance(e, AnalysisFinished)]

        assert len(finished) == 1 and events[-1] is finished[0]
        report = finished[0].envelope.report
        assert len(discovered) == len(analyzed) == report.sink_count
        # Discovery precedes analysis, indices line up with sites.
        assert events[: len(discovered)] == discovered
        for event in analyzed:
            assert event.total == len(analyzed)
        assert [e.site for e in discovered] == [
            e.record.site for e in analyzed
        ]

    def test_run_on_event_sees_the_same_stream(self, bench_apk):
        session = AnalysisSession(bench_apk)
        seen = []
        envelope = session.run(
            AnalysisRequest(rules=("crypto-ecb",)), on_event=seen.append
        )
        assert isinstance(seen[-1], AnalysisFinished)
        assert seen[-1].envelope is envelope
        assert sum(isinstance(e, SinkAnalyzed) for e in seen) == (
            envelope.report.sink_count
        )


class TestParityKnobs:
    def test_from_config_carries_session_knobs(self, bench_apk):
        config = BackDroidConfig(
            search_backend="indexed", search_cache_max_entries=7
        )
        session = AnalysisSession.from_config(bench_apk, config)
        assert session.default_backend == "indexed"
        assert session.search_cache.max_entries == 7
        assert session.store is None

    def test_max_frames_zero_budget_changes_reachability(self, bench_apk):
        session = AnalysisSession(bench_apk)
        tight = session.run(
            AnalysisRequest(rules=("crypto-ecb",), max_frames=1)
        ).report
        loose = session.run(
            AnalysisRequest(rules=("crypto-ecb",), max_frames=4000)
        ).report
        assert loose.reachable_sink_count >= tight.reachable_sink_count


class _LoadUrlDetector(Detector):
    rule = "webview-load"

    def evaluate(self, facts, method, stmt_index, pool):
        return Finding(
            rule=self.rule,
            method=method,
            stmt_index=stmt_index,
            value_repr=str(facts.get(0)),
            detail="WebView.loadUrl reachable",
        )


class TestRegistry:
    def test_custom_sink_and_detector_flow_end_to_end(self, lg_tv_plus):
        # Register the ServerSocket constructor under a *client* rule id
        # with a client detector — without touching the built-in
        # open-port family.
        registry = TargetRegistry()
        registry.register(
            SinkSpec(
                signature=MethodSignature(
                    "java.net.ServerSocket", "<init>", ("int",), "void"
                ),
                tracked_params=(0,),
                rule="webview-load",
                description="client-registered ServerSocket(int)",
            ),
            detector=_LoadUrlDetector(),
        )
        session = AnalysisSession(lg_tv_plus, registry=registry)
        report = session.run(
            AnalysisRequest(rules=("webview-load",))
        ).report
        assert report.sink_count >= 1
        assert all(r.site.spec.rule == "webview-load" for r in report.records)
        reachable = [r for r in report.records if r.reachable]
        assert reachable
        assert all(
            r.finding is not None and r.finding.rule == "webview-load"
            for r in reachable
        )

    def test_registries_do_not_leak_between_sessions(self, lg_tv_plus):
        registry = TargetRegistry()
        spec = SinkSpec(
            signature=MethodSignature("com.x.Y", "z", (), "void"),
            tracked_params=(),
            rule="custom",
            description="custom",
        )
        registry.register(spec)
        assert "custom" in registry.rules
        assert "custom" not in TargetRegistry().rules
        assert "custom" not in AnalysisSession(lg_tv_plus).registry.rules

    def test_registry_fingerprint_tracks_registrations(self):
        a, b = TargetRegistry(), TargetRegistry()
        assert a.fingerprint() == b.fingerprint()
        b.register(
            SinkSpec(
                signature=MethodSignature("com.x.Y", "z", (), "void"),
                tracked_params=(),
                rule="custom",
                description="custom",
            )
        )
        assert a.fingerprint() != b.fingerprint()


class TestSessionCache:
    def test_lru_bound_and_counters(self, bench_apk):
        cache = SessionCache(max_sessions=2)
        sessions = {
            key: AnalysisSession(bench_apk) for key in ("a", "b", "c")
        }
        for key, session in sessions.items():
            cache.put(key, session)
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted
        assert cache.get("c") is sessions["c"]
        stats = cache.describe()
        assert stats["evictions"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SessionCache(max_sessions=0)

    def test_concurrent_runs_serialize_safely(self, bench_apk):
        session = AnalysisSession(bench_apk, default_backend="indexed")
        results = []

        def work():
            results.append(
                session.run(AnalysisRequest(rules=("crypto-ecb",)))
            )

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 4
        counts = {e.report.sink_count for e in results}
        assert len(counts) == 1  # identical verdicts every run
        assert session.describe()["index_builds"] == 1
