"""Unit tests for the search backend subsystem and the LRU-bounded cache."""

import pytest

from repro.dex.builder import AppBuilder
from repro.android.apk import Apk
from repro.dex.types import MethodSignature
from repro.search.backends import (
    BACKENDS,
    InvertedIndexBackend,
    LinearScanBackend,
    create_backend,
)
from repro.search.backends.indexed import TokenIndex, _containment_keys
from repro.search.caching import SearchCommandCache
from repro.search.index import BytecodeSearcher


def _small_apk():
    app = AppBuilder()
    callee_cls = app.new_class("com.t.Callee")
    callee = callee_cls.method("run", static=True)
    callee.const_string("hello*world")
    callee.return_void()
    caller_cls = app.new_class("com.t.Caller", superclass="com.t.Callee")
    caller = caller_cls.method("go", static=True)
    caller.invoke_static("com.t.Callee", "run")
    caller.return_void()
    return Apk(package="com.t", classes=app.build())


class TestRegistry:
    def test_registry_names(self):
        assert set(BACKENDS) == {"linear", "indexed"}

    def test_create_by_name_class_and_instance(self):
        apk = _small_apk()
        linear = create_backend("linear", apk.disassembly)
        assert isinstance(linear, LinearScanBackend)
        assert isinstance(
            create_backend(InvertedIndexBackend, apk.disassembly),
            InvertedIndexBackend,
        )
        assert create_backend(linear, apk.disassembly) is linear

    def test_unknown_name_rejected(self):
        apk = _small_apk()
        with pytest.raises(ValueError, match="unknown search backend"):
            create_backend("turbo", apk.disassembly)

    def test_tokenless_disassembly_rejected_by_indexed_backend(self):
        # A hand-built Disassembly without a token stream must fail loudly
        # under the indexed backend, not silently return zero hits.
        from repro.dex.disassembler import Disassembly

        apk = _small_apk()
        stripped = Disassembly(apk.disassembly.lines, apk.disassembly.blocks)
        searcher = BytecodeSearcher(stripped, backend="indexed")
        with pytest.raises(ValueError, match="no token stream"):
            searcher.find_invocations(
                MethodSignature("com.t.Callee", "run", (), "void")
            )

    def test_instance_bound_to_other_app_rejected(self):
        one, two = _small_apk(), _small_apk()
        backend = create_backend("linear", one.disassembly)
        with pytest.raises(ValueError, match="different disassembly"):
            create_backend(backend, two.disassembly)


class TestTokenIndex:
    def test_index_is_memoized_per_disassembly(self):
        apk = _small_apk()
        assert TokenIndex.for_disassembly(apk.disassembly) is \
            TokenIndex.for_disassembly(apk.disassembly)

    def test_invocation_query_is_exact_lookup(self):
        apk = _small_apk()
        index = TokenIndex.for_disassembly(apk.disassembly)
        sig = MethodSignature("com.t.Callee", "run", (), "void")
        assert sig.to_dex() in index.exact

    def test_embedded_descriptor_suffixes(self):
        found = set(_containment_keys("[[Lcom/La;"))
        assert found == {"[[Lcom/La;", "[Lcom/La;", "Lcom/La;", "La;"}

    def test_needles_embedded_in_string_values(self):
        # A const-string value may embed quoted descriptors, raw
        # descriptors, or full signatures; the raw text scan matches the
        # const-string line, so the index must agree.
        app = AppBuilder()
        cls = app.new_class("com.t.Emb")
        method = cls.method("m", static=True)
        method.const_string("see 'Lcom/t/Emb;' and Lcom/t/Emb;.m:()V here")
        method.return_void()
        apk = Apk(package="com.t", classes=app.build())
        linear = BytecodeSearcher(apk.disassembly, backend="linear")
        indexed = BytecodeSearcher(apk.disassembly, backend="indexed")
        assert linear.subclass_header_mentions("com.t.Emb") == \
            indexed.subclass_header_mentions("com.t.Emb")
        assert linear.classes_mentioning("com.t.Emb") == \
            indexed.classes_mentioning("com.t.Emb")
        sig = MethodSignature("com.t.Emb", "m", (), "void")
        assert linear._search_token(sig.to_dex(), kind="caller-method") == \
            indexed._search_token(sig.to_dex(), kind="caller-method")

    def test_signature_suffixes_registered(self):
        # 'La;.m0:()V' (class 'a') occurs inside 'Lcom/La;.m0:()V'
        # (class 'com.La') — the containment map must cover it.
        found = set(_containment_keys("Lcom/La;.m0:()V"))
        assert "La;.m0:()V" in found
        assert "La;" in found

    def test_descriptor_containment_covers_signatures(self):
        apk = _small_apk()
        index = TokenIndex.for_disassembly(apk.disassembly)
        # 'Lcom/t/Callee;' occurs inside the invoke signature token.
        tids = index.containing["Lcom/t/Callee;"]
        assert any(
            "invoke" not in index.vocab[tid] and ";.run:" in index.vocab[tid]
            for tid in tids
        )


class TestBackendStats:
    def test_indexed_counts_queries_and_fallbacks(self):
        apk = _small_apk()
        searcher = BytecodeSearcher(apk.disassembly, backend="indexed")
        sig = MethodSignature("com.t.Callee", "run", (), "void")
        searcher.find_invocations(sig)
        searcher.find_invocations_by_name("run")  # regex -> fallback
        stats = searcher.backend.stats
        assert stats.token_queries == 1
        assert stats.pattern_queries == 1
        assert stats.fallbacks == 1
        assert stats.vocab_size > 0
        described = searcher.backend.describe()
        assert described["name"] == "indexed"
        assert described["fallbacks"] == 1

    def test_linear_never_falls_back(self):
        apk = _small_apk()
        searcher = BytecodeSearcher(apk.disassembly, backend="linear")
        searcher.find_invocations(
            MethodSignature("com.t.Callee", "run", (), "void")
        )
        assert searcher.backend.stats.fallbacks == 0

    def test_const_string_literal_with_regex_metacharacters(self):
        apk = _small_apk()
        for backend in ("linear", "indexed"):
            searcher = BytecodeSearcher(apk.disassembly, backend=backend)
            hits = searcher.find_const_string("hello*world")
            assert len(hits) == 1, backend
            assert searcher.find_const_string("hello.world") == []


class TestLruCache:
    def test_unbounded_by_default(self):
        cache = SearchCommandCache()
        for i in range(100):
            cache.get_or_run("raw", f"cmd{i}", lambda i=i: i)
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_bounded_cache_evicts_lru(self):
        cache = SearchCommandCache(max_entries=2)
        cache.get_or_run("raw", "a", lambda: "A")
        cache.get_or_run("raw", "b", lambda: "B")
        cache.get_or_run("raw", "a", lambda: "A")  # refresh a
        cache.get_or_run("raw", "c", lambda: "C")  # evicts b
        assert cache.stats.evictions == 1
        calls = []
        cache.get_or_run("raw", "a", lambda: calls.append("a"))
        assert calls == []  # still cached
        cache.get_or_run("raw", "b", lambda: calls.append("b"))
        assert calls == ["b"]  # was evicted, re-ran

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            SearchCommandCache(max_entries=0)

    def test_eviction_keeps_results_correct(self):
        apk = _small_apk()
        cache = SearchCommandCache(max_entries=1)
        searcher = BytecodeSearcher(apk.disassembly, cache=cache)
        sig = MethodSignature("com.t.Callee", "run", (), "void")
        first = searcher.find_invocations(sig)
        searcher.find_const_string("hello*world")  # evicts the invocation
        assert searcher.find_invocations(sig) == first
        assert cache.stats.evictions >= 1
