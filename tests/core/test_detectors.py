"""Unit tests for the sink-parameter security rules."""

from repro.core.api_models import ALLOW_ALL_VERIFIER, STRICT_VERIFIER
from repro.core.detectors import (
    CryptoEcbDetector,
    DETECTORS,
    OpenPortDetector,
    SslVerifierDetector,
)
from repro.core.values import ConstFact, MultiFact, NewObjFact, UnknownFact
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature

_SINK = MethodSignature("com.a.B", "m", (), "void")


def _crypto(fact):
    return CryptoEcbDetector().evaluate({0: fact}, _SINK, 0, AppBuilder().build())


def _ssl(fact, pool=None):
    pool = pool if pool is not None else AppBuilder().build()
    return SslVerifierDetector().evaluate({0: fact}, _SINK, 0, pool)


class TestCryptoRule:
    def test_explicit_ecb_flagged(self):
        assert _crypto(ConstFact("AES/ECB/PKCS5Padding")) is not None

    def test_bare_algorithm_defaults_to_ecb(self):
        assert _crypto(ConstFact("AES")) is not None
        assert _crypto(ConstFact("DES")) is not None

    def test_weak_algorithm_flagged_even_with_cbc(self):
        assert _crypto(ConstFact("DES/CBC/PKCS5Padding")) is not None

    def test_gcm_not_flagged(self):
        assert _crypto(ConstFact("AES/GCM/NoPadding")) is None
        assert _crypto(ConstFact("AES/CBC/PKCS5Padding")) is None

    def test_case_insensitive(self):
        assert _crypto(ConstFact("aes/ecb/pkcs5padding")) is not None

    def test_multifact_any_option_flags(self):
        fact = MultiFact((ConstFact("AES/GCM/NoPadding"),
                          ConstFact("AES/ECB/PKCS5Padding")))
        finding = _crypto(fact)
        assert finding is not None
        assert "ECB" in finding.value_repr

    def test_unknown_not_flagged(self):
        assert _crypto(UnknownFact("unresolved")) is None

    def test_missing_param_not_flagged(self):
        detector = CryptoEcbDetector()
        assert detector.evaluate({}, _SINK, 0, AppBuilder().build()) is None

    def test_transformation_predicate_directly(self):
        is_bad = CryptoEcbDetector.is_insecure_transformation
        assert is_bad("AES/ECB/NoPadding")
        assert is_bad("Blowfish")
        assert not is_bad("RSA/NONE/OAEPPadding")
        assert not is_bad("")


class TestSslRule:
    def test_allow_all_constant_flagged(self):
        assert _ssl(ConstFact(ALLOW_ALL_VERIFIER)) is not None

    def test_strict_constant_not_flagged(self):
        assert _ssl(ConstFact(STRICT_VERIFIER)) is None

    def test_allow_all_object_flagged(self):
        fact = NewObjFact.make("org.apache.http.conn.ssl.AllowAllHostnameVerifier")
        assert _ssl(fact) is not None

    def test_app_verifier_returning_true_flagged(self):
        app = AppBuilder()
        verifier = app.new_class(
            "com.a.TrustAll", interfaces=["javax.net.ssl.HostnameVerifier"]
        )
        m = verifier.method(
            "verify", params=["java.lang.String", "javax.net.ssl.SSLSession"],
            returns="boolean",
        )
        m.return_value(True)
        pool = app.build()
        from repro.android.framework import framework_pool

        pool.merge(framework_pool())
        assert _ssl(NewObjFact.make("com.a.TrustAll"), pool) is not None

    def test_app_verifier_with_real_check_not_flagged(self):
        app = AppBuilder()
        verifier = app.new_class(
            "com.a.Careful", interfaces=["javax.net.ssl.HostnameVerifier"]
        )
        m = verifier.method(
            "verify", params=["java.lang.String", "javax.net.ssl.SSLSession"],
            returns="boolean",
        )
        host = m.param(0)
        check = m.invoke_virtual(host, "java.lang.String", "equals",
                                 args=["api.example.com"],
                                 params=["java.lang.Object"], returns="boolean")
        m.return_value(check)
        pool = app.build()
        from repro.android.framework import framework_pool

        pool.merge(framework_pool())
        assert _ssl(NewObjFact.make("com.a.Careful"), pool) is None


class TestRegistryAndInfoRules:
    def test_all_rules_registered(self):
        assert set(DETECTORS) >= {"crypto-ecb", "ssl-verifier", "open-port",
                                  "sms-send"}

    def test_open_port_reports_value(self):
        finding = OpenPortDetector().evaluate(
            {0: ConstFact(8089)}, _SINK, 0, AppBuilder().build()
        )
        assert finding is not None
        assert "8089" in finding.value_repr

    def test_finding_render(self):
        finding = _crypto(ConstFact("DES"))
        text = str(finding)
        assert "crypto-ecb" in text and "com.a.B" in text
