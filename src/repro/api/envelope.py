"""The versioned result envelope — one report serialization for all.

Before this module existed the repo carried three ad-hoc result shapes:
``AnalysisReport`` objects (in-memory only), batch ``outcome_payload``
dicts, and the HTTP job-result JSON.  A :class:`ReportEnvelope` is the
single canonical serialization: ``schema_version`` + the full report,
round-trippable via ``as_dict()``/``from_dict()`` with exact equality,
shared by ``backdroid analyze --json``, batch outcome payloads and the
service API.

Versioning contract: any change to the serialized shape bumps
:data:`SCHEMA_VERSION`; ``from_dict`` rejects mismatched versions so a
store or client never silently misreads an entry.  The golden fixture in
``tests/api/golden_envelope.json`` fails the build on unversioned shape
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.android.framework import SinkSpec
from repro.core.detectors import Finding
from repro.core.report import AnalysisReport, SinkRecord
from repro.core.slicer import SinkCallSite
from repro.dex.types import MethodSignature
from repro.search.loops import LoopKind

#: Bump on ANY serialized shape change (fields added/removed/renamed,
#: key semantics altered) — readers reject mismatches instead of
#: guessing.  v2 added ``shards_patched`` to backend stats and to batch
#: outcome payloads (the store's warm-partial restore counter); v3
#: added the lazy-restore observables (``materialized_groups``,
#: ``bytes_mapped``, ``bytes_decoded``) to both; v4 added the optional
#: ``trace`` section (the telemetry span tree recorded when tracing is
#: enabled — ``null`` otherwise).
SCHEMA_VERSION = 4

#: Envelope self-identification (a bare dict in a log stays traceable).
ENVELOPE_KIND = "backdroid-report"


# ----------------------------------------------------------------------
# Leaf serializers (shared with AnalysisRequest.as_dict)
# ----------------------------------------------------------------------


def signature_to_dict(signature: MethodSignature) -> dict:
    """One method signature as a JSON-able dict."""
    return {
        "class_name": signature.class_name,
        "name": signature.name,
        "param_types": list(signature.param_types),
        "return_type": signature.return_type,
    }


def signature_from_dict(payload: dict) -> MethodSignature:
    """Rebuild a :class:`MethodSignature` from its dict form."""
    return MethodSignature(
        class_name=str(payload["class_name"]),
        name=str(payload["name"]),
        param_types=tuple(str(p) for p in payload["param_types"]),
        return_type=str(payload["return_type"]),
    )


def spec_to_dict(spec: SinkSpec) -> dict:
    """One sink spec as a JSON-able dict."""
    return {
        "signature": signature_to_dict(spec.signature),
        "tracked_params": list(spec.tracked_params),
        "rule": spec.rule,
        "description": spec.description,
    }


def spec_from_dict(payload: dict) -> SinkSpec:
    """Rebuild a :class:`SinkSpec` from its dict form."""
    return SinkSpec(
        signature=signature_from_dict(payload["signature"]),
        tracked_params=tuple(int(p) for p in payload["tracked_params"]),
        rule=str(payload["rule"]),
        description=str(payload["description"]),
    )


def _finding_to_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "method": signature_to_dict(finding.method),
        "stmt_index": finding.stmt_index,
        "value_repr": finding.value_repr,
        "detail": finding.detail,
    }


def _finding_from_dict(payload: dict) -> Finding:
    return Finding(
        rule=str(payload["rule"]),
        method=signature_from_dict(payload["method"]),
        stmt_index=int(payload["stmt_index"]),
        value_repr=str(payload["value_repr"]),
        detail=str(payload["detail"]),
    )


def _record_to_dict(record: SinkRecord) -> dict:
    return {
        "site": {
            "method": signature_to_dict(record.site.method),
            "stmt_index": record.site.stmt_index,
            "spec": spec_to_dict(record.site.spec),
        },
        "reachable": record.reachable,
        "cached": record.cached,
        # JSON object keys are strings; the reader restores the ints.
        "facts_repr": {str(k): v for k, v in record.facts_repr.items()},
        "finding": (
            _finding_to_dict(record.finding)
            if record.finding is not None
            else None
        ),
        "ssg_size": record.ssg_size,
        "entry_points": list(record.entry_points),
        "duration_seconds": record.duration_seconds,
    }


def _record_from_dict(payload: dict) -> SinkRecord:
    site = payload["site"]
    finding = payload.get("finding")
    return SinkRecord(
        site=SinkCallSite(
            method=signature_from_dict(site["method"]),
            stmt_index=int(site["stmt_index"]),
            spec=spec_from_dict(site["spec"]),
        ),
        reachable=bool(payload["reachable"]),
        cached=bool(payload["cached"]),
        facts_repr={int(k): str(v) for k, v in payload["facts_repr"].items()},
        finding=_finding_from_dict(finding) if finding is not None else None,
        ssg_size=int(payload["ssg_size"]),
        entry_points=tuple(str(e) for e in payload["entry_points"]),
        duration_seconds=float(payload["duration_seconds"]),
    )


def report_to_dict(report: AnalysisReport) -> dict:
    """The full analysis report as a JSON-able dict (exact)."""
    return {
        "package": report.package,
        "records": [_record_to_dict(r) for r in report.records],
        "analysis_seconds": report.analysis_seconds,
        "search_cache_rate": report.search_cache_rate,
        "search_cache_lookups": report.search_cache_lookups,
        "search_cache_evictions": report.search_cache_evictions,
        "sink_cache_rate": report.sink_cache_rate,
        "loop_counts": {
            kind.value: count for kind, count in report.loop_counts.items()
        },
        "search_backend": report.search_backend,
        "backend_stats": dict(report.backend_stats),
        "notes": list(report.notes),
    }


def report_from_dict(payload: dict) -> AnalysisReport:
    """Rebuild an :class:`AnalysisReport` from its dict form.

    Raises ``KeyError``/``TypeError``/``ValueError`` on shape mismatch.
    """
    return AnalysisReport(
        package=str(payload["package"]),
        records=[_record_from_dict(r) for r in payload["records"]],
        analysis_seconds=float(payload["analysis_seconds"]),
        search_cache_rate=float(payload["search_cache_rate"]),
        search_cache_lookups=int(payload["search_cache_lookups"]),
        search_cache_evictions=int(payload["search_cache_evictions"]),
        sink_cache_rate=float(payload["sink_cache_rate"]),
        loop_counts={
            LoopKind(kind): int(count)
            for kind, count in payload["loop_counts"].items()
        },
        search_backend=str(payload["search_backend"]),
        backend_stats=dict(payload["backend_stats"]),
        notes=[str(n) for n in payload["notes"]],
    )


# ----------------------------------------------------------------------
# The envelope
# ----------------------------------------------------------------------


@dataclass
class ReportEnvelope:
    """A versioned, serializable wrapper of one analysis result.

    Equality is structural (dataclass ``==``), so round-trip tests can
    assert ``ReportEnvelope.from_dict(e.as_dict()) == e`` exactly.
    """

    report: AnalysisReport
    request: Optional["AnalysisRequest"] = None  # noqa: F821
    schema_version: int = SCHEMA_VERSION
    #: Recorded telemetry, when the producer ran with tracing enabled:
    #: ``{"trace_id": ..., "spans": [span dicts]}``.  Observability
    #: data, not analysis output — excluded from text rendering.
    trace: Optional[dict] = None

    # -- convenience passthroughs --------------------------------------
    @property
    def package(self) -> str:
        """The analyzed app's package name."""
        return self.report.package

    @property
    def findings(self) -> list:
        """Every confirmed finding in the wrapped report."""
        return self.report.findings

    @property
    def vulnerable(self) -> bool:
        """Whether the wrapped report carries any finding."""
        return self.report.vulnerable

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """The canonical JSON-able form (exact ``from_dict`` inverse)."""
        return {
            "kind": ENVELOPE_KIND,
            "schema_version": self.schema_version,
            "request": (
                self.request.as_dict() if self.request is not None else None
            ),
            "report": report_to_dict(self.report),
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ReportEnvelope":
        """Rebuild an envelope from its :meth:`as_dict` payload.

        Raises ``ValueError`` on a non-dict payload, a foreign ``kind``
        or a mismatched ``schema_version`` — readers never guess at
        unversioned shapes.
        """
        from repro.api.request import AnalysisRequest  # local: no cycle

        if not isinstance(payload, dict):
            raise ValueError("envelope payload must be a JSON object")
        if payload.get("kind") != ENVELOPE_KIND:
            raise ValueError(
                f"not a {ENVELOPE_KIND} envelope: kind={payload.get('kind')!r}"
            )
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported envelope schema_version {version!r} "
                f"(this reader speaks {SCHEMA_VERSION})"
            )
        request = payload.get("request")
        return cls(
            report=report_from_dict(payload["report"]),
            request=(
                AnalysisRequest.from_dict(request)
                if request is not None
                else None
            ),
            schema_version=version,
            trace=payload.get("trace"),
        )

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """The human-readable rendering (delegates to the report)."""
        return self.report.to_text()
