"""Corpora replicating the paper's datasets.

Two layers:

* **metadata corpora** (Table I): year-stamped app-size samples drawn
  from log-normal distributions fitted to the paper's reported average
  and median sizes per year (a log-normal is fully determined by its
  mean and median, and app-size distributions are classically
  log-normal);
* the **144-app benchmark corpus** (Sec. VI-A): generated apps that all
  contain at least one of the target sink APIs (the paper pre-searched
  3,178 modern apps down to 144 such apps), with 2018-sized bulk code,
  mixed vulnerability patterns, and a deterministic seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.workload.generator import AppSpec, GeneratedApp, generate_app
from repro.workload.patterns import PatternSpec

#: Table I of the paper: year -> (average MB, median MB, sample count).
TABLE1_APP_SIZES: dict[int, tuple[float, float, int]] = {
    2014: (13.8, 8.4, 2840),
    2015: (18.8, 12.4, 1375),
    2016: (21.6, 16.2, 3510),
    2017: (32.9, 30.0, 1706),
    2018: (42.6, 38.0, 3178),
}


@dataclass(frozen=True)
class CorpusApp:
    """Metadata-only corpus entry (for the dataset-level experiments)."""

    package: str
    year: int
    size_mb: float
    installs: int


def year_size_distribution(year: int) -> tuple[float, float]:
    """The (mu, sigma) of the log-normal size model for *year*.

    For a log-normal, ``median = exp(mu)`` and
    ``mean = exp(mu + sigma^2 / 2)``, hence
    ``sigma = sqrt(2 ln(mean / median))``.
    """
    average, median, _ = TABLE1_APP_SIZES[year]
    mu = math.log(median)
    sigma = math.sqrt(2.0 * math.log(average / median))
    return mu, sigma


def sample_year_corpus(
    year: int, count: Optional[int] = None, seed: int = 7
) -> list[CorpusApp]:
    """Sample a year's corpus with the paper's size distribution."""
    mu, sigma = year_size_distribution(year)
    if count is None:
        count = TABLE1_APP_SIZES[year][2]
    rng = random.Random(f"{seed}-{year}")
    apps = []
    for index in range(count):
        size = rng.lognormvariate(mu, sigma)
        installs = int(rng.lognormvariate(math.log(4e6), 1.0)) + 1_000_000
        apps.append(
            CorpusApp(
                package=f"com.corpus.y{year}.app{index:05d}",
                year=year,
                size_mb=round(size, 1),
                installs=installs,
            )
        )
    return apps


# ======================================================================
# The 144-app benchmark corpus
# ======================================================================

#: Patterns drawn for benchmark apps, with draw weights reflecting how
#: common each shape is in real apps.
_PATTERN_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("direct_entry", 4.0),
    ("wrapper_chain", 3.0),
    ("string_built", 1.5),
    ("field_config", 1.5),
    ("super_poly", 1.0),
    ("child_invocation", 1.0),
    ("clinit_path", 1.0),
    ("icc_explicit", 1.5),
    ("icc_implicit", 0.8),
    ("async_executor", 1.2),
    ("async_asynctask", 1.2),
    ("callback_onclick", 1.2),
    ("library_skipped", 0.9),
    ("unregistered_component", 0.7),
    ("hierarchy_wrapped_sink", 0.3),
    ("dead_code", 1.5),
    ("recursive_chain", 2.4),
    ("multi_sink_branch", 1.3),
)

#: Fraction of pattern instances using insecure parameters.
_INSECURE_PROBABILITY = 0.35
#: Every N-th app carries the baseline-breaking hazard pattern
#: (deterministic, so small corpus runs still contain error apps; 12 of
#: 144 apps, echoing the paper's 10 error-masked apps).
_HAZARD_EVERY = 12
#: Bulk-code scale: filler classes per (paper-scale) MB.
_FILLER_PER_MB = 2.6
#: Heavy-tailed per-app "dataflow complexity".  Whole-app analysis time
#: is not a pure function of APK size — fixpoint depth and points-to
#: blow-ups give the real Amandroid its heavy-tailed runtimes (35% of
#: apps exceeded a timeout 3.8x the *median* time, which pure size
#: scaling cannot produce).  Complexity multiplies the reachable bulk
#: code, which only whole-app analyzers pay for.
_COMPLEXITY_SIGMA = 1.55
_COMPLEXITY_CAP = 12.0


def _draw_patterns(rng: random.Random) -> list[PatternSpec]:
    """Draw one app's pattern mix (shared by every generated corpus)."""
    names = [name for name, _ in _PATTERN_WEIGHTS]
    weights = [weight for _, weight in _PATTERN_WEIGHTS]
    # Sink-call counts vary widely (Fig. 9: up to ~70 per app, avg ~21).
    pattern_count = max(2, min(int(rng.lognormvariate(math.log(8), 0.7)), 40))
    return [
        PatternSpec(
            name=rng.choices(names, weights=weights, k=1)[0],
            insecure=rng.random() < _INSECURE_PROBABILITY,
        )
        for _ in range(pattern_count)
    ]


def benchmark_app_spec(index: int, seed: int = 2018, scale: float = 1.0) -> AppSpec:
    """The deterministic spec of benchmark app *index*."""
    rng = random.Random(f"{seed}-{index}")
    mu, sigma = year_size_distribution(2018)
    size_mb = min(rng.lognormvariate(mu, sigma), 110.0)
    complexity = min(max(rng.lognormvariate(0.0, _COMPLEXITY_SIGMA), 0.3),
                     _COMPLEXITY_CAP)

    patterns = _draw_patterns(rng)
    # Guarantee the pre-search property: every benchmark app contains at
    # least one target sink API call.
    if all(p.name == "hazard_dangling" for p in patterns):
        patterns.append(PatternSpec("direct_entry", insecure=False))
    if index % _HAZARD_EVERY == _HAZARD_EVERY - 5:
        # Hazard apps always carry a detectable vulnerability, so the
        # baseline's analysis error demonstrably masks a detection
        # (Sec. VI-C, "occasional errors": 10 of the 54).
        patterns.append(PatternSpec("hazard_dangling"))
        patterns.append(PatternSpec("direct_entry", insecure=True))

    filler = max(4, int(size_mb * _FILLER_PER_MB * complexity * scale))
    return AppSpec(
        package=f"com.bench.app{index:03d}",
        seed=index * 7919 + seed,
        patterns=tuple(patterns),
        filler_classes=filler,
        methods_per_filler=6,
        year=2018,
        size_mb=round(size_mb, 1),
        installs=1_000_000 + index * 13_337,
    )


def year_app_spec(
    year: int, index: int, seed: int = 2018, scale: float = 1.0
) -> AppSpec:
    """A generatable app spec sampled from a Table-I year corpus.

    Unlike the metadata-only :func:`sample_year_corpus`, the result can
    be fed to :func:`~repro.workload.generator.generate_app` — the bridge
    the ``backdroid batch`` driver uses for ``--year`` runs.  Sizes (and
    hence bulk-code volume) follow the year's log-normal model.
    """
    rng = random.Random(f"{seed}-y{year}-{index}")
    mu, sigma = year_size_distribution(year)
    size_mb = min(rng.lognormvariate(mu, sigma), 110.0)
    complexity = min(max(rng.lognormvariate(0.0, _COMPLEXITY_SIGMA), 0.3),
                     _COMPLEXITY_CAP)
    patterns = _draw_patterns(rng)
    if not patterns or all(p.name == "hazard_dangling" for p in patterns):
        patterns.append(PatternSpec("direct_entry", insecure=False))
    filler = max(4, int(size_mb * _FILLER_PER_MB * complexity * scale))
    return AppSpec(
        package=f"com.corpus.y{year}.app{index:05d}",
        seed=index * 7919 + seed + year,
        patterns=tuple(patterns),
        filler_classes=filler,
        methods_per_filler=6,
        year=year,
        size_mb=round(size_mb, 1),
        installs=1_000_000 + index * 13_337,
    )


def app_spec_from_request(payload: dict) -> AppSpec:
    """The :class:`AppSpec` a service submission names.

    Accepted shapes (the ``POST /v1/jobs`` body)::

        {"app": "bench:7", "scale": 0.2}
        {"year": 2016, "index": 3, "scale": 1.0}

    Raises ``ValueError`` with a client-facing message on anything else;
    the HTTP layer maps that to a 400.
    """
    if not isinstance(payload, dict):
        raise ValueError("submission body must be a JSON object")
    try:
        scale = float(payload.get("scale", 1.0))
    except (TypeError, ValueError):
        raise ValueError("'scale' must be a number") from None
    # Bounded above: a client-supplied scale feeds the filler-code
    # volume, and an unbounded one could wedge a worker lane (or
    # overflow to inf) — operators wanting bigger apps own the CLI.
    if not (0 < scale <= 10.0):
        raise ValueError("'scale' must be a finite number in (0, 10]")

    app = payload.get("app")
    if app is not None:
        if not isinstance(app, str) or not app.startswith("bench:"):
            raise ValueError(
                "'app' must be a bench:<index> spec, e.g. \"bench:7\""
            )
        try:
            index = int(app.split(":", 1)[1])
        except ValueError:
            raise ValueError(
                "'app' must be a bench:<index> spec with an integer index"
            ) from None
        if index < 0:
            raise ValueError("'app' index must be >= 0")
        return benchmark_app_spec(index, scale=scale)

    if "year" in payload:
        try:
            year = int(payload["year"])
            index = int(payload.get("index", 0))
        except (TypeError, ValueError):
            raise ValueError("'year' and 'index' must be integers") from None
        if year not in TABLE1_APP_SIZES:
            raise ValueError(
                f"'year' must be one of {sorted(TABLE1_APP_SIZES)}"
            )
        if index < 0:
            raise ValueError("'index' must be >= 0")
        return year_app_spec(year, index, scale=scale)

    raise ValueError(
        "submission needs 'app' (bench:<index>) or 'year'/'index'"
    )


def benchmark_corpus(
    count: int = 144, seed: int = 2018, scale: float = 1.0
) -> list[GeneratedApp]:
    """Generate the pre-searched benchmark corpus (144 apps by default).

    ``scale`` multiplies the bulk-code volume; benchmarks use smaller
    scales for quick runs and 1.0 for the full reproduction.
    """
    return [
        generate_app(benchmark_app_spec(index, seed=seed, scale=scale))
        for index in range(count)
    ]
