"""Persistent warm-start artifacts for corpus batch runs.

* :mod:`repro.store.artifacts` — the content-addressed on-disk
  :class:`ArtifactStore`: per-class-group *shards* (token streams plus
  prefolded posting lists, shared across every app that embeds the same
  library code), per-app manifests composing shards back into
  byte-identical indexes, and finished batch outcomes — all keyed by
  content hashes plus a format version, with atomic (rename-published)
  writes safe under the process-pool batch executor.
* :mod:`repro.store.sharding` — the class-group partitioner, shard
  content addressing, and the exact composition of shard mini-indexes
  back into one app-level :class:`~repro.search.backends.indexed.TokenIndex`.

The on-disk format is specified in ``docs/STORE_FORMAT.md``.
"""

from repro.store.artifacts import (
    FORMAT_VERSION,
    PROBE_LEVELS,
    WARM_LEVELS,
    ArtifactStore,
    GcResult,
    StoreInventory,
    StoreProbe,
    StoreStats,
    VerifyEntry,
    store_key,
)
from repro.store.sharding import (
    ShardGroup,
    group_label,
    partition_disassembly,
    shard_key,
)

__all__ = [
    "FORMAT_VERSION",
    "PROBE_LEVELS",
    "WARM_LEVELS",
    "ArtifactStore",
    "GcResult",
    "ShardGroup",
    "StoreInventory",
    "StoreProbe",
    "StoreStats",
    "VerifyEntry",
    "group_label",
    "partition_disassembly",
    "shard_key",
    "store_key",
]
