"""The BackDroid driver: the four-step pipeline of Fig. 2.

1. *Preprocessing*: the :class:`~repro.android.apk.Apk` already carries
   the IR view and the dexdump plaintext (merged multidex).
2. *Initial sink search*: locate target sink API calls by text search of
   the bytecode plaintext.
3. *Backward slicing*: generate one SSG per sink call, driving the
   on-the-fly search whenever a caller must be located.
4. *Forward analysis*: propagate constants and points-to facts over each
   SSG and hand the resolved sink parameters to the detectors.

Sink-API-call caching (Sec. IV-F) short-circuits sinks hosted by a method
already proven unreachable.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Optional

from repro.android.apk import Apk
from repro.android.framework import SinkSpec, sinks_for_rules
from repro.core.detectors import DETECTORS
from repro.core.forward import ForwardPropagation
from repro.core.report import AnalysisReport, SinkRecord
from repro.core.slicer import BackwardSlicer, SinkCallSite
from repro.dex.types import MethodSignature
from repro.search.basic import locate_call_sites
from repro.search.caching import SearchCommandCache, SinkReachabilityCache
from repro.search.engine import CallerResolutionEngine
from repro.search.loops import LoopDetector
from repro.store import ArtifactStore

#: Selectable warm-start reuse levels (``BackDroidConfig.store_mode``).
STORE_MODES = ("index", "full")


@dataclass
class BackDroidConfig:
    """Tuning knobs.  BackDroid needs no precision/performance trade-off
    parameters (Sec. VI-A); these switches exist to reproduce specific
    paper behaviours and for the ablation benchmarks."""

    #: Which sink rule families to analyze.
    sink_rules: tuple[str, ...] = ("crypto-ecb", "ssl-verifier")
    #: Explicit sink list overriding ``sink_rules`` when set.
    sinks: Optional[tuple[SinkSpec, ...]] = None
    #: The Sec. VI-C false-negative fix: also search sink signatures
    #: re-homed onto app classes extending the sink's declaring class
    #: (off by default, reproducing the paper's two FNs).
    check_class_hierarchy_in_initial_search: bool = False
    #: Sec. IV-F enhancements (ablation switches).
    enable_search_cache: bool = True
    enable_sink_cache: bool = True
    #: Which search backend scans the plaintext: ``"linear"`` (the
    #: paper's O(text) scan) or ``"indexed"`` (prebuilt inverted index).
    search_backend: str = "linear"
    #: LRU bound for the search command cache (None = unbounded, the
    #: paper's behaviour; batch runs may bound it to cap memory).
    search_cache_max_entries: Optional[int] = None
    #: Backward-walk work bound per sink.
    max_frames: int = 4000
    #: Attach full SSG dumps to the report notes.
    collect_ssg_dumps: bool = False
    #: Root of the persistent warm-start artifact store (None = off).
    #: A plain path string so configs stay picklable across pool workers.
    store_dir: Optional[str] = None
    #: What a warm store entry may replace: ``"index"`` restores the
    #: inverted index only; ``"full"`` additionally serves finished
    #: per-app outcomes in batch runs, skipping re-analysis entirely.
    store_mode: str = "index"

    def sink_specs(self) -> tuple[SinkSpec, ...]:
        if self.sinks is not None:
            return self.sinks
        return sinks_for_rules(self.sink_rules)

    # ------------------------------------------------------------------
    def artifact_store(self) -> Optional[ArtifactStore]:
        """A fresh store handle for this config, or None when disabled."""
        if self.store_dir is None:
            return None
        if self.store_mode not in STORE_MODES:
            raise ValueError(
                f"unknown store mode {self.store_mode!r}: "
                f"choose from {STORE_MODES}"
            )
        return ArtifactStore(self.store_dir)

    def store_fingerprint(self) -> str:
        """A stable digest of every analysis-affecting knob.

        Stored outcomes are only reusable under the exact configuration
        that produced them; anything altering findings, per-sink
        verdicts or the reported backend/cache statistics must feed
        this hash.
        """
        parts = (
            repr(tuple(sorted(self.sink_rules))),
            repr(
                tuple(
                    (s.rule, s.key, s.tracked_params) for s in self.sinks
                )
                if self.sinks is not None
                else None
            ),
            repr(self.check_class_hierarchy_in_initial_search),
            repr(self.max_frames),
            repr(self.search_backend),
            repr(self.enable_search_cache),
            repr(self.enable_sink_cache),
            repr(self.search_cache_max_entries),
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


class BackDroid:
    """Targeted, search-driven security vetting of one app at a time."""

    def __init__(self, config: Optional[BackDroidConfig] = None) -> None:
        self.config = config if config is not None else BackDroidConfig()

    # ------------------------------------------------------------------
    def analyze(self, apk: Apk) -> AnalysisReport:
        """Run the full Fig. 2 pipeline on one app."""
        started = time.perf_counter()
        cache = (
            SearchCommandCache(max_entries=self.config.search_cache_max_entries)
            if self.config.enable_search_cache
            else None
        )
        loops = LoopDetector()
        engine = CallerResolutionEngine(
            apk,
            cache=cache,
            loops=loops,
            backend=self.config.search_backend,
            store=self.config.artifact_store(),
        )
        slicer = BackwardSlicer(apk, engine=engine, max_frames=self.config.max_frames)
        sink_cache = SinkReachabilityCache()
        report = AnalysisReport(package=apk.package)

        for site in self.find_sink_call_sites(apk, engine):
            sink_started = time.perf_counter()
            record = SinkRecord(site=site, reachable=False)
            cached_verdict = (
                sink_cache.lookup(site.method) if self.config.enable_sink_cache else None
            )
            if cached_verdict is False:
                # Sec. IV-F: the hosting method is known-unreachable.
                record.cached = True
                record.duration_seconds = time.perf_counter() - sink_started
                report.records.append(record)
                continue
            ssg = slicer.slice_sink(site)
            record.reachable = ssg.reached_entry
            record.ssg_size = len(ssg)
            record.entry_points = tuple(sorted(str(e) for e in ssg.entry_points))
            if self.config.enable_sink_cache:
                sink_cache.store(site.method, ssg.reached_entry)
            if ssg.reached_entry:
                facts = ForwardPropagation(apk, ssg).run()
                record.facts_repr = {k: str(v) for k, v in facts.items()}
                detector = DETECTORS.get(site.spec.rule)
                if detector is not None:
                    record.finding = detector.evaluate(
                        facts, site.method, site.stmt_index, apk.full_pool
                    )
            if self.config.collect_ssg_dumps:
                report.notes.append(ssg.render())
            record.duration_seconds = time.perf_counter() - sink_started
            report.records.append(record)

        report.analysis_seconds = time.perf_counter() - started
        if cache is not None:
            report.search_cache_rate = cache.stats.rate
            report.search_cache_lookups = cache.stats.lookups
            report.search_cache_evictions = cache.stats.evictions
        report.sink_cache_rate = sink_cache.stats.rate
        report.loop_counts = dict(loops.counts)
        report.search_backend = engine.searcher.backend.name
        report.backend_stats = engine.searcher.backend.describe()
        return report

    # ------------------------------------------------------------------
    def find_sink_call_sites(
        self, apk: Apk, engine: Optional[CallerResolutionEngine] = None
    ) -> list[SinkCallSite]:
        """Step 2 of Fig. 2: the initial sink search over the plaintext."""
        if engine is None:
            engine = CallerResolutionEngine(
                apk, backend=self.config.search_backend
            )
        pool = apk.full_pool
        sites: list[SinkCallSite] = []
        seen: set[tuple[MethodSignature, int]] = set()
        for spec in self.config.sink_specs():
            signatures = [spec.signature]
            if self.config.check_class_hierarchy_in_initial_search:
                # The fix for the paper's two FNs: app classes extending
                # the sink's declaring class may expose the sink API
                # under their own signature.
                for cls in pool.application_classes():
                    if spec.signature.class_name in pool.superclass_chain(cls.name):
                        if not cls.declares_sub_signature(spec.signature.sub_signature()):
                            signatures.append(spec.signature.with_class(cls.name))
            for signature in signatures:
                for hit in engine.searcher.find_invocations(signature):
                    if hit.method is None:
                        continue
                    for index in locate_call_sites(pool, hit.method, signature):
                        key = (hit.method, index)
                        if key in seen:
                            continue
                        seen.add(key)
                        sites.append(
                            SinkCallSite(method=hit.method, stmt_index=index, spec=spec)
                        )
        sites.sort(key=lambda s: (str(s.method), s.stmt_index))
        return sites
