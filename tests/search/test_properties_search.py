"""Property-based tests for the search layer.

The central soundness property of on-the-fly bytecode search: for any app
expressible in the IR, the callers located by search must equal the
callers present in the IR (ground truth by direct scanning).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.apk import Apk
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.search.basic import basic_search
from repro.search.index import BytecodeSearcher


@st.composite
def call_graphs(draw):
    """A random acyclic static-call structure: adjacency lists."""
    n = draw(st.integers(min_value=2, max_value=8))
    edges = []
    for callee in range(1, n):
        callers = draw(
            st.lists(
                st.integers(min_value=0, max_value=callee - 1),
                min_size=0,
                max_size=3,
                unique=True,
            )
        )
        edges.append((callee, callers))
    return n, edges


def _build_app(n, edges):
    app = AppBuilder()
    classes = []
    for index in range(n):
        cls = app.new_class(f"com.g.C{index}")
        classes.append(cls)
        method = cls.method("m", static=True)
        method.return_void()
    # Rewrite bodies: caller index -> invokes callee.
    for callee, callers in edges:
        for caller in callers:
            body = classes[caller].dex_class.find_method("m")
            builder_app = body  # DexMethod
            # Insert the invoke before the trailing return.
            from repro.dex.instructions import InvokeExpr, InvokeKind, InvokeStmt

            invoke = InvokeStmt(
                invoke=InvokeExpr(
                    InvokeKind.STATIC,
                    MethodSignature(f"com.g.C{callee}", "m", (), "void"),
                )
            )
            builder_app.body.insert(len(builder_app.body) - 1, invoke)
    return Apk(package="com.g", classes=app.build())


class TestSearchSoundnessAndCompleteness:
    @given(call_graphs())
    @settings(max_examples=30, deadline=None)
    def test_basic_search_equals_ir_ground_truth(self, graph):
        """search(callee) == {methods that textually invoke callee}."""
        n, edges = graph
        apk = _build_app(n, edges)
        searcher = BytecodeSearcher(apk.disassembly)
        pool = apk.full_pool
        truth: dict[int, set[str]] = {callee: set() for callee in range(n)}
        for callee, callers in edges:
            truth[callee] = {f"com.g.C{c}" for c in callers}
        for callee in range(n):
            sig = MethodSignature(f"com.g.C{callee}", "m", (), "void")
            found = {site.caller.class_name for site in basic_search(searcher, pool, sig)}
            assert found == truth.get(callee, set()), (
                f"callee C{callee}: search={found}, truth={truth.get(callee)}"
            )

    @given(call_graphs())
    @settings(max_examples=20, deadline=None)
    def test_search_results_cacheable_and_stable(self, graph):
        n, edges = graph
        apk = _build_app(n, edges)
        searcher = BytecodeSearcher(apk.disassembly)
        pool = apk.full_pool
        for callee in range(n):
            sig = MethodSignature(f"com.g.C{callee}", "m", (), "void")
            first = basic_search(searcher, pool, sig)
            second = basic_search(searcher, pool, sig)
            assert first == second
