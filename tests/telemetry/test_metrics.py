"""The metrics registry: instrument semantics and Prometheus rendering."""

import pytest

from repro.telemetry import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_counts_per_label_set(self, registry):
        c = registry.counter("jobs_total", "jobs", ("lane",))
        c.inc(lane="main")
        c.inc(lane="main")
        c.inc(lane="fast")
        assert c.value(lane="main") == 2.0
        assert c.value(lane="fast") == 1.0

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("ups_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_wrong_label_set_rejected(self, registry):
        c = registry.counter("jobs_total", "jobs", ("lane",))
        with pytest.raises(ValueError):
            c.inc(shard="x")
        with pytest.raises(ValueError):
            c.inc()  # missing the declared label entirely


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4.0

    def test_callback_backed_series(self, registry):
        depth = {"value": 7}
        g = registry.gauge("lane_depth", "", ("lane",))
        g.set_function(lambda: depth["value"], lane="main")
        assert g.value(lane="main") == 7.0
        depth["value"] = 3
        assert g.value(lane="main") == 3.0

    def test_inc_on_callback_series_rejected(self, registry):
        g = registry.gauge("depth")
        g.set_function(lambda: 1.0)
        with pytest.raises(ValueError):
            g.inc()

    def test_dying_callback_never_breaks_a_scrape(self, registry):
        g = registry.gauge("depth", "", ("lane",))
        g.set_function(lambda: 1.0, lane="main")

        def boom():
            raise RuntimeError("scheduler went away")

        g.set_function(boom, lane="fast")
        collected = dict(g.collect())
        assert collected == {("main",): 1.0}
        assert "depth" in registry.render_prometheus()


class TestHistogram:
    def test_observe_and_quantile(self, registry):
        h = registry.histogram("latency_seconds")
        for ms in range(1, 101):
            h.observe(ms / 1000.0)
        assert h.quantile(0.5) == pytest.approx(0.050)
        assert h.quantile(0.99) == pytest.approx(0.099)

    def test_quantile_null_semantics(self, registry):
        # Satellite (a): empty and one-sample windows are null, not 0.
        h = registry.histogram("latency_seconds")
        assert h.quantile(0.99) is None
        h.observe(0.010)
        assert h.quantile(0.99) is None
        h.observe(0.020)
        assert h.quantile(0.99) == pytest.approx(0.020)

    def test_prometheus_buckets_are_cumulative_and_end_at_inf(self, registry):
        h = registry.histogram(
            "latency_seconds", "how slow", buckets=(0.01, 0.1, 1.0)
        )
        h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)  # beyond the last bound: only +Inf catches it
        text = registry.render_prometheus()
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="0.01"} 1' in text
        assert 'latency_seconds_bucket{le="0.1"} 2' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert 'latency_seconds_count 3' in text

    def test_no_buckets_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("jobs_total", "jobs", ("lane",))
        again = registry.counter("jobs_total", "jobs", ("lane",))
        assert first is again

    def test_type_mismatch_rejected(self, registry):
        registry.counter("jobs_total")
        with pytest.raises(ValueError):
            registry.gauge("jobs_total")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("jobs_total", "jobs", ("lane",))
        with pytest.raises(ValueError):
            registry.counter("jobs_total", "jobs", ("shard",))

    def test_label_values_are_escaped(self, registry):
        c = registry.counter("odd_total", "", ("tag",))
        c.inc(tag='a"b\\c\nd')
        text = registry.render_prometheus()
        assert r'odd_total{tag="a\"b\\c\nd"} 1' in text

    def test_as_dict_snapshot(self, registry):
        c = registry.counter("jobs_total", "jobs", ("lane",))
        c.inc(lane="main")
        h = registry.histogram("latency_seconds")
        h.observe(0.01)
        h.observe(0.02)
        snapshot = registry.as_dict()
        assert snapshot["jobs_total"]["type"] == "counter"
        assert snapshot["jobs_total"]["series"] == [
            {"labels": {"lane": "main"}, "value": 1.0}
        ]
        latency = snapshot["latency_seconds"]["series"][0]
        assert latency["count"] == 2
        assert latency["p99"] == pytest.approx(0.02)
