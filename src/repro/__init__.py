"""BackDroid reproduction.

A from-scratch Python reproduction of *"When Program Analysis Meets
Bytecode Search: Targeted and Efficient Inter-procedural Analysis of
Modern Android Apps in BackDroid"* (Wu, Gao, Deng, Chang — DSN 2021).

Public entry points:

* :class:`repro.core.backdroid.BackDroid` — the targeted, search-driven
  analyzer (the paper's contribution).
* :class:`repro.baseline.wholeapp.AmandroidStyleAnalyzer` — the whole-app
  comparator used in the paper's evaluation.
* :mod:`repro.workload` — synthetic app/corpus generation standing in for
  the Google-Play datasets.
* :mod:`repro.service` — the persistent analysis service: store-aware
  job scheduling over worker lanes behind an HTTP JSON API
  (``backdroid serve``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
