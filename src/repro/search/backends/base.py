"""The pluggable search-backend protocol.

A :class:`SearchBackend` answers the three line-level queries the
:class:`~repro.search.index.BytecodeSearcher` is built on:

* ``literal_lines`` — every line containing an arbitrary substring;
* ``pattern_lines`` — every line matched by a regular expression;
* ``token_lines``  — every line where a *token-shaped* needle occurs
  (full dex method/field signatures, type descriptors, quoted string
  literals and quoted header descriptors — the shapes the paper's
  searches actually use, see Sec. IV).

Backends only return absolute line numbers; mapping a line back into the
program-analysis space (Fig. 3, steps 2-3) stays in the searcher, so
every backend yields byte-identical :class:`SearchHit` lists.
"""

from __future__ import annotations

import abc
import bisect
import re
from dataclasses import dataclass
from typing import ClassVar

from repro.dex.disassembler import Disassembly


@dataclass
class BackendStats:
    """Per-backend query counters (reported alongside cache rates)."""

    literal_queries: int = 0
    pattern_queries: int = 0
    token_queries: int = 0
    #: Queries the backend could not serve natively and delegated to a
    #: full text scan (always 0 for the linear backend).
    fallbacks: int = 0
    index_build_seconds: float = 0.0
    #: True when the index was restored from the artifact store instead
    #: of being built (always False for the linear backend).
    index_restored: bool = False
    #: Shard groups the store had to re-fold while restoring (0 for a
    #: fresh build or a full-shard restore; > 0 marks a warm-partial
    #: restore that patched only the missing groups).
    shards_patched: int = 0
    vocab_size: int = 0
    posting_entries: int = 0
    #: Shard groups a lazy restore has decoded so far (0 for fresh
    #: builds and eager restores — laziness observables, ISSUE 6).
    materialized_groups: int = 0
    #: Shard bytes mmapped by a lazy restore (0 when eager).
    bytes_mapped: int = 0
    #: Shard bytes actually decoded by a lazy restore; the gap to
    #: ``bytes_mapped`` is what laziness avoided paying.
    bytes_decoded: int = 0

    @property
    def queries(self) -> int:
        return self.literal_queries + self.pattern_queries + self.token_queries

    def as_dict(self) -> dict:
        return {
            "literal_queries": self.literal_queries,
            "pattern_queries": self.pattern_queries,
            "token_queries": self.token_queries,
            "fallbacks": self.fallbacks,
            "index_build_seconds": self.index_build_seconds,
            "index_restored": self.index_restored,
            "shards_patched": self.shards_patched,
            "vocab_size": self.vocab_size,
            "posting_entries": self.posting_entries,
            "materialized_groups": self.materialized_groups,
            "bytes_mapped": self.bytes_mapped,
            "bytes_decoded": self.bytes_decoded,
        }


class JoinedText:
    """One joined plaintext + cumulative line offsets, shared per app.

    Literal searches run as fast substring scans instead of per-line
    loops; the structure is memoized on the :class:`Disassembly` so
    multiple searchers/backends over one app share a single join.
    """

    def __init__(self, lines: list[str]) -> None:
        self.text = "\n".join(lines)
        self.line_offsets = [0]
        for line in lines:
            self.line_offsets.append(self.line_offsets[-1] + len(line) + 1)

    @classmethod
    def for_disassembly(cls, disassembly: Disassembly) -> "JoinedText":
        cached = getattr(disassembly, "_joined_text_cache", None)
        if cached is None:
            cached = cls(disassembly.lines)
            disassembly._joined_text_cache = cached
        return cached

    # ------------------------------------------------------------------
    def line_of_offset(self, offset: int) -> int:
        return bisect.bisect_right(self.line_offsets, offset) - 1

    def literal_lines(self, needle: str) -> list[int]:
        """All lines containing *needle*, ascending, one entry per line."""
        lines: list[int] = []
        start = 0
        while True:
            offset = self.text.find(needle, start)
            if offset < 0:
                break
            line_no = self.line_of_offset(offset)
            lines.append(line_no)
            # Continue after the end of this line: one hit per line.
            start = self.line_offsets[line_no + 1]
        return lines

    def pattern_lines(self, pattern: str) -> list[int]:
        """All lines matched by *pattern*, ascending, one entry per line."""
        compiled = re.compile(pattern)
        lines: list[int] = []
        last_line = -1
        for match in compiled.finditer(self.text):
            line_no = self.line_of_offset(match.start())
            if line_no != last_line:
                lines.append(line_no)
                last_line = line_no
        return lines


class SearchBackend(abc.ABC):
    """Line-level query engine over one app's disassembly plaintext."""

    #: Registry key and display name.
    name: ClassVar[str] = "abstract"

    def __init__(self, disassembly: Disassembly, store=None) -> None:
        self.disassembly = disassembly
        #: Optional warm-start artifact store (duck-typed to avoid a
        #: dependency cycle; see :mod:`repro.store`).  Only backends with
        #: persistable build products use it.
        self.store = store
        self.stats = BackendStats()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def literal_lines(self, needle: str) -> list[int]:
        """Lines containing an arbitrary literal substring."""

    @abc.abstractmethod
    def pattern_lines(self, pattern: str) -> list[int]:
        """Lines matched by a regular expression."""

    @abc.abstractmethod
    def token_lines(self, needle: str) -> list[int]:
        """Lines containing a token-shaped needle.

        Must agree exactly with ``literal_lines`` for every needle whose
        occurrences fall inside emitted tokens (dex signatures, type
        descriptors, quoted literals) — the backend-parity property the
        test suite enforces.
        """

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {"name": self.name, **self.stats.as_dict()}
