"""The HTTP front end: a stdlib JSON API over the scheduler.

Endpoints (all JSON)::

    POST   /v1/jobs        submit an app spec -> 202 + the job record
    GET    /v1/jobs/<id>   one job's status (and result once done)
    DELETE /v1/jobs/<id>   cancel: queued jobs cancel immediately,
                           running jobs are marked ``cancelling``
    GET    /v1/jobs        every retained job, submission order
    GET    /v1/stats       lanes, job counts, warm-hit rate, store counters
    GET    /healthz        liveness

A ``POST /v1/jobs`` body may carry per-job analysis overrides alongside
the app spec — ``rules`` (list of rule ids), ``backend``, ``max_frames``
and ``hierarchy`` — which become an
:class:`~repro.api.request.AnalysisRequest` for that job only.
Differently-targeted submissions of one app never share a result, but
they do share the scheduler's warm per-app session underneath.

Built on ``http.server.ThreadingHTTPServer`` — one thread per
connection, no third-party dependency — because the request handlers do
no analysis work themselves: a submit probes the store and enqueues
(milliseconds), everything else reads queue snapshots.  The worker
lanes live in the :class:`StoreAwareScheduler` underneath.

:class:`ServiceClient` is the matching ``urllib`` client used by tests,
CI smoke checks and scripts.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib import request as urlrequest
from urllib.error import HTTPError

from repro.api.registry import builtin_rules
from repro.api.request import AnalysisRequest, analysis_request_from_payload
from repro.service.jobs import (
    CANCEL_CONFLICT,
    CANCEL_TERMINAL,
    CANCEL_UNKNOWN,
    TERMINAL_STATES,
)
from repro.service.scheduler import StoreAwareScheduler
from repro.workload.corpus import app_spec_from_request

#: Largest request body a submission may carry (a spec is tiny; anything
#: bigger is a client error, not a payload to buffer).
MAX_BODY_BYTES = 64 * 1024


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests to the scheduler attached to the server."""

    server: "_ServiceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client that stalls mid-request (e.g. announces
    #: a Content-Length it never sends) must not pin a handler thread
    #: forever; ``handle_one_request`` turns the TimeoutError into a
    #: dropped connection.
    timeout = 30

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter (see ``/v1/stats``)."""

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        # An errored request may leave an unread body on the socket
        # (oversized POST, wrong path); dropping the connection keeps a
        # keep-alive client from parsing those bytes as its next request.
        self.close_connection = True
        self._send_json(status, {"error": message})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/healthz``, ``/v1/stats``, ``/v1/jobs[/<id>]``.

        Returns 200 with a JSON body, or 404 for unknown paths/jobs.
        """
        scheduler = self.server.scheduler
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, {"ok": True})
        elif path == "/v1/stats":
            self._send_json(200, scheduler.stats())
        elif path == "/v1/jobs":
            self._send_json(200, {"jobs": scheduler.queue.snapshots()})
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            snapshot = scheduler.queue.snapshot(job_id)
            if snapshot is None:
                self._error(404, f"unknown or evicted job {job_id!r}")
            else:
                self._send_json(200, snapshot)
        else:
            self._error(404, f"no such endpoint {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """``POST /v1/jobs``: validate, submit, answer 202 + record.

        The body is a small JSON object naming the app spec plus
        optional per-job overrides (``rules``/``backend``/
        ``max_frames``/``hierarchy``).  400 on malformed bodies or
        unknown rules, 503 when the scheduler is shut down.
        """
        if self.path.rstrip("/") != "/v1/jobs":
            self._error(404, f"no such endpoint {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, "submission body required (a small JSON object)")
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._error(400, "submission body is not valid JSON")
            return
        scheduler = self.server.scheduler
        try:
            spec = app_spec_from_request(payload)
            request = analysis_request_from_payload(
                payload,
                known_rules=self._known_rules(scheduler),
                # Overrides layer onto the *service's* configuration, so
                # a body naming only e.g. max_frames keeps the operator's
                # rule selection.
                defaults=AnalysisRequest.from_config(scheduler.config),
            )
        except ValueError as exc:
            self._error(400, str(exc))
            return
        try:
            job = scheduler.submit(spec, request=request)
        except RuntimeError as exc:  # shut down mid-flight
            self._error(503, str(exc))
            return
        # A fast-lane job can finish — and, under a tiny retention
        # bound, even be evicted — before this snapshot; the job record
        # itself is always a valid response body.
        snapshot = self.server.scheduler.queue.snapshot(job.id)
        self._send_json(202, snapshot if snapshot is not None else job.as_dict())

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        """``DELETE /v1/jobs/<id>``: cancel one job.

        200 with the job snapshot on success (queued jobs cancel
        immediately; running ones report ``cancelling``), 404 for
        unknown ids, 409 when terminal or shared by coalesced
        submissions.
        """
        path = self.path.rstrip("/")
        if not path.startswith("/v1/jobs/"):
            self._error(404, f"no such endpoint {self.path!r}")
            return
        job_id = path[len("/v1/jobs/"):]
        job, disposition = self.server.scheduler.cancel(job_id)
        if disposition == CANCEL_UNKNOWN:
            self._error(404, f"unknown or evicted job {job_id!r}")
        elif disposition == CANCEL_TERMINAL:
            self._error(409, f"job {job_id} already {job.state}")
        elif disposition == CANCEL_CONFLICT:
            self._error(
                409,
                f"job {job_id} is shared by coalesced submissions; "
                f"cancel those followers instead",
            )
        else:  # cancelled now, or cancelling while the worker finishes
            snapshot = self.server.scheduler.queue.snapshot(job_id)
            self._send_json(
                200, snapshot if snapshot is not None else job.as_dict()
            )

    @staticmethod
    def _known_rules(scheduler: StoreAwareScheduler) -> tuple[str, ...]:
        """The rule ids submissions may target on this service."""
        if scheduler.registry is not None:
            return scheduler.registry.rules
        return builtin_rules()


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Service restarts must not wait out TIME_WAIT sockets.
    allow_reuse_address = True

    def __init__(self, address, scheduler: StoreAwareScheduler) -> None:
        """Bind ``address`` and attach the scheduler handlers route to."""
        super().__init__(address, _ServiceHandler)
        self.scheduler = scheduler


class AnalysisServer:
    """A running analysis service: scheduler + HTTP listener.

    ``port=0`` binds an ephemeral port; read the real one from
    :attr:`address`.  The listener runs on a daemon thread so
    ``serve_forever`` semantics stay with the caller (the CLI blocks on
    :meth:`join`, tests just use the context manager).
    """

    def __init__(
        self,
        scheduler: StoreAwareScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        """Bind the listener (not yet serving) over ``scheduler``.

        ``port=0`` picks an ephemeral port; see :attr:`address`.
        """
        self.scheduler = scheduler
        self._http = _ServiceHTTPServer((host, port), scheduler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative even for ``port=0``."""
        return self._http.server_address[0], self._http.server_address[1]

    # ------------------------------------------------------------------
    def start(self) -> "AnalysisServer":
        """Start serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="backdroid-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def join(self) -> None:
        """Block the caller until the listener thread exits."""
        if self._thread is not None:
            self._thread.join()

    def shutdown(self, drain: bool = True) -> None:
        """Stop the listener, then (with ``drain``) finish queued jobs.

        Ordering matters: closing the listener first guarantees no new
        submissions race the drain, so every job accepted before
        shutdown reaches a terminal state.  Safe on a never-started
        server (only the bound socket is released).
        """
        if self._thread is not None:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.scheduler.shutdown(wait=drain)

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)


class ServiceClient:
    """Minimal ``urllib`` client for the service API (tests, CI, scripts)."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        """Point the client at ``host:port`` with one request timeout."""
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple[int, dict]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as response:
                return response.status, json.loads(response.read() or b"{}")
        except HTTPError as exc:
            body = exc.read()
            try:
                return exc.code, json.loads(body or b"{}")
            except json.JSONDecodeError:
                return exc.code, {"error": body.decode("utf-8", "replace")}

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` liveness payload (``{\"ok\": true}``)."""
        return self._request("GET", "/healthz")[1]

    def submit(self, request_payload: dict) -> dict:
        """Submit a spec; raises ``ValueError`` on a client error."""
        status, payload = self._request("POST", "/v1/jobs", request_payload)
        if status >= 400:
            raise ValueError(payload.get("error", f"HTTP {status}"))
        return payload

    def job(self, job_id: str) -> Optional[dict]:
        """One job's snapshot, or None for unknown/evicted ids."""
        status, payload = self._request("GET", f"/v1/jobs/{job_id}")
        return None if status == 404 else payload

    def cancel(self, job_id: str) -> dict:
        """Cancel a job; raises ``KeyError`` on unknown ids and
        ``ValueError`` when the job cannot be cancelled (already
        terminal, or shared by coalesced submissions)."""
        status, payload = self._request("DELETE", f"/v1/jobs/{job_id}")
        if status == 404:
            raise KeyError(f"unknown or evicted job {job_id!r}")
        if status >= 400:
            raise ValueError(payload.get("error", f"HTTP {status}"))
        return payload

    def jobs(self) -> list[dict]:
        """Every retained job snapshot, in submission order."""
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def stats(self) -> dict:
        """The ``/v1/stats`` payload: lanes, jobs, warm rate, store."""
        return self._request("GET", "/v1/stats")[1]

    def wait(
        self, job_id: str, timeout: float = 30.0, poll_seconds: float = 0.05
    ) -> dict:
        """Poll a job to a terminal state over HTTP."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot is None:
                raise KeyError(f"unknown or evicted job {job_id!r}")
            if snapshot["state"] in TERMINAL_STATES:
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)
