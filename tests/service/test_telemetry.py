"""End-to-end telemetry: traces across the process boundary, the
metrics endpoints, and the client's observability read path."""

import os

import pytest

from repro.core import BackDroidConfig, analyze_spec
from repro.service import AnalysisServer, ServiceClient, StoreAwareScheduler
from repro.workload.corpus import benchmark_app_spec

SCALE = 0.05


def _config(tmp_path, mode="full"):
    return BackDroidConfig(
        search_backend="indexed",
        store_dir=str(tmp_path / "store"),
        store_mode=mode,
    )


def _by_name(trace):
    return {span["name"]: span for span in trace}


class TestWarmTrace:
    def test_warm_job_records_an_in_process_trace(self, tmp_path):
        config = _config(tmp_path)
        outcome = analyze_spec(benchmark_app_spec(0, scale=SCALE), config)
        assert outcome.ok
        with StoreAwareScheduler(config, workers=1) as scheduler:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            done = scheduler.wait(job.id, timeout=60)
            assert done.state == "done"
            assert done.trace_id is not None
            names = {span["name"] for span in done.trace}
            assert {"job", "store.probe", "queue", "dispatch"} <= names
            assert "store.outcome_restore" in names
            # One trace, all in this interpreter.
            assert {s["trace_id"] for s in done.trace} == {done.trace_id}
            assert {s["pid"] for s in done.trace} == {os.getpid()}
            by_name = _by_name(done.trace)
            assert by_name["job"]["attrs"]["state"] == "done"
            assert by_name["store.probe"]["attrs"]["warm"] is True
            assert by_name["dispatch"]["attrs"]["executor"] == "in-process"

    def test_trace_spans_nest_under_the_job_root(self, tmp_path):
        with StoreAwareScheduler(_config(tmp_path), workers=1) as scheduler:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            done = scheduler.wait(job.id, timeout=60)
            by_name = _by_name(done.trace)
            root = by_name["job"]
            assert root["parent_id"] is None
            assert by_name["queue"]["parent_id"] == root["span_id"]
            assert by_name["dispatch"]["parent_id"] == root["span_id"]
            # Pipeline spans hang off the dispatch scope, not the root.
            assert by_name["search.sinks"]["trace_id"] == root["trace_id"]

    def test_coalesced_follower_gets_a_pointer_trace(self, tmp_path):
        import threading

        import repro.service.scheduler as scheduler_module

        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        scheduler_module.analyze_spec = gated
        try:
            with StoreAwareScheduler(
                _config(tmp_path), workers=1
            ) as scheduler:
                spec = benchmark_app_spec(0, scale=SCALE)
                first = scheduler.submit(spec)
                second = scheduler.submit(spec)
                release.set()
                assert second.coalesced_into == first.id
                done = scheduler.wait(second.id, timeout=60)
                # The follower owns its own (tiny) trace pointing at
                # the primary's, so trace ids stay 1:1 with jobs.
                assert done.trace_id != first.trace_id
                by_name = _by_name(done.trace)
                attrs = by_name["job"]["attrs"]
                assert attrs["coalesced_into"] == first.id
                assert attrs["primary_trace_id"] == first.trace_id
        finally:
            scheduler_module.analyze_spec = real


class TestColdCrossProcessTrace:
    def test_single_trace_spans_the_worker_process(self, tmp_path):
        with StoreAwareScheduler(
            _config(tmp_path), workers=1, cold_executor="process"
        ) as scheduler:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            done = scheduler.wait(job.id, timeout=60)
            assert done.state == "done"
            names = {span["name"] for span in done.trace}
            # The acceptance path: submit -> queue -> dispatch ->
            # worker -> pipeline stages, one trace id end to end.
            assert {
                "job", "store.probe", "queue", "dispatch", "worker",
                "search.sinks", "resolve.callers", "report.render",
            } <= names
            assert {s["trace_id"] for s in done.trace} == {done.trace_id}
            by_name = _by_name(done.trace)
            worker = by_name["worker"]
            dispatch = by_name["dispatch"]
            # Worker spans carry the worker process's pid.
            assert worker["pid"] != os.getpid()
            assert worker["pid"] == done.worker_pid
            assert worker["parent_id"] == dispatch["span_id"]
            assert by_name["search.sinks"]["pid"] == worker["pid"]
            assert dispatch["attrs"]["worker_pid"] == worker["pid"]

    def test_crash_respawn_keeps_one_trace_across_attempts(
        self, tmp_path, monkeypatch
    ):
        import signal as signal_module

        from repro.service.workers import STALL_ENV_VAR

        monkeypatch.setenv(STALL_ENV_VAR, "30")
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, cold_executor="process"
        )
        try:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            deadline_state = scheduler.wait  # alias for line length
            while scheduler.queue.get(job.id).state != "running":
                pass
            (pid,) = scheduler.stats()["cold"]["worker_pids"]
            monkeypatch.delenv(STALL_ENV_VAR)
            os.kill(pid, signal_module.SIGKILL)
            done = deadline_state(job.id, timeout=60)
            assert done.state == "done"
            dispatches = [
                s for s in done.trace if s["name"] == "dispatch"
            ]
            # Two dispatch attempts, same trace: attempt 1 died on the
            # killed worker, attempt 2 succeeded on the respawn.
            assert [d["attrs"]["attempt"] for d in dispatches] == [1, 2]
            assert dispatches[0]["attrs"]["died"] is True
            assert dispatches[1]["attrs"]["died"] is False
            assert {d["trace_id"] for d in dispatches} == {done.trace_id}
            worker_spans = [
                s for s in done.trace if s["name"] == "worker"
            ]
            assert len(worker_spans) == 1  # the killed attempt's spans died with it
            assert worker_spans[0]["pid"] == done.worker_pid
        finally:
            scheduler.shutdown(wait=False)


class TestDisabledTelemetry:
    def test_tracing_disabled_is_absent_but_harmless(self, tmp_path):
        with StoreAwareScheduler(
            _config(tmp_path),
            workers=1,
            cold_executor="process",
            tracing_enabled=False,
        ) as scheduler:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            done = scheduler.wait(job.id, timeout=60)
            assert done.state == "done"
            assert done.trace_id is None
            assert done.trace is None
            assert done.as_dict(include_trace=True)["trace"] is None

    def test_metrics_disabled_stats_say_none(self, tmp_path):
        with StoreAwareScheduler(
            _config(tmp_path), workers=1, enable_metrics=False
        ) as scheduler:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            assert scheduler.wait(job.id, timeout=60).state == "done"
            assert scheduler.metrics is None
            assert scheduler.stats()["metrics"] is None


class TestSchedulerMetrics:
    def test_instruments_cover_the_job_lifecycle(self, tmp_path):
        config = _config(tmp_path)
        outcome = analyze_spec(benchmark_app_spec(0, scale=SCALE), config)
        assert outcome.ok
        with StoreAwareScheduler(
            config, workers=1, fast_lane_workers=1
        ) as scheduler:
            warm = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            cold = scheduler.submit(benchmark_app_spec(1, scale=SCALE))
            scheduler.wait(warm.id, timeout=60)
            scheduler.wait(cold.id, timeout=60)
            m = scheduler.metrics
            submitted = m.get("backdroid_jobs_submitted_total")
            assert submitted.value(lane="fast") == 1.0
            assert submitted.value(lane="main") == 1.0
            completed = m.get("backdroid_jobs_completed_total")
            assert completed.value(lane="fast") == 1.0
            assert m.get("backdroid_warm_submissions_total").value() == 1.0
            probe = m.get("backdroid_store_probe_total")
            assert probe.value(level="outcome") == 1.0
            # Callback gauges read live scheduler state at scrape time.
            depth = m.get("backdroid_lane_depth")
            assert depth.value(lane="main") == 0.0
            text = m.render_prometheus()
            assert "backdroid_job_service_seconds_bucket" in text
            assert 'backdroid_store_counter{counter="outcome_hits"}' in text

    def test_stats_embeds_the_metrics_snapshot(self, tmp_path):
        with StoreAwareScheduler(_config(tmp_path), workers=1) as scheduler:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            scheduler.wait(job.id, timeout=60)
            snapshot = scheduler.stats()["metrics"]
            assert (
                snapshot["backdroid_jobs_submitted_total"]["type"]
                == "counter"
            )


@pytest.fixture
def service(tmp_path):
    config = _config(tmp_path)
    outcome = analyze_spec(benchmark_app_spec(0, scale=SCALE), config)
    assert outcome.ok, outcome.error
    scheduler = StoreAwareScheduler(config, workers=1, fast_lane_workers=1)
    server = AnalysisServer(scheduler, port=0)
    server.start()
    host, port = server.address
    try:
        yield ServiceClient(host=host, port=port)
    finally:
        server.shutdown()


class TestHttpTelemetry:
    def test_job_trace_via_query_flag(self, service):
        created = service.submit({"app": "bench:0", "scale": SCALE})
        done = service.wait(created["id"])
        assert done["state"] == "done"
        assert "trace" not in done  # not shipped unless asked for
        traced = service.job(created["id"], trace=True)
        names = {span["name"] for span in traced["trace"]}
        assert {"job", "queue", "dispatch"} <= names
        assert traced["trace_id"] == done["trace_id"]

    def test_metrics_endpoint_serves_prometheus_text(self, service):
        created = service.submit({"app": "bench:0", "scale": SCALE})
        service.wait(created["id"])
        text = service.metrics()
        assert "# TYPE backdroid_jobs_submitted_total counter" in text
        assert "backdroid_http_requests_total" in text
        assert 'le="+Inf"' in text

    def test_stats_includes_metrics_and_is_retry_free(self, service):
        stats = service.stats()
        assert "metrics" in stats
        assert service.retries_used == 0

    def test_event_loop_lag_histogram_is_exported(self, service):
        text = service.metrics()
        assert "# TYPE backdroid_event_loop_lag_seconds histogram" in text


class TestMetricsDisabledOverHttp:
    @pytest.fixture
    def no_metrics_service(self, tmp_path):
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, enable_metrics=False
        )
        server = AnalysisServer(scheduler, port=0)
        server.start()
        host, port = server.address
        try:
            yield ServiceClient(host=host, port=port)
        finally:
            server.shutdown()

    def test_metrics_endpoint_is_404(self, no_metrics_service):
        with pytest.raises(ValueError, match="404"):
            no_metrics_service.metrics()

    def test_stats_still_work(self, no_metrics_service):
        assert no_metrics_service.stats()["metrics"] is None
