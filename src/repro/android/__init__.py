"""Android substrate: framework model, manifest, and the Apk container.

The original BackDroid analyses real APKs against the Android SDK.  This
package provides the equivalent substrate for the reproduction:

* :mod:`repro.android.framework` — a bodiless model of the framework and
  JDK classes the analyses must know about (lifecycle handlers, callback
  interfaces, asynchronous dispatch APIs, ICC APIs, and the
  security-sensitive sink APIs);
* :mod:`repro.android.manifest` — the ``AndroidManifest.xml`` model:
  registered components and their intent filters;
* :mod:`repro.android.apk` — the ``Apk`` bundle of app classes + manifest
  + metadata, with cached disassembly.
"""

from repro.android.framework import (
    ASYNC_EDGE_MAP,
    CALLBACK_REGISTRATIONS,
    FRAMEWORK_PACKAGE_PREFIXES,
    ICC_CALL_APIS,
    LIFECYCLE_HANDLERS,
    LIFECYCLE_PREDECESSORS,
    SINK_CATALOGUE,
    SinkSpec,
    build_framework_pool,
    is_framework_class,
)
from repro.android.manifest import Component, ComponentKind, IntentFilter, Manifest
from repro.android.apk import Apk

__all__ = [
    "ASYNC_EDGE_MAP",
    "Apk",
    "CALLBACK_REGISTRATIONS",
    "Component",
    "ComponentKind",
    "FRAMEWORK_PACKAGE_PREFIXES",
    "ICC_CALL_APIS",
    "IntentFilter",
    "LIFECYCLE_HANDLERS",
    "LIFECYCLE_PREDECESSORS",
    "Manifest",
    "SINK_CATALOGUE",
    "SinkSpec",
    "build_framework_pool",
    "is_framework_class",
]
