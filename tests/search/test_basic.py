"""Unit tests for the basic signature-based search (Sec. IV-A)."""

from repro.dex.builder import AppBuilder
from repro.android.apk import Apk
from repro.dex.types import MethodSignature
from repro.search.basic import basic_search, build_search_signatures
from repro.search.index import BytecodeSearcher


def _engine_parts(apk):
    return BytecodeSearcher(apk.disassembly), apk.full_pool


class TestPaperRunningExample:
    def test_fig3_private_method_search(self, lg_tv_plus):
        """The exact Fig. 3 flow: private start() found in $1.run()."""
        searcher, pool = _engine_parts(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        sites = basic_search(searcher, pool, callee)
        assert len(sites) == 1
        site = sites[0]
        assert site.caller == MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )
        # Step 4: the call site is the actual invoke statement.
        caller_body = pool.resolve_method(site.caller).body
        expr = caller_body[site.stmt_index].invoke_expr()
        assert expr is not None and expr.method == callee

    def test_constructor_search(self, lg_tv_plus):
        searcher, pool = _engine_parts(lg_tv_plus)
        ctor = MethodSignature(
            "com.connectsdk.service.NetcastTVService$1",
            "<init>",
            ("com.connectsdk.service.NetcastTVService",),
            "void",
        )
        sites = basic_search(searcher, pool, ctor)
        assert len(sites) == 1
        assert sites[0].caller.name == "connect"

    def test_static_method_search(self, lg_tv_plus):
        searcher, pool = _engine_parts(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.core.Util",
            "runInBackground",
            ("java.lang.Runnable", "boolean"),
            "void",
        )
        sites = basic_search(searcher, pool, callee)
        assert len(sites) == 1
        assert sites[0].caller == MethodSignature(
            "com.connectsdk.core.Util",
            "runInBackground",
            ("java.lang.Runnable",),
            "void",
        )


class TestChildClassSignatures:
    def _child_app(self, overriding: bool):
        app = AppBuilder()
        parent = app.new_class("com.x.Server")
        parent.default_constructor()
        start = parent.method("start")
        start.return_void()
        child = app.new_class("com.x.ChildServer", superclass="com.x.Server")
        child.default_constructor()
        if overriding:
            om = child.method("start")
            om.return_void()
        user = app.new_class("com.x.User")
        go = user.method("go")
        obj = go.new_init("com.x.ChildServer")
        # The developer invokes through the child's signature.
        go.invoke_virtual(obj, "com.x.ChildServer", "start")
        go.return_void()
        return Apk(package="com.x", classes=app.build())

    def test_non_overriding_child_adds_search_signature(self):
        apk = self._child_app(overriding=False)
        searcher, pool = _engine_parts(apk)
        callee = MethodSignature("com.x.Server", "start", (), "void")
        signatures = build_search_signatures(pool, callee)
        assert MethodSignature("com.x.ChildServer", "start", (), "void") in signatures
        sites = basic_search(searcher, pool, callee)
        assert [s.caller.class_name for s in sites] == ["com.x.User"]
        assert sites[0].matched_signature.class_name == "com.x.ChildServer"

    def test_overriding_child_is_excluded(self):
        apk = self._child_app(overriding=True)
        searcher, pool = _engine_parts(apk)
        callee = MethodSignature("com.x.Server", "start", (), "void")
        signatures = build_search_signatures(pool, callee)
        # Only the original signature: the child search signature would
        # correspond to the overriding child method instead.
        assert signatures == [callee]
        assert basic_search(searcher, pool, callee) == []

    def test_overridden_child_callee_still_found(self):
        apk = self._child_app(overriding=True)
        searcher, pool = _engine_parts(apk)
        child_callee = MethodSignature("com.x.ChildServer", "start", (), "void")
        sites = basic_search(searcher, pool, child_callee)
        assert [s.caller.class_name for s in sites] == ["com.x.User"]


class TestRecursionAndDedup:
    def test_self_recursion_is_not_a_caller(self):
        app = AppBuilder()
        cls = app.new_class("com.x.Rec")
        m = cls.method("spin", static=True)
        m.invoke_static("com.x.Rec", "spin")
        m.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _engine_parts(apk)
        callee = MethodSignature("com.x.Rec", "spin", (), "void")
        assert basic_search(searcher, pool, callee) == []

    def test_two_sites_in_one_caller_both_reported(self):
        app = AppBuilder()
        helper = app.new_class("com.x.H")
        hm = helper.method("help", static=True)
        hm.return_void()
        user = app.new_class("com.x.U")
        um = user.method("go")
        um.invoke_static("com.x.H", "help")
        um.invoke_static("com.x.H", "help")
        um.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _engine_parts(apk)
        callee = MethodSignature("com.x.H", "help", (), "void")
        sites = basic_search(searcher, pool, callee)
        assert len(sites) == 2
        assert len({s.stmt_index for s in sites}) == 2
