"""Unit tests for the command-line front end."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_analyze_heyzap_vulnerable_exit_code(self, capsys):
        code = main(["analyze", "heyzap", "--rules", "ssl-verifier"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VULNERABLE" in out

    def test_analyze_palcomp3_open_port(self, capsys):
        code = main(["analyze", "palcomp3", "--rules", "open-port", "--dump-ssg"])
        out = capsys.readouterr().out
        assert "8089" in out
        assert "static track" in out

    def test_analyze_with_hierarchy_fix_flag(self, capsys):
        code = main(["analyze", "lgtv", "--hierarchy-fix"])
        assert code == 0  # no crypto/ssl findings in the LG miniature

    def test_unknown_app_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", "nonexistent"])


class TestOtherCommands:
    def test_compare(self, capsys):
        code = main(["compare", "heyzap", "--timeout", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "BackDroid" in out and "whole-app" in out

    def test_corpus(self, capsys):
        code = main(["corpus", "--year", "2016", "--count", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "year 2016" in out

    def test_inventory_bench_app(self, capsys):
        code = main(["inventory", "bench:0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "com.bench.app000" in out
        assert "components:" in out
