"""HTTP round-trip tests: ServiceClient against a live AnalysisServer."""

import pytest

from repro.core import BackDroidConfig, analyze_spec
from repro.service import AnalysisServer, ServiceClient, StoreAwareScheduler
from repro.workload.corpus import benchmark_app_spec

SCALE = 0.05


@pytest.fixture
def service(tmp_path):
    """A running server over a store pre-warmed with bench app 0."""
    config = BackDroidConfig(
        search_backend="indexed",
        store_dir=str(tmp_path / "store"),
        store_mode="full",
    )
    outcome = analyze_spec(benchmark_app_spec(0, scale=SCALE), config)
    assert outcome.ok, outcome.error
    scheduler = StoreAwareScheduler(config, workers=2, fast_lane_workers=1)
    with AnalysisServer(scheduler, port=0) as server:
        yield ServiceClient(*server.address)


class TestEndpoints:
    def test_healthz(self, service):
        assert service.health() == {"ok": True}

    def test_submit_poll_done_round_trip(self, service):
        job = service.submit({"app": "bench:0", "scale": SCALE})
        assert job["state"] in ("queued", "running", "done")
        assert job["lane"] == "fast" and job["warm"] is True
        assert job["package"] == "com.bench.app000"

        done = service.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        assert done["result"]["package"] == "com.bench.app000"
        assert done["result"]["store_hit"] is True
        assert done["result"]["index_build_seconds"] == 0.0
        assert done["wait_seconds"] >= 0.0

    def test_cold_submission_rides_main_lane(self, service):
        job = service.submit({"app": "bench:2", "scale": SCALE})
        assert job["lane"] == "main" and job["warm"] is False
        done = service.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        assert done["result"]["store_hit"] is False

    def test_year_submission_shape(self, service):
        job = service.submit({"year": 2015, "index": 0, "scale": SCALE})
        assert job["package"] == "com.corpus.y2015.app00000"
        assert service.wait(job["id"], timeout=60)["state"] == "done"

    def test_duplicate_http_submissions_share_one_result(
        self, tmp_path, monkeypatch
    ):
        # Hold the analysis until both submissions are accepted, so the
        # concurrent-duplicate path is exercised deterministically.
        import threading

        import repro.service.scheduler as scheduler_module

        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        scheduler = StoreAwareScheduler(config, workers=1)
        with AnalysisServer(scheduler, port=0) as server:
            client = ServiceClient(*server.address)
            first = client.submit({"app": "bench:3", "scale": SCALE})
            second = client.submit({"app": "bench:3", "scale": SCALE})
            assert second["coalesced_into"] == first["id"]
            release.set()
            first_done = client.wait(first["id"], timeout=60)
            second_done = client.wait(second["id"], timeout=60)
            assert first_done["state"] == second_done["state"] == "done"
            assert first_done["result"] == second_done["result"]
            stats = client.stats()
        assert stats["jobs"]["dedup_hits"] == 1
        assert stats["analyses_run"] == 1  # one analysis, two done jobs

    def test_jobs_listing_and_stats(self, service):
        submitted = service.submit({"app": "bench:0", "scale": SCALE})
        service.wait(submitted["id"], timeout=60)
        listed = {job["id"] for job in service.jobs()}
        assert submitted["id"] in listed
        stats = service.stats()
        assert {"lanes", "jobs", "store", "warm_hit_rate"} <= set(stats)


class TestRequestOverrides:
    def test_per_job_rules_override(self, service):
        job = service.submit(
            {"app": "bench:1", "scale": SCALE, "rules": ["crypto-ecb"]}
        )
        assert job["request"]["rules"] == ["crypto-ecb"]
        done = service.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        rules = {rule for rule, _ in done["result"]["findings"]}
        assert rules <= {"crypto-ecb"}

    def test_override_validation_is_400(self, service):
        with pytest.raises(ValueError, match="unknown rule"):
            service.submit(
                {"app": "bench:0", "scale": SCALE, "rules": ["nope"]}
            )
        with pytest.raises(ValueError, match="'rules'"):
            service.submit({"app": "bench:0", "scale": SCALE, "rules": []})
        with pytest.raises(ValueError, match="'backend'"):
            service.submit(
                {"app": "bench:0", "scale": SCALE, "backend": "quantum"}
            )
        with pytest.raises(ValueError, match="'max_frames'"):
            service.submit(
                {"app": "bench:0", "scale": SCALE, "max_frames": 0}
            )
        with pytest.raises(ValueError, match="'hierarchy'"):
            service.submit(
                {"app": "bench:0", "scale": SCALE, "hierarchy": "yes"}
            )

    def test_default_submission_carries_no_request(self, service):
        job = service.submit({"app": "bench:0", "scale": SCALE})
        assert job["request"] is None
        service.wait(job["id"], timeout=60)

    def test_rules_override_clears_configured_explicit_targets(self, tmp_path):
        # A config pinning explicit sinks must not shadow a per-job
        # rules override (sink_specs gives targets precedence).
        from repro.android.framework import sinks_for_rules

        config = BackDroidConfig(sinks=sinks_for_rules(("ssl-verifier",)))
        scheduler = StoreAwareScheduler(config, workers=1)
        with AnalysisServer(scheduler, port=0) as server:
            client = ServiceClient(*server.address)
            job = client.submit(
                {"app": "bench:1", "scale": SCALE, "rules": ["crypto-ecb"]}
            )
            assert job["request"]["targets"] is None
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "done"
            rules = {rule for rule, _ in done["result"]["findings"]}
            assert rules == {"crypto-ecb"}  # bench:1 has crypto findings

    def test_partial_override_keeps_service_configured_defaults(self, tmp_path):
        # A body naming only max_frames must not reset the operator's
        # --rules selection back to the package defaults.
        config = BackDroidConfig(
            sink_rules=("open-port",), search_backend="indexed"
        )
        scheduler = StoreAwareScheduler(config, workers=1)
        with AnalysisServer(scheduler, port=0) as server:
            client = ServiceClient(*server.address)
            job = client.submit(
                {"app": "bench:0", "scale": SCALE, "max_frames": 2000}
            )
            assert job["request"]["rules"] == ["open-port"]
            assert job["request"]["max_frames"] == 2000
            assert job["request"]["backend"] == "indexed"
            assert client.wait(job["id"], timeout=60)["state"] == "done"


class TestCancellation:
    def test_cancel_unknown_job_is_404(self, service):
        with pytest.raises(KeyError):
            service.cancel("job-424242")

    def test_cancel_finished_job_is_409(self, service):
        job = service.submit({"app": "bench:0", "scale": SCALE})
        service.wait(job["id"], timeout=60)
        with pytest.raises(ValueError, match="already done"):
            service.cancel(job["id"])

    def test_cancel_queued_job_round_trip(self, tmp_path, monkeypatch):
        import threading

        import repro.service.scheduler as scheduler_module

        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        scheduler = StoreAwareScheduler(config, workers=1)
        with AnalysisServer(scheduler, port=0) as server:
            client = ServiceClient(*server.address)
            blocker = client.submit({"app": "bench:0", "scale": SCALE})
            queued = client.submit({"app": "bench:1", "scale": SCALE})
            snapshot = client.cancel(queued["id"])
            assert snapshot["state"] == "cancelled"
            assert snapshot["error"] == "cancelled by client"
            # DELETE is not idempotent-successful: the second call is 409.
            with pytest.raises(ValueError, match="already cancelled"):
                client.cancel(queued["id"])
            release.set()
            assert client.wait(blocker["id"], timeout=60)["state"] == "done"
            # wait() resolves cancelled as terminal over HTTP too.
            assert client.wait(queued["id"], timeout=5)["state"] == "cancelled"
            stats = client.stats()
            lanes = stats["lanes"]
            assert sum(l["cancelled"] for l in lanes.values()) == 1

    def test_cancel_bad_path_is_404(self, service):
        status, _ = service._request("DELETE", "/v1/stats")
        assert status == 404


class TestErrors:
    def test_unknown_job_is_404(self, service):
        assert service.job("job-424242") is None

    def test_bad_spec_is_400(self, service):
        with pytest.raises(ValueError, match="bench:<index>"):
            service.submit({"app": "not-a-spec"})
        with pytest.raises(ValueError, match="must be one of"):
            service.submit({"year": 1999})
        with pytest.raises(ValueError, match="'scale'"):
            service.submit({"app": "bench:0", "scale": -1})
        # Client-supplied scale is bounded: huge or non-finite values
        # must be a 400, not a wedged worker or a handler crash.
        with pytest.raises(ValueError, match="'scale'"):
            service.submit({"app": "bench:0", "scale": 1e308})
        with pytest.raises(ValueError, match="'scale'"):
            service.submit({"app": "bench:0", "scale": 11})
        with pytest.raises(ValueError, match="needs 'app'"):
            service.submit({})

    def test_unknown_endpoint_is_404(self, service):
        status, payload = service._request("GET", "/v1/nope")
        assert status == 404 and "error" in payload
        status, _ = service._request("POST", "/v1/nope", {"x": 1})
        assert status == 404

    def test_empty_body_is_400(self, service):
        status, payload = service._request("POST", "/v1/jobs")
        assert status == 400 and "error" in payload


class TestShutdownDrain:
    def test_shutdown_drains_accepted_jobs(self, tmp_path):
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        scheduler = StoreAwareScheduler(config, workers=2)
        server = AnalysisServer(scheduler, port=0).start()
        client = ServiceClient(*server.address)
        jobs = [
            client.submit({"app": f"bench:{i}", "scale": SCALE})
            for i in range(4)
        ]
        server.shutdown(drain=True)  # stop listening, finish the queue
        states = {scheduler.queue.get(job["id"]).state for job in jobs}
        assert states == {"done"}


class TestGracefulDrain:
    def test_drain_rejects_submissions_but_serves_reads(
        self, tmp_path, monkeypatch
    ):
        import threading

        import repro.service.scheduler as scheduler_module

        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        scheduler = StoreAwareScheduler(config, workers=1)
        server = AnalysisServer(scheduler, port=0).start()
        try:
            client = ServiceClient(*server.address)
            accepted = client.submit({"app": "bench:0", "scale": SCALE})
            # Drain on a helper thread: it blocks until the gated
            # analysis releases, and flips the 503 flag immediately.
            drained = []
            drainer = threading.Thread(
                target=lambda: drained.append(server.drain(timeout=30))
            )
            drainer.start()
            deadline = __import__("time").monotonic() + 5
            while not server.api.draining:
                assert __import__("time").monotonic() < deadline
            with pytest.raises(ValueError, match="draining"):
                client.submit({"app": "bench:1", "scale": SCALE})
            # Reads keep working so clients can collect the drain.
            assert client.health() == {"ok": True}
            assert client.job(accepted["id"]) is not None
            assert client.stats()["server"]["draining"] is True
            release.set()
            drainer.join(timeout=30)
            assert drained == [True]
            assert client.wait(accepted["id"], timeout=30)["state"] == "done"
        finally:
            release.set()
            server.shutdown(drain=True)

    def test_drain_timeout_reports_failure(self, tmp_path, monkeypatch):
        import threading

        import repro.service.scheduler as scheduler_module

        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        scheduler = StoreAwareScheduler(config, workers=1)
        server = AnalysisServer(scheduler, port=0).start()
        try:
            client = ServiceClient(*server.address)
            client.submit({"app": "bench:0", "scale": SCALE})
            assert server.drain(timeout=0.2) is False
        finally:
            release.set()
            server.shutdown(drain=True)


class TestServerStats:
    def test_stats_report_front_end_health(self, service):
        import time

        time.sleep(0.15)  # let the lag monitor collect a few samples
        stats = service.stats()
        server_stats = stats["server"]
        assert server_stats["loop"] == "asyncio"
        assert server_stats["draining"] is False
        lag = server_stats["event_loop_lag_seconds"]
        assert set(lag) == {"p50", "p99", "max"}
        assert 0.0 <= lag["p50"] <= lag["max"]
        # Per-lane pool observability rides the same payload.
        for lane in stats["lanes"].values():
            assert lane["kind"] == "in-process"
            assert "utilization" in lane and "depth_percentiles" in lane


class TestClientRetries:
    def test_connection_refused_is_retried_then_raised(self, monkeypatch):
        import socket
        import urllib.error

        import repro.service.server as server_module

        # A bound-but-unaccepting port: connections are refused after
        # close, exercising the retry path deterministically.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        monkeypatch.setattr(
            server_module.time, "sleep", lambda s: sleeps.append(s)
        )
        client = ServiceClient(
            "127.0.0.1", port, timeout=2, retries=2, backoff_seconds=0.05
        )
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            client.health()
        assert client.retries_used == 2
        # Exponential backoff: each wait doubles.
        assert sleeps == [0.05, 0.1]

    def test_http_errors_are_not_retried(self, service):
        before = service.retries_used
        with pytest.raises(ValueError):
            service.submit({})  # 400: a client error, never a retry
        assert service.retries_used == before

    def test_retry_recovers_when_the_server_comes_back(
        self, service, monkeypatch
    ):
        import urllib.error

        import repro.service.server as server_module

        real_urlopen = server_module.urlrequest.urlopen
        failures = {"left": 2}

        def flaky(req, timeout=None):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise urllib.error.URLError(ConnectionRefusedError(111))
            return real_urlopen(req, timeout=timeout)

        monkeypatch.setattr(server_module.urlrequest, "urlopen", flaky)
        monkeypatch.setattr(server_module.time, "sleep", lambda s: None)
        assert service.health() == {"ok": True}
        assert service.retries_used == 2


class TestClientEndpointFailover:
    @staticmethod
    def _dead_port():
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_rotates_to_next_endpoint_without_burning_a_retry(
        self, service
    ):
        # First endpoint refuses connections; the client must rotate to
        # the live one immediately — no backoff sleep, no retry spent.
        live = service.endpoints[0]
        client = ServiceClient(
            endpoints=[("127.0.0.1", self._dead_port()), live],
            timeout=2,
            retries=0,
        )
        assert client.health() == {"ok": True}
        assert client.rotations >= 1
        assert client.retries_used == 0
        # Subsequent requests stay on the endpoint that worked.
        assert client.health() == {"ok": True}

    def test_all_endpoints_dead_still_raises(self, monkeypatch):
        import urllib.error

        import repro.service.server as server_module

        monkeypatch.setattr(
            server_module.time, "sleep", lambda s: None
        )
        client = ServiceClient(
            endpoints=[
                ("127.0.0.1", self._dead_port()),
                ("127.0.0.1", self._dead_port()),
            ],
            timeout=2,
            retries=1,
        )
        with pytest.raises((urllib.error.URLError, ConnectionError)):
            client.health()
        # Every endpoint was tried each cycle before a retry was spent.
        assert client.retries_used == 1
        assert client.rotations >= 2

    def test_endpoint_list_requires_at_least_one(self):
        with pytest.raises(ValueError):
            ServiceClient(endpoints=[])


class TestThreadedBaselineParity:
    def test_threaded_server_serves_the_same_api(self, tmp_path):
        from repro.service import ThreadedAnalysisServer

        config = BackDroidConfig(
            search_backend="indexed",
            store_dir=str(tmp_path / "store"),
            store_mode="full",
        )
        outcome = analyze_spec(benchmark_app_spec(0, scale=SCALE), config)
        assert outcome.ok, outcome.error
        scheduler = StoreAwareScheduler(config, workers=2, fast_lane_workers=1)
        with ThreadedAnalysisServer(scheduler, port=0) as server:
            client = ServiceClient(*server.address)
            assert client.health() == {"ok": True}
            job = client.submit({"app": "bench:0", "scale": SCALE})
            done = client.wait(job["id"], timeout=60)
            assert done["state"] == "done"
            assert done["result"]["store_hit"] is True
            stats = client.stats()
            assert stats["server"]["loop"] == "threaded"
            assert stats["server"]["event_loop_lag_seconds"] is None
            # Draining works identically on the baseline stack.
            drained = server.drain(timeout=30)
            assert drained is True
            with pytest.raises(ValueError, match="draining"):
                client.submit({"app": "bench:1", "scale": SCALE})
