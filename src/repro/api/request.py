"""The composable per-request analysis description.

An :class:`AnalysisRequest` names *what to analyze and how* for one run
against an already-opened app — decoupled from
:class:`~repro.core.backdroid.BackDroidConfig`, which froze targets at
construction time.  Requests are small frozen dataclasses: cheap to
build, hashable/picklable (they cross process-pool and HTTP boundaries),
and composable — many differently-targeted requests can be served by one
:class:`~repro.api.session.AnalysisSession` without rebuilding any
per-app state.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.android.framework import SinkSpec
from repro.core.backdroid import BackDroidConfig
from repro.search.backends import BACKENDS

#: The paper's default rule families (Sec. VI-A).
DEFAULT_RULES = ("crypto-ecb", "ssl-verifier")

#: Upper bound on client-supplied backward-walk budgets (a request rides
#: over HTTP; an absurd budget must not wedge a worker lane).
MAX_REQUEST_FRAMES = 1_000_000


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis run's targets and knobs.

    ``targets`` (explicit :class:`SinkSpec` tuples) override ``rules``
    when set, mirroring ``BackDroidConfig.sinks`` vs ``sink_rules``.
    ``backend=None`` defers to the session's default backend.
    """

    rules: tuple[str, ...] = DEFAULT_RULES
    targets: Optional[tuple[SinkSpec, ...]] = None
    backend: Optional[str] = None
    max_frames: int = 4000
    check_class_hierarchy: bool = False
    enable_search_cache: bool = True
    enable_sink_cache: bool = True
    collect_ssg_dumps: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        if self.targets is not None:
            object.__setattr__(self, "targets", tuple(self.targets))
        if self.max_frames < 1:
            raise ValueError("max_frames must be a positive integer")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown search backend {self.backend!r}: "
                f"choose from {sorted(BACKENDS)}"
            )

    # ------------------------------------------------------------------
    def sink_specs(self, registry) -> tuple[SinkSpec, ...]:
        """The sink specs this request targets, under *registry*."""
        if self.targets is not None:
            return self.targets
        return registry.specs_for(self.rules)

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: BackDroidConfig) -> "AnalysisRequest":
        """The request equivalent of a legacy config (compat bridge)."""
        return cls(
            rules=tuple(config.sink_rules),
            targets=config.sinks,
            backend=config.search_backend,
            max_frames=config.max_frames,
            check_class_hierarchy=config.check_class_hierarchy_in_initial_search,
            enable_search_cache=config.enable_search_cache,
            enable_sink_cache=config.enable_sink_cache,
            collect_ssg_dumps=config.collect_ssg_dumps,
        )

    def to_config(self, base: Optional[BackDroidConfig] = None) -> BackDroidConfig:
        """A legacy config with this request's knobs applied over *base*.

        Session-level knobs not owned by requests (store directory/mode,
        search-cache bound) are inherited from *base* untouched.
        """
        base = base if base is not None else BackDroidConfig()
        return dataclasses.replace(
            base,
            sink_rules=self.rules,
            sinks=self.targets,
            search_backend=self.backend or base.search_backend,
            max_frames=self.max_frames,
            check_class_hierarchy_in_initial_search=self.check_class_hierarchy,
            enable_search_cache=self.enable_search_cache,
            enable_sink_cache=self.enable_sink_cache,
            collect_ssg_dumps=self.collect_ssg_dumps,
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """A stable digest of every analysis-affecting request field.

        Used for job dedup (two submissions of one app coalesce only
        when their requests match) and outcome-cache keys.
        """
        parts = (
            repr(tuple(self.rules)),
            repr(
                tuple((s.rule, s.key, s.tracked_params) for s in self.targets)
                if self.targets is not None
                else None
            ),
            repr(self.backend),
            repr(self.max_frames),
            repr(self.check_class_hierarchy),
            repr(self.enable_search_cache),
            repr(self.enable_sink_cache),
        )
        return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A JSON-able snapshot (job records, envelopes)."""
        from repro.api.envelope import spec_to_dict

        return {
            "rules": list(self.rules),
            "targets": (
                [spec_to_dict(s) for s in self.targets]
                if self.targets is not None
                else None
            ),
            "backend": self.backend,
            "max_frames": self.max_frames,
            "check_class_hierarchy": self.check_class_hierarchy,
            "enable_search_cache": self.enable_search_cache,
            "enable_sink_cache": self.enable_sink_cache,
            "collect_ssg_dumps": self.collect_ssg_dumps,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AnalysisRequest":
        """Rebuild a request from its :meth:`as_dict` payload.

        The inverse of ``as_dict`` (exact round trip); unknown keys are
        ignored, absent ones take the request defaults.
        """
        from repro.api.envelope import spec_from_dict

        targets = payload.get("targets")
        return cls(
            rules=tuple(str(r) for r in payload.get("rules", DEFAULT_RULES)),
            targets=(
                tuple(spec_from_dict(t) for t in targets)
                if targets is not None
                else None
            ),
            backend=payload.get("backend"),
            max_frames=int(payload.get("max_frames", 4000)),
            check_class_hierarchy=bool(
                payload.get("check_class_hierarchy", False)
            ),
            enable_search_cache=bool(payload.get("enable_search_cache", True)),
            enable_sink_cache=bool(payload.get("enable_sink_cache", True)),
            collect_ssg_dumps=bool(payload.get("collect_ssg_dumps", False)),
        )


#: Keys a ``POST /v1/jobs`` body may use to override the service's
#: default targets/knobs for one job.
REQUEST_OVERRIDE_KEYS = ("rules", "backend", "max_frames", "hierarchy")


def analysis_request_from_payload(
    payload: dict,
    known_rules: Optional[tuple[str, ...]] = None,
    defaults: Optional[AnalysisRequest] = None,
) -> Optional[AnalysisRequest]:
    """The per-job :class:`AnalysisRequest` a service submission names.

    Returns None when the body carries no override keys (the job runs
    under the service's configured defaults).  Otherwise the overrides
    are layered onto *defaults* — the service's own configuration — so
    a body naming only ``max_frames`` does not silently reset the
    operator's rule selection (or any other knob) to package defaults.
    Raises ``ValueError`` with a client-facing message on malformed
    overrides; the HTTP layer maps that to a 400.
    """
    if not any(key in payload for key in REQUEST_OVERRIDE_KEYS):
        return None

    kwargs: dict = {}
    if "rules" in payload:
        rules = payload["rules"]
        if (
            not isinstance(rules, (list, tuple))
            or not rules
            or not all(isinstance(r, str) for r in rules)
        ):
            raise ValueError("'rules' must be a non-empty list of rule ids")
        if known_rules is not None:
            unknown = [r for r in rules if r not in known_rules]
            if unknown:
                raise ValueError(
                    f"unknown rule(s) {unknown}: choose from {sorted(known_rules)}"
                )
        kwargs["rules"] = tuple(rules)
        # Explicit targets inherited from the defaults would shadow the
        # overridden rules (sink_specs gives targets precedence) — a
        # rules override always means "analyze these rule families".
        kwargs["targets"] = None
    if "backend" in payload:
        backend = payload["backend"]
        if not isinstance(backend, str) or backend not in BACKENDS:
            raise ValueError(
                f"'backend' must be one of {sorted(BACKENDS)}"
            )
        kwargs["backend"] = backend
    if "max_frames" in payload:
        frames = payload["max_frames"]
        if (
            isinstance(frames, bool)
            or not isinstance(frames, int)
            or not 0 < frames <= MAX_REQUEST_FRAMES
        ):
            raise ValueError(
                f"'max_frames' must be an integer in [1, {MAX_REQUEST_FRAMES}]"
            )
        kwargs["max_frames"] = frames
    if "hierarchy" in payload:
        if not isinstance(payload["hierarchy"], bool):
            raise ValueError("'hierarchy' must be a boolean")
        kwargs["check_class_hierarchy"] = payload["hierarchy"]
    base = defaults if defaults is not None else AnalysisRequest()
    return dataclasses.replace(base, **kwargs)
