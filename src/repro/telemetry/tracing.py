"""Lightweight tracing with cross-process span propagation.

A *span* is one timed stage of one job: it carries a ``trace_id``
(shared by every span of the job), its own ``span_id``, its parent's
span id, a name from the span taxonomy (``job``, ``store.probe``,
``queue``, ``dispatch``, ``worker``, ``index.restore``, ...), free-form
attrs, and wall + CPU durations.  Spans are plain dicts once finished,
so they serialize anywhere a payload does — including back across the
:class:`~repro.service.workers.ProcessLane` pipe.

Propagation has two halves:

* **In-process** a context variable tracks the active span; library
  code (the analysis pipeline, the search backends) opens child spans
  with the module-level :func:`span` helper without any plumbing — if
  no ambient span is active and the default tracer is disabled, the
  helper costs one context-var read and returns the no-op
  :data:`NULL_SPAN`.
* **Across the process boundary** the parent serializes
  ``span.context()`` (two ids) into the worker task; the worker opens
  its spans under a local :class:`Tracer` parented on that context and
  ships the finished span dicts home with the result, where
  :meth:`Tracer.attach` merges them into the job's trace.

Tracers *record* finished spans per trace id (bounded, oldest trace
evicted) until :meth:`Tracer.collect` pops them — the scheduler does
that once per job, when the root span ends.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from collections import OrderedDict
from typing import Iterator, Optional, Union

#: How many in-flight traces a tracer buffers before evicting the
#: oldest.  Traces are popped at job completion, so this bound only
#: matters for abandoned traces (e.g. spans opened but never collected).
DEFAULT_MAX_TRACES = 256

_current: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "backdroid_active_span", default=None
)


def _new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One live, timed stage.  Finished spans become plain dicts."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "pid",
        "started_at",
        "wall_seconds",
        "cpu_seconds",
        "_perf_start",
        "_cpu_start",
        "_thread_id",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[dict] = None,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.pid = os.getpid()
        self.started_at = time.time()
        self.wall_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        self._perf_start = time.perf_counter()
        self._cpu_start = time.thread_time()
        self._thread_id = threading.get_ident()
        self._ended = False

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def set_attrs(self, **attrs) -> None:
        self.attrs.update(attrs)

    def context(self) -> dict:
        """The serializable propagation context (rides the worker pipe)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def end(self) -> None:
        """Close the span and record it with its tracer (idempotent)."""
        if self._ended:
            return
        self._ended = True
        self.wall_seconds = time.perf_counter() - self._perf_start
        # thread_time is per-thread: a span handed between threads (the
        # job root starts on the submit thread, ends on a lane worker)
        # has no meaningful CPU delta, so report none rather than noise.
        if threading.get_ident() == self._thread_id:
            self.cpu_seconds = time.thread_time() - self._cpu_start
        self.tracer._record(self)

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "pid": self.pid,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The no-op span: every tracing call site works when disabled."""

    __slots__ = ()

    trace_id = None
    span_id = None
    parent_id = None
    name = "null"
    pid = None
    attrs: dict = {}

    def set_attr(self, key, value) -> None:
        pass

    def set_attrs(self, **attrs) -> None:
        pass

    def context(self) -> None:
        return None

    def end(self) -> None:
        pass

    def as_dict(self) -> dict:
        return {}

    def __bool__(self) -> bool:
        # ``if span:`` guards record-keeping (trace ids on jobs) without
        # special-casing the disabled path.
        return False


NULL_SPAN = _NullSpan()

#: What ``parent=`` accepts: a live span, a serialized context from
#: :meth:`Span.context` (the cross-process case), or nothing.
ParentLike = Union[Span, _NullSpan, dict, None]


class _SpanScope:
    """Context manager for one span: activates it, ends it on exit."""

    __slots__ = ("_span", "_token")

    def __init__(self, span_obj) -> None:
        self._span = span_obj
        self._token = None

    def __enter__(self):
        if self._span is not NULL_SPAN:
            self._token = _current.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self._span is not NULL_SPAN:
            self._span.set_attr("error", f"{exc_type.__name__}: {exc}")
        if self._token is not None:
            _current.reset(self._token)
        self._span.end()


class Tracer:
    """Creates spans and buffers finished ones per trace id.

    A disabled tracer (the default) hands out :data:`NULL_SPAN` —
    call sites never branch.  Thread-safe; one instance serves all the
    scheduler's lanes.
    """

    def __init__(
        self, enabled: bool = False, max_traces: int = DEFAULT_MAX_TRACES
    ) -> None:
        self.enabled = enabled
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[dict]]" = OrderedDict()
        #: Spans dropped because their trace was evicted before collect.
        self.dropped_spans = 0

    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: ParentLike = None,
        attrs: Optional[dict] = None,
    ):
        """Open a span (caller ends it).  ``NULL_SPAN`` when disabled.

        Without an explicit *parent* the ambient (context-var) span is
        the parent; without that, the span starts a new trace.
        """
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = _current.get()
        if isinstance(parent, dict):
            trace_id = parent["trace_id"]
            parent_id = parent.get("span_id")
        elif parent is None or parent is NULL_SPAN or isinstance(parent, _NullSpan):
            trace_id = _new_trace_id()
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(self, name, trace_id, parent_id, attrs)

    def span(
        self,
        name: str,
        parent: ParentLike = None,
        attrs: Optional[dict] = None,
    ) -> _SpanScope:
        """Like :meth:`start_span`, as a context manager that also makes
        the span *ambient* (children opened inside nest under it)."""
        return _SpanScope(self.start_span(name, parent=parent, attrs=attrs))

    # ------------------------------------------------------------------
    def _record(self, span_obj: Span) -> None:
        entry = span_obj.as_dict()
        with self._lock:
            bucket = self._traces.get(span_obj.trace_id)
            if bucket is None:
                bucket = self._traces[span_obj.trace_id] = []
            else:
                self._traces.move_to_end(span_obj.trace_id)
            bucket.append(entry)
            while len(self._traces) > self.max_traces:
                _, dropped = self._traces.popitem(last=False)
                self.dropped_spans += len(dropped)

    def attach(self, trace_id: Optional[str], spans: Iterator[dict]) -> None:
        """Merge foreign finished spans (e.g. a worker's) into a trace."""
        if not trace_id:
            return
        spans = [dict(entry) for entry in spans]
        if not spans:
            return
        with self._lock:
            bucket = self._traces.get(trace_id)
            if bucket is None:
                bucket = self._traces[trace_id] = []
            bucket.extend(spans)

    def collect(self, trace_id: Optional[str]) -> list[dict]:
        """Pop and return a trace's finished spans, oldest first."""
        if not trace_id:
            return []
        with self._lock:
            spans = self._traces.pop(trace_id, [])
        spans.sort(key=lambda entry: entry.get("started_at") or 0.0)
        return spans

    def pending_traces(self) -> int:
        with self._lock:
            return len(self._traces)


#: The process-default tracer: disabled until something (the CLI's
#: ``analyze --trace``) enables it.  The scheduler owns its *own*
#: tracer; library spans land there because the ambient parent carries
#: its tracer through the context variable.
_default = Tracer(enabled=False)


def default_tracer() -> Tracer:
    return _default


def current_span():
    """The ambient span (``None`` outside any active scope)."""
    return _current.get()


def _resolve_tracer(parent: ParentLike) -> Tracer:
    if isinstance(parent, Span):
        return parent.tracer
    return _default


def span(name: str, attrs: Optional[dict] = None) -> _SpanScope:
    """Open a child of the ambient span as a context manager.

    This is the instrumentation entry point for library code: the
    active span's own tracer records the child, so pipeline stages need
    no tracer plumbing.  With no ambient span and the default tracer
    disabled, it is a no-op.
    """
    parent = _current.get()
    return _resolve_tracer(parent).span(name, parent=parent, attrs=attrs)


def start_span(name: str, attrs: Optional[dict] = None):
    """Open a child of the ambient span *without* making it ambient.

    For stages that stay open across generator yields (the caller ends
    it): the span is recorded normally but never becomes the context
    parent of unrelated work running between yields.
    """
    parent = _current.get()
    return _resolve_tracer(parent).start_span(name, parent=parent, attrs=attrs)


# ======================================================================
# Rendering
# ======================================================================

def render_span_tree(spans: list[dict]) -> str:
    """A human-readable indented tree of one trace's finished spans."""
    if not spans:
        return "(no spans recorded)"
    by_id = {entry["span_id"]: entry for entry in spans}
    children: dict = {}
    roots = []
    ordered = sorted(spans, key=lambda entry: entry.get("started_at") or 0.0)
    for entry in ordered:
        parent_id = entry.get("parent_id")
        if parent_id and parent_id in by_id:
            children.setdefault(parent_id, []).append(entry)
        else:
            roots.append(entry)

    lines = []

    def walk(entry: dict, depth: int) -> None:
        wall = entry.get("wall_seconds")
        cpu = entry.get("cpu_seconds")
        wall_ms = f"{wall * 1000:.1f}ms" if wall is not None else "?"
        cpu_ms = f" cpu={cpu * 1000:.1f}ms" if cpu is not None else ""
        attrs = entry.get("attrs") or {}
        attr_text = ""
        if attrs:
            parts = [f"{key}={attrs[key]!r}" for key in sorted(attrs)]
            attr_text = "  {" + ", ".join(parts) + "}"
        pid = entry.get("pid")
        pid_text = f" pid={pid}" if pid is not None else ""
        lines.append(
            f"{'  ' * depth}{entry['name']}  {wall_ms}{cpu_ms}"
            f"{pid_text}{attr_text}"
        )
        for child in children.get(entry["span_id"], ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
