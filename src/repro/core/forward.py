"""Forward constant and points-to propagation over the SSG (Sec. V-B).

"After producing a complete SSG, our forward analysis iterates through
each SSG node, analyzes each statement's semantic, and propagates
dataflow facts through the constant and points-to propagation during the
graph traversal."

Traversal order follows the paper: the **static-field tracks first** (so
fields referred to by the normal track resolve), then the normal track.
Because SSG nodes can join across methods (multiple callers, phi nodes),
the propagation runs as a bounded fixpoint over the recorded units rather
than a single topological sweep; facts only merge (monotone up to the
bounded merge width), so the loop stabilises quickly on the small graphs
targeted slicing produces.

Fact maps, as in the paper: one per-flow map for locals (keyed by
``(method, local)``), one **global fact map for static fields**, plus the
return-value map that stitches contained methods to their call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.android.apk import Apk
from repro.core.api_models import ApiCall, framework_constant, lookup_model
from repro.core.ssg import SSG, SSGUnit
from repro.core.values import (
    ArrayObjFact,
    ConstFact,
    ExprFact,
    Fact,
    NewObjFact,
    UnknownFact,
    merge_facts,
)
from repro.dex.instructions import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    ClassConstant,
    Constant,
    DoubleConstant,
    IdentityStmt,
    InstanceFieldRef,
    IntConstant,
    InvokeExpr,
    Local,
    LongConstant,
    NewArrayExpr,
    NewExpr,
    NullConstant,
    ParameterRef,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    StringConstant,
    ThisRef,
    Value,
)
from repro.dex.types import FieldSignature, MethodSignature

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
    "%": lambda a, b: a % b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class ForwardPropagation:
    """Runs the forward analysis over one SSG."""

    apk: Apk
    ssg: SSG
    max_passes: int = 12

    def __post_init__(self) -> None:
        self.pool = self.apk.full_pool
        self._locals: dict[tuple[MethodSignature, str], Fact] = {}
        self._fields: dict[FieldSignature, Fact] = {}
        self._returns: dict[MethodSignature, Fact] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> dict[int, Fact]:
        """Propagate facts; return {tracked param index: fact} at the sink."""
        # Static tracks first (Sec. V-B: "Our traversal always starts
        # with the static field track").
        static_units: list[SSGUnit] = []
        for track in self.ssg.static_tracks.values():
            static_units.extend(track)
        normal_units = sorted(
            (u for u in self.ssg.units() if u not in set(static_units)),
            key=lambda u: (str(u.method), u.stmt_index),
        )
        for _ in range(2):
            for unit in static_units:
                self._eval_unit(unit)
        for _ in range(self.max_passes):
            before = (dict(self._locals), dict(self._fields), dict(self._returns))
            for unit in normal_units:
                self._eval_unit(unit)
            after = (self._locals, self._fields, self._returns)
            if before == (dict(after[0]), dict(after[1]), dict(after[2])):
                break
        return self.sink_param_facts()

    def sink_param_facts(self) -> dict[int, Fact]:
        """The facts of the sink's tracked parameters."""
        sink_unit = self.ssg.sink_unit()
        if sink_unit is None:
            return {}
        expr = sink_unit.stmt.invoke_expr()
        if expr is None:
            return {}
        facts: dict[int, Fact] = {}
        for index in self.ssg.spec.tracked_params:
            if index < len(expr.args):
                facts[index] = self._value_fact(sink_unit.method, expr.args[index])
            else:
                facts[index] = UnknownFact("argument missing")
        return facts

    def local_fact(self, method: MethodSignature, local_name: str) -> Optional[Fact]:
        return self._locals.get((method, local_name))

    def field_fact(self, fieldsig: FieldSignature) -> Optional[Fact]:
        return self._fields.get(fieldsig)

    # ------------------------------------------------------------------
    # Fact lookup
    # ------------------------------------------------------------------
    def _value_fact(self, method: MethodSignature, value: Value) -> Fact:
        if isinstance(value, Local):
            return self._locals.get((method, value.name), UnknownFact(f"local {value.name}"))
        if isinstance(value, StringConstant):
            return ConstFact(value.value)
        if isinstance(value, (IntConstant, LongConstant)):
            return ConstFact(value.value)
        if isinstance(value, DoubleConstant):
            return ConstFact(value.value)
        if isinstance(value, NullConstant):
            return ConstFact(None)
        if isinstance(value, ClassConstant):
            return ConstFact(f"class {value.class_name}")
        if isinstance(value, CastExpr):
            return self._value_fact(method, value.value)
        if isinstance(value, PhiExpr):
            return merge_facts(self._value_fact(method, v) for v in value.values)
        if isinstance(value, StaticFieldRef):
            return self._field_read(value.fieldsig)
        if isinstance(value, InstanceFieldRef):
            return self._instance_field_read(method, value)
        if isinstance(value, ArrayRef):
            return self._array_read(method, value)
        if isinstance(value, BinopExpr):
            return self._binop_fact(method, value)
        if isinstance(value, NewExpr):
            return NewObjFact.make(value.class_name)
        if isinstance(value, NewArrayExpr):
            return ArrayObjFact.make(value.element_type)
        if isinstance(value, InvokeExpr):
            return self._invoke_fact(method, value, update_base=False)
        return UnknownFact(type(value).__name__)

    def _field_read(self, fieldsig: FieldSignature) -> Fact:
        known = framework_constant(fieldsig)
        if known is not None:
            return known
        return self._fields.get(fieldsig, UnknownFact(f"field {fieldsig.to_soot()}"))

    def _instance_field_read(self, method: MethodSignature, ref: InstanceFieldRef) -> Fact:
        base_fact = self._locals.get((method, ref.base.name))
        if isinstance(base_fact, NewObjFact):
            member = base_fact.member(ref.fieldsig.name)
            if member is not None:
                return member
        return self._field_read(ref.fieldsig)

    def _array_read(self, method: MethodSignature, ref: ArrayRef) -> Fact:
        base_fact = self._locals.get((method, ref.base.name))
        index_fact = self._value_fact(method, ref.index)
        if isinstance(base_fact, ArrayObjFact):
            indices = [v for v in index_fact.possible_consts() if isinstance(v, int)]
            if len(indices) == 1:
                element = base_fact.element(indices[0])
                if element is not None:
                    return element
        return UnknownFact("array element")

    def _binop_fact(self, method: MethodSignature, expr: BinopExpr) -> Fact:
        """Mimic arithmetic operations over resolved operands."""
        operation = _ARITHMETIC.get(expr.op)
        if operation is None:
            return ExprFact(str(expr))
        left = self._value_fact(method, expr.left)
        right = self._value_fact(method, expr.right)
        results: list[Fact] = []
        for lv in left.possible_consts():
            for rv in right.possible_consts():
                if isinstance(lv, (int, float)) and isinstance(rv, (int, float)):
                    try:
                        results.append(ConstFact(operation(lv, rv)))
                    except (ZeroDivisionError, TypeError, ValueError):
                        results.append(UnknownFact("arithmetic fault"))
        if not results:
            return ExprFact(str(expr))
        return merge_facts(results)

    # ------------------------------------------------------------------
    # Unit evaluation
    # ------------------------------------------------------------------
    def _eval_unit(self, unit: SSGUnit) -> None:
        stmt = unit.stmt
        method = unit.method
        if isinstance(stmt, IdentityStmt):
            self._eval_identity(unit)
        elif isinstance(stmt, AssignStmt):
            self._eval_assign(unit)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                fact = self._value_fact(method, stmt.value)
                previous = self._returns.get(method)
                self._returns[method] = (
                    fact if previous is None else merge_facts([previous, fact])
                )
        else:
            expr = stmt.invoke_expr()
            if expr is not None:
                self._invoke_fact(method, expr, update_base=True)

    def _eval_identity(self, unit: SSGUnit) -> None:
        """Bind parameters/receivers from the recorded call bindings."""
        stmt = unit.stmt
        assert isinstance(stmt, IdentityStmt)
        incoming: list[Fact] = []
        for binding in self.ssg.bindings_into(unit.method):
            caller_method = self.pool.resolve_method(binding.caller)
            if caller_method is None or binding.site_index >= len(caller_method.body):
                continue
            site_expr = caller_method.body[binding.site_index].invoke_expr()
            if isinstance(stmt.ref, ParameterRef) and binding.kind == "param":
                if site_expr is not None and stmt.ref.index < len(site_expr.args):
                    incoming.append(
                        self._value_fact(binding.caller, site_expr.args[stmt.ref.index])
                    )
            elif isinstance(stmt.ref, ParameterRef) and binding.kind == "icc":
                # ICC sites do not match parameters positionally: the
                # handler's Intent parameter binds to the ICC call's
                # Intent argument (by declared type).
                if (
                    stmt.ref.java_type == "android.content.Intent"
                    and site_expr is not None
                ):
                    for arg in site_expr.args:
                        if (
                            isinstance(arg, Local)
                            and arg.java_type == "android.content.Intent"
                        ):
                            incoming.append(
                                self._value_fact(binding.caller, arg)
                            )
            elif isinstance(stmt.ref, ThisRef):
                if binding.kind == "this" and site_expr is not None and site_expr.base:
                    incoming.append(
                        self._locals.get(
                            (binding.caller, site_expr.base.name),
                            UnknownFact("receiver"),
                        )
                    )
                elif binding.kind == "constructor":
                    allocation = caller_method.body[binding.site_index]
                    if isinstance(allocation, AssignStmt) and isinstance(
                        allocation.lhs, Local
                    ):
                        incoming.append(
                            self._locals.get(
                                (binding.caller, allocation.lhs.name),
                                UnknownFact("constructed object"),
                            )
                        )
                elif binding.kind == "param" and site_expr is not None and site_expr.base:
                    # constructor-descend bindings: the ctor's @this is
                    # the site's base object.
                    incoming.append(
                        self._locals.get(
                            (binding.caller, site_expr.base.name),
                            UnknownFact("receiver"),
                        )
                    )
        if incoming:
            self._locals[(unit.method, stmt.local.name)] = merge_facts(incoming)

    def _eval_assign(self, unit: SSGUnit) -> None:
        stmt = unit.stmt
        assert isinstance(stmt, AssignStmt)
        method = unit.method
        if isinstance(stmt.rhs, InvokeExpr):
            fact = self._invoke_fact(method, stmt.rhs, update_base=True)
        else:
            fact = self._value_fact(method, stmt.rhs)
        lhs = stmt.lhs
        if isinstance(lhs, Local):
            self._locals[(method, lhs.name)] = fact
        elif isinstance(lhs, StaticFieldRef):
            self._store_field(lhs.fieldsig, fact)
        elif isinstance(lhs, InstanceFieldRef):
            base_key = (method, lhs.base.name)
            base_fact = self._locals.get(base_key)
            if isinstance(base_fact, NewObjFact):
                self._locals[base_key] = base_fact.with_member(lhs.fieldsig.name, fact)
            self._store_field(lhs.fieldsig, fact)
        elif isinstance(lhs, ArrayRef):
            base_key = (method, lhs.base.name)
            base_fact = self._locals.get(base_key)
            index_fact = self._value_fact(method, lhs.index)
            indices = [v for v in index_fact.possible_consts() if isinstance(v, int)]
            if isinstance(base_fact, ArrayObjFact) and len(indices) == 1:
                self._locals[base_key] = base_fact.with_element(indices[0], fact)

    def _store_field(self, fieldsig: FieldSignature, fact: Fact) -> None:
        previous = self._fields.get(fieldsig)
        self._fields[fieldsig] = (
            fact if previous is None else merge_facts([previous, fact])
        )

    # ------------------------------------------------------------------
    # Invocations: API models, NewObj capture, contained-method returns
    # ------------------------------------------------------------------
    def _invoke_fact(
        self, method: MethodSignature, expr: InvokeExpr, update_base: bool
    ) -> Fact:
        base_key = (method, expr.base.name) if expr.base is not None else None
        base_fact = self._locals.get(base_key) if base_key else None
        arg_facts = [self._value_fact(method, arg) for arg in expr.args]

        model = lookup_model(expr.method)
        if model is not None:
            outcome = model(
                ApiCall(method=expr.method, base_fact=base_fact, arg_facts=arg_facts)
            )
            if update_base and outcome.base_update is not None and base_key:
                self._locals[base_key] = outcome.base_update
            return outcome.result if outcome.result is not None else UnknownFact("void API")

        if expr.method.is_constructor and base_key is not None:
            # Generic NewObj member capture: constructor arguments become
            # arg0..argN members of the points-to object.
            target = NewObjFact.make(expr.method.class_name)
            if isinstance(base_fact, NewObjFact):
                target = base_fact
            for position, fact in enumerate(arg_facts):
                target = target.with_member(f"arg{position}", fact)
            if update_base:
                self._locals[base_key] = target
            return target

        recorded = {
            binding.callee
            for binding in self.ssg.bindings
            if binding.caller == method and binding.kind == "return"
        }
        resolved = self.pool.resolve_method(expr.method)
        if resolved is not None and resolved.signature() in recorded:
            returned = self._returns.get(resolved.signature())
            if returned is not None:
                return returned
        return UnknownFact(f"call {expr.method.to_soot()}")
