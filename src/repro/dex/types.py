"""Type descriptors and signatures, in both Soot and dexdump formats.

BackDroid constantly crosses between two textual universes:

* the *program analysis space*, where Soot renders a method as
  ``<com.connectsdk.service.netcast.NetcastHttpServer: void start()>``; and
* the *bytecode search space*, where dexdump renders the same method as
  ``Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V``.

Steps 1 and 3 of the paper's basic search (Fig. 3) are exactly these two
translations.  This module implements them loss-lessly, plus the *field*
signature formats used by the slicer's field searches
(``<com.studiosol.util.NanoHTTPD: int myPort>`` vs
``Lcom/studiosol/util/NanoHTTPD;.myPort:I``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

#: Primitive Java type name -> dex descriptor letter.
_PRIMITIVE_TO_DEX = {
    "void": "V",
    "boolean": "Z",
    "byte": "B",
    "short": "S",
    "char": "C",
    "int": "I",
    "long": "J",
    "float": "F",
    "double": "D",
}

_DEX_TO_PRIMITIVE = {v: k for k, v in _PRIMITIVE_TO_DEX.items()}


class SignatureError(ValueError):
    """Raised when a signature or type descriptor cannot be parsed."""


@lru_cache(maxsize=65536)
def java_to_dex_type(java_type: str) -> str:
    """Translate a Java-style type name into a dex descriptor.

    >>> java_to_dex_type("void")
    'V'
    >>> java_to_dex_type("java.lang.String")
    'Ljava/lang/String;'
    >>> java_to_dex_type("int[][]")
    '[[I'
    """
    java_type = java_type.strip()
    if not java_type:
        raise SignatureError("empty type name")
    depth = 0
    while java_type.endswith("[]"):
        java_type = java_type[:-2].rstrip()
        depth += 1
    if java_type in _PRIMITIVE_TO_DEX:
        base = _PRIMITIVE_TO_DEX[java_type]
    else:
        base = "L" + java_type.replace(".", "/") + ";"
    return "[" * depth + base


@lru_cache(maxsize=65536)
def dex_to_java_type(descriptor: str) -> str:
    """Translate a dex descriptor into a Java-style type name.

    >>> dex_to_java_type("V")
    'void'
    >>> dex_to_java_type("Ljava/lang/String;")
    'java.lang.String'
    >>> dex_to_java_type("[[I")
    'int[][]'
    """
    descriptor = descriptor.strip()
    if not descriptor:
        raise SignatureError("empty descriptor")
    depth = 0
    while descriptor.startswith("["):
        descriptor = descriptor[1:]
        depth += 1
    if descriptor in _DEX_TO_PRIMITIVE:
        base = _DEX_TO_PRIMITIVE[descriptor]
    elif descriptor.startswith("L") and descriptor.endswith(";"):
        base = descriptor[1:-1].replace("/", ".")
    else:
        raise SignatureError(f"bad dex descriptor: {descriptor!r}")
    return base + "[]" * depth


def split_dex_params(param_blob: str) -> tuple[str, ...]:
    """Split the parameter portion of a dex method descriptor.

    >>> split_dex_params("Ljava/lang/String;I[J")
    ('Ljava/lang/String;', 'I', '[J')
    """
    params: list[str] = []
    i = 0
    n = len(param_blob)
    while i < n:
        start = i
        while i < n and param_blob[i] == "[":
            i += 1
        if i >= n:
            raise SignatureError(f"dangling array marker in {param_blob!r}")
        if param_blob[i] == "L":
            end = param_blob.find(";", i)
            if end < 0:
                raise SignatureError(f"unterminated class descriptor in {param_blob!r}")
            i = end + 1
        elif param_blob[i] in _DEX_TO_PRIMITIVE:
            i += 1
        else:
            raise SignatureError(f"bad descriptor char {param_blob[i]!r} in {param_blob!r}")
        params.append(param_blob[start:i])
    return tuple(params)


_SOOT_METHOD_RE = re.compile(
    r"^<(?P<cls>[^:]+):\s+(?P<ret>[^ ]+)\s+(?P<name>[^(]+)\((?P<params>[^)]*)\)>$"
)
_SOOT_FIELD_RE = re.compile(r"^<(?P<cls>[^:]+):\s+(?P<type>[^ ]+)\s+(?P<name>[^ >]+)>$")
_DEX_METHOD_RE = re.compile(
    r"^(?P<cls>\[*L[^;]+;)\.(?P<name>[^:]+):\((?P<params>[^)]*)\)(?P<ret>.+)$"
)
_DEX_FIELD_RE = re.compile(r"^(?P<cls>\[*L[^;]+;)\.(?P<name>[^:]+):(?P<type>.+)$")


@dataclass(frozen=True, order=True)
class MethodSignature:
    """A fully qualified method signature.

    Immutable and hashable so it can key caches, taint maps and SSG nodes.
    """

    class_name: str
    name: str
    param_types: tuple[str, ...] = ()
    return_type: str = "void"

    def __post_init__(self) -> None:
        object.__setattr__(self, "param_types", tuple(self.param_types))

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def to_soot(self) -> str:
        """Render in Soot format: ``<com.a.B: void start(int,long)>``."""
        params = ",".join(self.param_types)
        return f"<{self.class_name}: {self.return_type} {self.name}({params})>"

    def to_dex(self) -> str:
        """Render in dexdump format: ``Lcom/a/B;.start:(IJ)V``."""
        params = "".join(java_to_dex_type(p) for p in self.param_types)
        return (
            f"{java_to_dex_type(self.class_name)}.{self.name}:"
            f"({params}){java_to_dex_type(self.return_type)}"
        )

    def sub_signature(self) -> str:
        """The class-independent part: ``void start(int,long)``.

        The advanced search (Sec. IV-B) compares sub-signatures to recognise a
        super-class dispatch of the callee method.
        """
        params = ",".join(self.param_types)
        return f"{self.return_type} {self.name}({params})"

    def dex_sub_signature(self) -> str:
        """The class-independent dexdump part: ``start:(IJ)V``."""
        params = "".join(java_to_dex_type(p) for p in self.param_types)
        return f"{self.name}:({params}){java_to_dex_type(self.return_type)}"

    def with_class(self, class_name: str) -> "MethodSignature":
        """The same sub-signature re-homed onto another class.

        Used when constructing child-class search signatures (Sec. IV-A).
        """
        return MethodSignature(class_name, self.name, self.param_types, self.return_type)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def is_constructor(self) -> bool:
        return self.name == "<init>"

    @property
    def is_static_initializer(self) -> bool:
        return self.name == "<clinit>"

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse_soot(cls, text: str) -> "MethodSignature":
        """Parse ``<com.a.B: void start(int,long)>``."""
        match = _SOOT_METHOD_RE.match(text.strip())
        if match is None:
            raise SignatureError(f"bad Soot method signature: {text!r}")
        params = tuple(
            p.strip() for p in match.group("params").split(",") if p.strip()
        )
        return cls(
            class_name=match.group("cls").strip(),
            name=match.group("name").strip(),
            param_types=params,
            return_type=match.group("ret").strip(),
        )

    @classmethod
    def parse_dex(cls, text: str) -> "MethodSignature":
        """Parse ``Lcom/a/B;.start:(IJ)V``."""
        match = _DEX_METHOD_RE.match(text.strip())
        if match is None:
            raise SignatureError(f"bad dex method signature: {text!r}")
        params = tuple(
            dex_to_java_type(p) for p in split_dex_params(match.group("params"))
        )
        return cls(
            class_name=dex_to_java_type(match.group("cls")),
            name=match.group("name"),
            param_types=params,
            return_type=dex_to_java_type(match.group("ret")),
        )

    def __str__(self) -> str:
        return self.to_soot()


@dataclass(frozen=True, order=True)
class FieldSignature:
    """A fully qualified field signature."""

    class_name: str
    name: str
    field_type: str = "java.lang.Object"

    def to_soot(self) -> str:
        """Render in Soot format: ``<com.a.B: int myPort>``."""
        return f"<{self.class_name}: {self.field_type} {self.name}>"

    def to_dex(self) -> str:
        """Render in dexdump format: ``Lcom/a/B;.myPort:I``."""
        return (
            f"{java_to_dex_type(self.class_name)}.{self.name}:"
            f"{java_to_dex_type(self.field_type)}"
        )

    @classmethod
    def parse_soot(cls, text: str) -> "FieldSignature":
        match = _SOOT_FIELD_RE.match(text.strip())
        if match is None:
            raise SignatureError(f"bad Soot field signature: {text!r}")
        return cls(
            class_name=match.group("cls").strip(),
            name=match.group("name").strip(),
            field_type=match.group("type").strip(),
        )

    @classmethod
    def parse_dex(cls, text: str) -> "FieldSignature":
        match = _DEX_FIELD_RE.match(text.strip())
        if match is None:
            raise SignatureError(f"bad dex field signature: {text!r}")
        return cls(
            class_name=dex_to_java_type(match.group("cls")),
            name=match.group("name"),
            field_type=dex_to_java_type(match.group("type")),
        )

    def __str__(self) -> str:
        return self.to_soot()


def escape_for_search(text: str) -> str:
    """Escape a signature for use inside a regular-expression search.

    dexdump signatures contain ``$ ( ) [ ;`` which are all regex
    metacharacters; the search index works on raw regexes, so every literal
    signature must be escaped before being embedded in a pattern.
    """
    return re.escape(text)
