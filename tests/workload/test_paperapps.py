"""Sanity tests for the paper example apps themselves."""

from repro.workload.paperapps import build_heyzap, build_lg_tv_plus, build_palcomp3


class TestLgTvPlus:
    def test_shape(self):
        apk = build_lg_tv_plus()
        names = set(apk.classes.class_names())
        assert "com.connectsdk.service.NetcastTVService$1" in names
        assert "com.connectsdk.core.Util" in names
        assert apk.manifest.is_registered("com.lge.app1.MainActivity")
        assert apk.manifest.is_registered("com.lge.app1.fota.HttpServerService")

    def test_runner_implements_runnable(self):
        apk = build_lg_tv_plus()
        pool = apk.full_pool
        assert "java.lang.Runnable" in pool.all_interfaces_of(
            "com.connectsdk.service.NetcastTVService$1"
        )

    def test_metadata_matches_paper_story(self):
        apk = build_lg_tv_plus()
        assert apk.installs >= 10_000_000  # "over 10 million installs"
        assert apk.year == 2018


class TestHeyzap:
    def test_clinit_present(self):
        apk = build_heyzap()
        client = apk.classes.get("com.heyzap.internal.APIClient")
        assert client.static_initializer() is not None

    def test_factory_extends_framework_class(self):
        apk = build_heyzap()
        pool = apk.full_pool
        assert pool.is_subtype_of(
            "com.heyzap.http.MySSLSocketFactory",
            "org.apache.http.conn.ssl.SSLSocketFactory",
        )

    def test_only_interstitial_registered(self):
        apk = build_heyzap()
        assert apk.manifest.entry_classes() == {
            "com.heyzap.sdk.ads.HeyzapInterstitialActivity"
        }


class TestPalcomp3:
    def test_constructor_chain_shape(self):
        apk = build_palcomp3()
        nano = apk.classes.get("com.studiosol.util.NanoHTTPD")
        assert len(nano.constructors()) == 2
        mp3 = apk.classes.get("com.studiosol.palcomp3.MP3LocalServer")
        assert mp3.super_name == "com.studiosol.util.NanoHTTPD"
        assert mp3.static_initializer() is not None

    def test_child_does_not_override_start(self):
        apk = build_palcomp3()
        pool = apk.full_pool
        mp3 = pool.get("com.studiosol.palcomp3.MP3LocalServer")
        assert not mp3.declares_sub_signature("void start()")

    def test_all_apps_disassemble(self):
        for builder in (build_lg_tv_plus, build_heyzap, build_palcomp3):
            apk = builder()
            assert len(apk.disassembly.lines) > 50
            assert apk.disassembly.blocks
