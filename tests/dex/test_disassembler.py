"""Unit tests for the dexdump-style disassembler."""

import re

from repro.dex.builder import AppBuilder
from repro.dex.disassembler import disassemble
from repro.dex.types import MethodSignature


def _fig3_app():
    """A miniature of the paper's Fig. 3 running example (LG TV Plus)."""
    app = AppBuilder()

    server = app.new_class("com.connectsdk.service.netcast.NetcastHttpServer")
    server.default_constructor()
    start = server.method("start")
    start.this()
    start.return_void()

    service = app.new_class("com.connectsdk.service.NetcastTVService")
    service.field("httpServer", "com.connectsdk.service.netcast.NetcastHttpServer")
    service.default_constructor()

    runner = app.new_class(
        "com.connectsdk.service.NetcastTVService$1",
        interfaces=["java.lang.Runnable"],
    )
    runner.field("this$0", "com.connectsdk.service.NetcastTVService")
    run = runner.method("run")
    this = run.this()
    outer = run.get_field(
        this, "com.connectsdk.service.NetcastTVService$1", "this$0",
        "com.connectsdk.service.NetcastTVService",
    )
    srv = run.get_field(
        outer, "com.connectsdk.service.NetcastTVService", "httpServer",
        "com.connectsdk.service.netcast.NetcastHttpServer",
    )
    run.invoke_virtual(srv, "com.connectsdk.service.netcast.NetcastHttpServer", "start")
    run.return_void()

    return app.build()


class TestDisassemblyText:
    def test_invoke_line_matches_dexdump_shape(self):
        text = disassemble(_fig3_app()).text
        # The exact search target of Fig. 3, bottom.
        assert re.search(
            r"invoke-virtual \{v\d+\}, "
            r"Lcom/connectsdk/service/netcast/NetcastHttpServer;\.start:\(\)V "
            r"// method@[0-9a-f]{4}",
            text,
        )

    def test_iget_line_matches_dexdump_shape(self):
        text = disassemble(_fig3_app()).text
        assert re.search(
            r"iget-object v\d+, v\d+, "
            r"Lcom/connectsdk/service/NetcastTVService;\.httpServer:"
            r"Lcom/connectsdk/service/netcast/NetcastHttpServer; // field@[0-9a-f]{4}",
            text,
        )

    def test_class_headers_present(self):
        text = disassemble(_fig3_app()).text
        assert "Class descriptor  : 'Lcom/connectsdk/service/NetcastTVService$1;'" in text
        assert "Interfaces        -" in text
        assert "'Ljava/lang/Runnable;'" in text

    def test_method_header_fields(self):
        text = disassemble(_fig3_app()).text
        assert "name          : 'run'" in text
        assert "type          : '()V'" in text

    def test_identity_stmts_not_rendered(self):
        # dexdump output has no identity statements; parameter registers
        # are implicit.
        text = disassemble(_fig3_app()).text
        assert "@this" not in text
        assert "@parameter" not in text


class TestDisassemblyStructure:
    def test_block_lookup_by_signature(self):
        disassembly = disassemble(_fig3_app())
        sig = MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )
        block = disassembly.block_of(sig)
        assert block is not None
        assert block.start_line < block.end_line
        assert len(block.insns) >= 3  # two igets, invoke, return

    def test_block_at_line_maps_hits_to_methods(self):
        disassembly = disassemble(_fig3_app())
        target = "Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V"
        hits = [
            i for i, line in enumerate(disassembly.lines)
            if target in line and "invoke" in line
        ]
        assert hits, "expected at least one invoke of the target"
        block = disassembly.block_at_line(hits[0])
        assert block.signature.class_name == "com.connectsdk.service.NetcastTVService$1"
        assert block.signature.name == "run"

    def test_insn_lines_map_back_to_stmt_indices(self):
        disassembly = disassemble(_fig3_app())
        sig = MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )
        block = disassembly.block_of(sig)
        indices = [insn.stmt_index for insn in block.insns]
        # Statement indices are monotonically non-decreasing.
        assert indices == sorted(indices)

    def test_every_app_method_has_a_block(self):
        pool = _fig3_app()
        disassembly = disassemble(pool)
        app_methods = {
            m.signature() for c in pool.application_classes() for m in c.methods
        }
        block_sigs = {b.signature for b in disassembly.blocks}
        assert app_methods == block_sigs

    def test_const_string_and_const_class_searchable(self):
        app = AppBuilder()
        cls = app.new_class("com.lge.app1.MediaShare")
        m = cls.method("launch")
        m.const_class("com.lge.app1.fota.HttpServerService")
        m.const_string("com.lge.app1.ACTION_SYNC")
        m.return_void()
        text = disassemble(app.build()).text
        assert "const-class v0, Lcom/lge/app1/fota/HttpServerService;" in text
        assert 'const-string v1, "com.lge.app1.ACTION_SYNC"' in text
