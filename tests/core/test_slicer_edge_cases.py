"""Edge-case tests for the backward slicer."""

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.core import BackDroid, BackDroidConfig
from repro.core.slicer import BackwardSlicer
from repro.dex.builder import AppBuilder


def _registered(app, manifest, name):
    cls = app.new_class(name, superclass="android.app.Activity")
    cls.default_constructor()
    manifest.register(name, ComponentKind.ACTIVITY)
    return cls


class TestCrossHandlerDataflow:
    def test_value_set_in_oncreate_read_in_onstart(self):
        """The Sec. IV-E scenario: the sink value is written by an
        earlier lifecycle handler; the field search bridges handlers."""
        app = AppBuilder()
        manifest = Manifest("com.e")
        main = _registered(app, manifest, "com.e.Main")
        main.field("mode", "java.lang.String")
        oc = main.method("onCreate", params=["android.os.Bundle"])
        this = oc.this()
        oc.param(0)
        oc.put_field(this, "com.e.Main", "mode", "java.lang.String",
                     "AES/ECB/PKCS5Padding")
        oc.return_void()
        os_ = main.method("onStart")
        s_this = os_.this()
        mode = os_.get_field(s_this, "com.e.Main", "mode", "java.lang.String")
        os_.invoke_static(
            "javax.crypto.Cipher", "getInstance", args=[mode],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        os_.return_void()
        apk = Apk(package="com.e", classes=app.build(), manifest=manifest)
        report = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",))).analyze(apk)
        assert report.vulnerable
        assert report.records[0].facts_repr[0] == '"AES/ECB/PKCS5Padding"'


class TestRobustness:
    def test_frame_budget_exhaustion_is_noted_not_fatal(self):
        app = AppBuilder()
        manifest = Manifest("com.e")
        main = _registered(app, manifest, "com.e.Main")
        helper = app.new_class("com.e.H")
        # A long linear chain to burn frames.
        depth = 30
        for level in range(depth):
            m = helper.method(f"s{level}", params=["java.lang.String"], static=True)
            arg = m.param(0)
            if level == depth - 1:
                m.invoke_static(
                    "javax.crypto.Cipher", "getInstance", args=[arg],
                    params=["java.lang.String"], returns="javax.crypto.Cipher",
                )
            else:
                m.invoke_static("com.e.H", f"s{level + 1}", args=[arg],
                                params=["java.lang.String"])
            m.return_void()
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        t = oc.const_string("AES/ECB/PKCS5Padding")
        oc.invoke_static("com.e.H", "s0", args=[t], params=["java.lang.String"])
        oc.return_void()
        apk = Apk(package="com.e", classes=app.build(), manifest=manifest)

        tight = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",), max_frames=5))
        report = tight.analyze(apk)
        # With a tiny budget the slice cannot prove reachability, so the
        # sink is conservatively not reported — but nothing crashes.
        assert report.sink_count == 1
        assert not report.records[0].reachable

        generous = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",)))
        assert generous.analyze(apk).vulnerable

    def test_sink_in_unparseable_position_ignored(self):
        """A sink signature appearing only in a method header (no
        invocation) must not be treated as a call site."""
        app = AppBuilder()
        manifest = Manifest("com.e")
        # An app class that *declares* a method named getInstance with
        # the same sub-signature; the initial search must not confuse it.
        impostor = app.new_class("com.e.Cipherish")
        m = impostor.method("getInstance", params=["java.lang.String"],
                            returns="javax.crypto.Cipher", static=True)
        m.param(0)
        m.return_value(None)
        apk = Apk(package="com.e", classes=app.build(), manifest=manifest)
        report = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",))).analyze(apk)
        assert report.sink_count == 0

    def test_multidex_merge_analyzed_as_one(self):
        """Classes split across dex pools are searched as one plaintext."""
        first = AppBuilder()
        helper = first.new_class("com.e.H")
        hm = helper.method("go", params=["java.lang.String"], static=True)
        arg = hm.param(0)
        hm.invoke_static(
            "javax.crypto.Cipher", "getInstance", args=[arg],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        hm.return_void()
        second = AppBuilder()
        manifest = Manifest("com.e")
        main = _registered(second, manifest, "com.e.Main")
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        t = oc.const_string("DES")
        oc.invoke_static("com.e.H", "go", args=[t], params=["java.lang.String"])
        oc.return_void()

        merged = first.build()
        merged.merge(second.build())
        apk = Apk(package="com.e", classes=merged, manifest=manifest)
        report = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",))).analyze(apk)
        assert report.vulnerable


class TestSlicerDirect:
    def test_unknown_sink_method_yields_empty_ssg(self):
        from repro.android.framework import sinks_for_rules
        from repro.core.slicer import SinkCallSite
        from repro.dex.types import MethodSignature

        apk = Apk(package="com.e", classes=AppBuilder().build(),
                  manifest=Manifest("com.e"))
        slicer = BackwardSlicer(apk)
        site = SinkCallSite(
            method=MethodSignature("com.ghost.C", "m", (), "void"),
            stmt_index=0,
            spec=sinks_for_rules(("crypto-ecb",))[0],
        )
        ssg = slicer.slice_sink(site)
        assert len(ssg) == 0
        assert not ssg.reached_entry
        assert ssg.notes
