#!/usr/bin/env python3
"""Crypto-misuse audit over a small app-store corpus, both tools side by side.

Generates a slice of the benchmark corpus (the stand-in for the paper's
pre-searched 144 modern apps) and audits every app for ECB-mode cipher
misuse with BackDroid *and* the Amandroid-style whole-app baseline,
printing the per-app verdicts, timings and the causes behind every
disagreement — a miniature of the paper's Sec. VI evaluation.

Run:  python examples/crypto_audit.py [n_apps]
"""

import sys

from repro.baseline import AmandroidConfig, AmandroidStyleAnalyzer
from repro.core import BackDroid, BackDroidConfig
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    backdroid = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",)))
    baseline = AmandroidStyleAnalyzer(
        AmandroidConfig(timeout_seconds=5.0), sink_rules=("crypto-ecb",)
    )

    print(f"{'app':<18} {'size':>7} {'sinks':>5} "
          f"{'BackDroid':>12} {'whole-app':>12}  disagreement")
    print("-" * 80)
    agreements = 0
    for index in range(count):
        generated = generate_app(benchmark_app_spec(index, scale=0.3))
        apk = generated.apk
        bd = backdroid.analyze(apk)
        am = baseline.analyze(apk)

        bd_verdict = f"{len(bd.findings)} hits/{bd.analysis_seconds:.2f}s"
        if am.timed_out:
            am_verdict = "TIMEOUT"
        elif am.error:
            am_verdict = "ERROR"
        else:
            am_verdict = f"{len(am.findings)} hits/{am.analysis_seconds:.2f}s"

        why = ""
        if bool(bd.findings) != bool(am.findings):
            if am.timed_out:
                why = "baseline timed out"
            elif am.error:
                why = "baseline analysis error"
            elif bd.findings:
                missed = {f.method.class_name for f in bd.findings} - {
                    f.method.class_name for f in am.findings
                }
                patterns = {
                    t.pattern for t in generated.truths if t.sink_class in missed
                }
                why = f"baseline missed {sorted(patterns)}"
            else:
                why = "baseline-only flag (check manifest registration)"
        else:
            agreements += 1

        print(f"{apk.package:<18} {apk.size_mb:>6.1f}M {bd.sink_count:>5} "
              f"{bd_verdict:>12} {am_verdict:>12}  {why}")

    print("-" * 80)
    print(f"agreement on {agreements}/{count} apps; every disagreement above "
          "maps to a documented whole-app weakness (Sec. VI-C).")


if __name__ == "__main__":
    main()
