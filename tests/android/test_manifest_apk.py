"""Unit tests for the manifest model and the Apk container."""

from repro.android.apk import Apk
from repro.android.manifest import Component, ComponentKind, IntentFilter, Manifest
from repro.dex.builder import AppBuilder


def _manifest() -> Manifest:
    manifest = Manifest(package="com.lge.app1")
    manifest.register(
        "com.lge.app1.MainActivity",
        ComponentKind.ACTIVITY,
        exported=True,
        actions=["android.intent.action.MAIN"],
    )
    manifest.register("com.lge.app1.fota.HttpServerService", ComponentKind.SERVICE)
    manifest.register(
        "com.lge.app1.SyncReceiver",
        ComponentKind.RECEIVER,
        actions=["com.lge.app1.ACTION_SYNC"],
    )
    return manifest


class TestManifest:
    def test_registration_lookup(self):
        manifest = _manifest()
        assert manifest.is_registered("com.lge.app1.MainActivity")
        assert manifest.is_registered("com.lge.app1.fota.HttpServerService")
        # The unregistered-Activity shape behind Amandroid's false
        # positives (Sec. VI-C).
        assert not manifest.is_registered("jp.kemco.activation.TstoreActivation")

    def test_application_class_counts_as_registered(self):
        manifest = Manifest(package="com.a", application_class="com.a.App")
        assert manifest.is_registered("com.a.App")

    def test_launcher_detection(self):
        manifest = _manifest()
        assert manifest.component("com.lge.app1.MainActivity").is_launcher
        assert not manifest.component("com.lge.app1.SyncReceiver").is_launcher

    def test_components_of_kind(self):
        manifest = _manifest()
        services = manifest.components_of(ComponentKind.SERVICE)
        assert [c.class_name for c in services] == [
            "com.lge.app1.fota.HttpServerService"
        ]

    def test_implicit_icc_resolution(self):
        manifest = _manifest()
        receivers = manifest.components_handling("com.lge.app1.ACTION_SYNC")
        assert [c.class_name for c in receivers] == ["com.lge.app1.SyncReceiver"]
        assert manifest.components_handling("unknown.ACTION") == []

    def test_entry_classes(self):
        manifest = _manifest()
        assert manifest.entry_classes() == {
            "com.lge.app1.MainActivity",
            "com.lge.app1.fota.HttpServerService",
            "com.lge.app1.SyncReceiver",
        }

    def test_component_kind_base_classes(self):
        assert ComponentKind.ACTIVITY.base_class == "android.app.Activity"
        assert ComponentKind.PROVIDER.base_class == "android.content.ContentProvider"

    def test_intent_filter_matching(self):
        f = IntentFilter(actions=("a.b.ACTION_X",))
        assert f.matches_action("a.b.ACTION_X")
        assert not f.matches_action("a.b.ACTION_Y")


class TestApk:
    def _apk(self) -> Apk:
        app = AppBuilder()
        main = app.new_class("com.example.Main", superclass="android.app.Activity")
        m = main.method("onCreate", params=["android.os.Bundle"])
        m.this()
        m.return_void()
        return Apk(package="com.example", classes=app.build(), size_mb=41.5)

    def test_full_pool_contains_app_and_framework(self):
        apk = self._apk()
        assert apk.full_pool.get("com.example.Main") is not None
        assert apk.full_pool.get("android.app.Activity") is not None

    def test_full_pool_hierarchy_crosses_boundary(self):
        apk = self._apk()
        assert apk.full_pool.is_subtype_of("com.example.Main", "android.content.Context")

    def test_disassembly_contains_only_app_classes(self):
        apk = self._apk()
        text = apk.disassembly.text
        assert "Lcom/example/Main;" in text
        assert "Landroid/app/Activity;'" not in text.replace(
            "Superclass        : 'Landroid/app/Activity;'", ""
        )

    def test_caches_are_reused_and_invalidated(self):
        apk = self._apk()
        first = apk.disassembly
        assert apk.disassembly is first
        apk.invalidate_caches()
        assert apk.disassembly is not first

    def test_counters(self):
        apk = self._apk()
        assert apk.class_count() == 1
        assert apk.method_count() == 1
        assert apk.code_units() >= 2
