"""Unit tests for type descriptors and signature format translation."""

import pytest

from repro.dex.types import (
    FieldSignature,
    MethodSignature,
    SignatureError,
    dex_to_java_type,
    java_to_dex_type,
    split_dex_params,
)


class TestTypeTranslation:
    def test_primitives_to_dex(self):
        assert java_to_dex_type("void") == "V"
        assert java_to_dex_type("boolean") == "Z"
        assert java_to_dex_type("byte") == "B"
        assert java_to_dex_type("short") == "S"
        assert java_to_dex_type("char") == "C"
        assert java_to_dex_type("int") == "I"
        assert java_to_dex_type("long") == "J"
        assert java_to_dex_type("float") == "F"
        assert java_to_dex_type("double") == "D"

    def test_class_type_to_dex(self):
        assert java_to_dex_type("java.lang.String") == "Ljava/lang/String;"

    def test_inner_class_keeps_dollar(self):
        assert (
            java_to_dex_type("com.connectsdk.service.NetcastTVService$1")
            == "Lcom/connectsdk/service/NetcastTVService$1;"
        )

    def test_array_types(self):
        assert java_to_dex_type("int[]") == "[I"
        assert java_to_dex_type("java.lang.String[][]") == "[[Ljava/lang/String;"

    def test_dex_to_java_roundtrip(self):
        for java_type in ("void", "int", "java.lang.String", "int[]", "com.a.B$C[][]"):
            assert dex_to_java_type(java_to_dex_type(java_type)) == java_type

    def test_bad_descriptor_raises(self):
        with pytest.raises(SignatureError):
            dex_to_java_type("Q")
        with pytest.raises(SignatureError):
            dex_to_java_type("")

    def test_empty_type_raises(self):
        with pytest.raises(SignatureError):
            java_to_dex_type("")


class TestSplitDexParams:
    def test_empty(self):
        assert split_dex_params("") == ()

    def test_mixed(self):
        assert split_dex_params("Ljava/lang/String;I[J") == (
            "Ljava/lang/String;",
            "I",
            "[J",
        )

    def test_array_of_objects(self):
        assert split_dex_params("[Ljava/lang/Object;Z") == ("[Ljava/lang/Object;", "Z")

    def test_unterminated_class_raises(self):
        with pytest.raises(SignatureError):
            split_dex_params("Ljava/lang/String")

    def test_dangling_array_raises(self):
        with pytest.raises(SignatureError):
            split_dex_params("[")


class TestMethodSignature:
    def test_paper_example_to_dex(self):
        # The exact translation of Fig. 3, step 1.
        sig = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        assert sig.to_soot() == (
            "<com.connectsdk.service.netcast.NetcastHttpServer: void start()>"
        )
        assert sig.to_dex() == (
            "Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V"
        )

    def test_params_rendering(self):
        sig = MethodSignature(
            "com.connectsdk.core.Util",
            "runInBackground",
            ("java.lang.Runnable", "boolean"),
            "void",
        )
        assert sig.to_dex() == "Lcom/connectsdk/core/Util;.runInBackground:(Ljava/lang/Runnable;Z)V"
        assert sig.sub_signature() == "void runInBackground(java.lang.Runnable,boolean)"
        assert sig.dex_sub_signature() == "runInBackground:(Ljava/lang/Runnable;Z)V"

    def test_parse_soot_roundtrip(self):
        text = "<com.a.B: java.lang.String f(int,java.lang.Object[])>"
        sig = MethodSignature.parse_soot(text)
        assert sig.class_name == "com.a.B"
        assert sig.name == "f"
        assert sig.param_types == ("int", "java.lang.Object[]")
        assert sig.return_type == "java.lang.String"
        assert sig.to_soot() == text

    def test_parse_dex_roundtrip(self):
        text = "Lcom/a/B;.f:(I[Ljava/lang/Object;)Ljava/lang/String;"
        sig = MethodSignature.parse_dex(text)
        assert sig.to_dex() == text
        assert sig.param_types == ("int", "java.lang.Object[]")

    def test_cross_format_equivalence(self):
        soot = MethodSignature.parse_soot("<com.a.B: void go(long)>")
        dex = MethodSignature.parse_dex("Lcom/a/B;.go:(J)V")
        assert soot == dex

    def test_with_class_rehoming(self):
        # Child-class search signature construction (Sec. IV-A).
        sig = MethodSignature("com.a.Server", "start", (), "void")
        child = sig.with_class("com.a.ChildServer")
        assert child.to_dex() == "Lcom/a/ChildServer;.start:()V"
        assert child.sub_signature() == sig.sub_signature()

    def test_constructor_and_clinit_predicates(self):
        init = MethodSignature("com.a.B", "<init>", (), "void")
        clinit = MethodSignature("com.a.B", "<clinit>", (), "void")
        plain = MethodSignature("com.a.B", "run", (), "void")
        assert init.is_constructor and not init.is_static_initializer
        assert clinit.is_static_initializer and not clinit.is_constructor
        assert not plain.is_constructor and not plain.is_static_initializer

    def test_parse_bad_soot_raises(self):
        with pytest.raises(SignatureError):
            MethodSignature.parse_soot("not a signature")

    def test_parse_bad_dex_raises(self):
        with pytest.raises(SignatureError):
            MethodSignature.parse_dex("com.a.B.f()")

    def test_hashable_and_ordered(self):
        a = MethodSignature("com.a.A", "m", (), "void")
        b = MethodSignature("com.a.B", "m", (), "void")
        assert len({a, b, a}) == 2
        assert sorted([b, a])[0] == a


class TestFieldSignature:
    def test_paper_example(self):
        # The myPort field of Fig. 6.
        sig = FieldSignature("com.studiosol.util.NanoHTTPD", "myPort", "int")
        assert sig.to_soot() == "<com.studiosol.util.NanoHTTPD: int myPort>"
        assert sig.to_dex() == "Lcom/studiosol/util/NanoHTTPD;.myPort:I"

    def test_parse_soot(self):
        sig = FieldSignature.parse_soot("<com.a.B: java.lang.String name>")
        assert sig.field_type == "java.lang.String"
        assert sig.name == "name"

    def test_parse_dex(self):
        sig = FieldSignature.parse_dex("Lcom/a/B;.httpServer:Lcom/a/Server;")
        assert sig.class_name == "com.a.B"
        assert sig.name == "httpServer"
        assert sig.field_type == "com.a.Server"

    def test_roundtrips(self):
        sig = FieldSignature("com.a.B", "flags", "boolean[]")
        assert FieldSignature.parse_soot(sig.to_soot()) == sig
        assert FieldSignature.parse_dex(sig.to_dex()) == sig
