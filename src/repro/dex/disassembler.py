"""A dexdump-style plaintext disassembler.

BackDroid "employs dexdump to disassemble (merged, if multidex is used)
bytecode to a plaintext" (Sec. III, step 1) and then performs *text search*
over that plaintext.  This module renders our IR into the same textual
shapes dexdump produces, so that every search pattern in the paper has a
real target:

* method invocations: ``invoke-virtual {v0},
  Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V // method@30b9``
* field accesses: ``iget-object v0, v5,
  Lcom/connectsdk/service/NetcastTVService$1;.this$0:L...; // field@17b4``
* explicit-ICC parameters: ``const-class v1, Lcom/lge/app1/fota/HttpServerService;``
* implicit-ICC parameters: ``const-string v2, "com.app.ACTION_SYNC"``

Each emitted instruction line is mapped back to its originating IR
statement, which is what lets a text hit be "translated back" into the
program-analysis space (Fig. 3, steps 2-3).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.dex.hierarchy import ClassPool, DexClass, DexMethod
from repro.dex.instructions import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    ClassConstant,
    DoubleConstant,
    GotoStmt,
    IdentityStmt,
    IfStmt,
    InstanceFieldRef,
    IntConstant,
    InvokeExpr,
    InvokeStmt,
    Local,
    LongConstant,
    NewArrayExpr,
    NewExpr,
    NopStmt,
    NullConstant,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    Stmt,
    StringConstant,
    ThrowStmt,
)
from repro.dex.types import MethodSignature, java_to_dex_type

_BINOP_OPCODES = {
    "+": "add-int",
    "-": "sub-int",
    "*": "mul-int",
    "/": "div-int",
    "%": "rem-int",
    "&": "and-int",
    "|": "or-int",
    "^": "xor-int",
    "<<": "shl-int",
    ">>": "shr-int",
    "==": "cmp-eq",
    "!=": "cmp-ne",
    "<": "cmp-lt",
    ">": "cmp-gt",
    "<=": "cmp-le",
    ">=": "cmp-ge",
}


class _InternPool:
    """Assigns stable hexadecimal ids, mimicking dexdump's ``// method@30b9``."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}

    def id_of(self, key: str) -> int:
        if key not in self._ids:
            self._ids[key] = len(self._ids)
        return self._ids[key]

    def render(self, kind: str, key: str) -> str:
        return f"// {kind}@{self.id_of(key):04x}"


@dataclass
class InsnLine:
    """One rendered instruction line, tied back to its IR statement."""

    line_no: int  # absolute line number in the full disassembly text
    stmt_index: int  # index into the owning method's body
    text: str


@dataclass(frozen=True)
class LineToken:
    """One searchable token emitted while rendering a line.

    The renderer knows, at emission time, which substrings of a line a
    bytecode search could ever target: full method signatures on invoke
    lines, field signatures on access lines, type descriptors wherever a
    class is referenced, and quoted string/descriptor literals in class
    and member headers.  Recording them as a token stream lets a search
    backend build an inverted index without re-parsing the plaintext.

    ``text`` is always a verbatim substring of the rendered line.
    """

    line_no: int
    kind: str  # "msig" | "fsig" | "type" | "string" | "header" | "proto"
    text: str


@dataclass(frozen=True)
class ClassSpan:
    """The contiguous line range one class's rendering occupies.

    Class sections are rendered back to back in sorted-name order, so
    spans tile the post-preamble disassembly.  The artifact store's
    sharding layer groups consecutive spans by library prefix and keys
    each group by its (position-independent) token content — which is
    what lets two apps embedding the same library share one stored
    shard.
    """

    class_name: str  # Java-style name, e.g. "com.lge.app1.MainActivity"
    start_line: int
    end_line: int  # exclusive


@dataclass
class MethodBlock:
    """The disassembly section of one method."""

    signature: MethodSignature
    start_line: int
    end_line: int  # exclusive
    insns: list[InsnLine] = field(default_factory=list)

    def stmt_index_for_line(self, line_no: int) -> Optional[int]:
        for insn in self.insns:
            if insn.line_no == line_no:
                return insn.stmt_index
        return None


class Disassembly:
    """The full dexdump-style plaintext plus its method-block structure."""

    def __init__(
        self,
        lines: list[str],
        blocks: list[MethodBlock],
        tokens: Optional[list[LineToken]] = None,
        class_spans: Optional[list[ClassSpan]] = None,
    ) -> None:
        self.lines = lines
        self.blocks = blocks
        self.tokens = tokens if tokens is not None else []
        #: Per-class line ranges (empty for hand-built disassemblies;
        #: the store's sharding layer then falls back to one app-wide
        #: shard group).
        self.class_spans = class_spans if class_spans is not None else []
        self._block_starts = [b.start_line for b in blocks]
        self._by_signature = {b.signature: b for b in blocks}

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    def __len__(self) -> int:
        return len(self.lines)

    def block_at_line(self, line_no: int) -> Optional[MethodBlock]:
        """The method block containing an absolute line number.

        This is step 2 of the basic search (Fig. 3): "identify the
        corresponding method that contains the invocation found in the
        bytecode plaintext".
        """
        idx = bisect.bisect_right(self._block_starts, line_no) - 1
        if idx < 0:
            return None
        block = self.blocks[idx]
        if block.start_line <= line_no < block.end_line:
            return block
        return None

    def block_of(self, signature: MethodSignature) -> Optional[MethodBlock]:
        return self._by_signature.get(signature)


class _Renderer:
    """Stateful renderer for one whole class pool."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.blocks: list[MethodBlock] = []
        self.tokens: list[LineToken] = []
        self.class_spans: list[ClassSpan] = []
        self._methods = _InternPool()
        self._fields = _InternPool()
        self._types = _InternPool()
        self._strings = _InternPool()
        #: rendered instruction text -> its searchable tokens.  Identical
        #: texts always carry identical tokens, so a plain memo suffices.
        self._line_tokens: dict[str, tuple[tuple[str, str], ...]] = {}
        self._addr = 0x10000

    # ------------------------------------------------------------------
    def _emit(self, text: str) -> int:
        self.lines.append(text)
        return len(self.lines) - 1

    def _token(self, kind: str, text: str) -> None:
        """Record a searchable token on the most recently emitted line."""
        self.tokens.append(LineToken(len(self.lines) - 1, kind, text))

    def _tokened(self, text: str, *pairs: tuple[str, str]) -> str:
        """Register the searchable tokens carried by an instruction text."""
        self._line_tokens.setdefault(text, pairs)
        return text

    def render_pool(self, pool: ClassPool) -> Disassembly:
        self._emit("Processing merged classes.dex")
        self._emit("Opened 'classes.dex', DEX version '035'")
        for index, cls in enumerate(sorted(pool.application_classes(), key=lambda c: c.name)):
            start = len(self.lines)
            self._render_class(index, cls)
            self.class_spans.append(
                ClassSpan(cls.name, start, len(self.lines))
            )
        return Disassembly(
            self.lines, self.blocks, self.tokens, self.class_spans
        )

    # ------------------------------------------------------------------
    def _render_class(self, index: int, cls: DexClass) -> None:
        descriptor = java_to_dex_type(cls.name)
        self._emit(f"Class #{index}            -")
        self._emit(f"  Class descriptor  : '{descriptor}'")
        self._token("header", f"'{descriptor}'")
        self._emit(f"  Access flags      : {cls.flags.dex_render()}")
        super_desc = java_to_dex_type(cls.super_name) if cls.super_name else "(none)"
        self._emit(f"  Superclass        : '{super_desc}'")
        if cls.super_name:
            self._token("header", f"'{super_desc}'")
        self._emit("  Interfaces        -")
        for i, iface in enumerate(cls.interfaces):
            iface_desc = java_to_dex_type(iface)
            self._emit(f"    #{i}              : '{iface_desc}'")
            self._token("header", f"'{iface_desc}'")
        self._render_fields(cls)
        direct, virtual = [], []
        for method in cls.methods:
            is_direct = (
                method.is_static or method.is_private or method.is_constructor
                or method.is_static_initializer
            )
            (direct if is_direct else virtual).append(method)
        self._emit("  Direct methods    -")
        for i, method in enumerate(direct):
            self._render_method(i, cls, method)
        self._emit("  Virtual methods   -")
        for i, method in enumerate(virtual):
            self._render_method(i, cls, method)

    def _render_fields(self, cls: DexClass) -> None:
        static_fields = [f for f in cls.fields if f.is_static]
        instance_fields = [f for f in cls.fields if not f.is_static]
        self._emit("  Static fields     -")
        for i, dex_field in enumerate(static_fields):
            self._render_field_header(i, cls, dex_field)
        self._emit("  Instance fields   -")
        for i, dex_field in enumerate(instance_fields):
            self._render_field_header(i, cls, dex_field)

    def _render_field_header(self, index: int, cls: DexClass, dex_field) -> None:
        owner = java_to_dex_type(cls.name)
        self._emit(f"    #{index}              : (in {owner})")
        self._token("type", owner)
        self._emit(f"      name          : '{dex_field.name}'")
        type_desc = java_to_dex_type(dex_field.field_type)
        self._emit(f"      type          : '{type_desc}'")
        self._token("header", f"'{type_desc}'")

    # ------------------------------------------------------------------
    def _render_method(self, index: int, cls: DexClass, method: DexMethod) -> None:
        sig = method.signature()
        descriptor = java_to_dex_type(cls.name)
        start = self._emit(f"    #{index}              : (in {descriptor})")
        self._token("type", descriptor)
        self._emit(f"      name          : '{method.name}'")
        params = "".join(java_to_dex_type(p) for p in method.param_types)
        proto = f"({params}){java_to_dex_type(method.return_type)}"
        self._emit(f"      type          : '{proto}'")
        self._token("header", f"'{proto}'")
        self._emit(f"      access        : {method.flags.dex_render()}")
        block = MethodBlock(signature=sig, start_line=start, end_line=start)
        if method.has_body:
            self._emit(f"      insns size    : {max(1, len(method.body))} 16-bit code units")
            dotted = f"{cls.name}.{method.name}".replace("$", ".")
            self._emit(f"{self._addr:06x}:                                   |[{self._addr:06x}] "
                       f"{dotted}:{proto}")
            self._token("proto", proto)
            self._addr += 0x10
            self._render_body(method, block)
        else:
            self._emit("      code          : (none)")
        block.end_line = len(self.lines)
        self.blocks.append(block)

    def _render_body(self, method: DexMethod, block: MethodBlock) -> None:
        registers = _RegisterMap()
        offset = 0
        for stmt_index, stmt in enumerate(method.body):
            for text in self._render_stmt(stmt, registers):
                line_no = self._emit(
                    f"{self._addr:06x}: {'':>24}|{offset:04x}: {text}"
                )
                block.insns.append(InsnLine(line_no=line_no, stmt_index=stmt_index, text=text))
                for kind, token in self._line_tokens.get(text, ()):
                    self.tokens.append(LineToken(line_no, kind, token))
                self._addr += 6
                offset += 3

    # ------------------------------------------------------------------
    def _render_stmt(self, stmt: Stmt, registers: "_RegisterMap") -> Iterable[str]:
        if isinstance(stmt, IdentityStmt):
            # Dex has no identity statements; parameter registers are
            # implicit.  Nothing is emitted, exactly as in real dexdump
            # output — the search never needs them.
            registers.reg(stmt.local)
            return []
        if isinstance(stmt, AssignStmt):
            return self._render_assign(stmt, registers)
        if isinstance(stmt, InvokeStmt):
            return [self._render_invoke(stmt.invoke, registers)]
        if isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                return ["return-void"]
            if isinstance(stmt.value, Local):
                suffix = _move_suffix(stmt.value.java_type)
                return [f"return{suffix} {registers.reg(stmt.value)}"]
            return ["return-object v0"]
        if isinstance(stmt, IfStmt):
            cond = stmt.condition
            reg = (
                registers.reg(cond)
                if isinstance(cond, Local)
                else registers.any_reg()
            )
            return [f"if-nez {reg}, :{stmt.target}"]
        if isinstance(stmt, GotoStmt):
            return [f"goto/16 :{stmt.target}"]
        if isinstance(stmt, ThrowStmt):
            value = stmt.value
            reg = registers.reg(value) if isinstance(value, Local) else "v0"
            return [f"throw {reg}"]
        if isinstance(stmt, NopStmt):
            return [f"nop  // :{stmt.label}" if stmt.label else "nop"]
        return ["nop  // <unmodelled>"]

    def _render_assign(self, stmt: AssignStmt, registers: "_RegisterMap") -> list[str]:
        lhs, rhs = stmt.lhs, stmt.rhs
        # --- stores through references ---------------------------------
        if isinstance(lhs, InstanceFieldRef):
            src = self._value_reg(rhs, registers)
            return [
                self._tokened(
                    f"iput{_field_suffix(lhs.fieldsig.field_type)} {src}, "
                    f"{registers.reg(lhs.base)}, {lhs.fieldsig.to_dex()} "
                    f"{self._fields.render('field', lhs.fieldsig.to_dex())}",
                    ("fsig", lhs.fieldsig.to_dex()),
                )
            ]
        if isinstance(lhs, StaticFieldRef):
            src = self._value_reg(rhs, registers)
            return [
                self._tokened(
                    f"sput{_field_suffix(lhs.fieldsig.field_type)} {src}, "
                    f"{lhs.fieldsig.to_dex()} "
                    f"{self._fields.render('field', lhs.fieldsig.to_dex())}",
                    ("fsig", lhs.fieldsig.to_dex()),
                )
            ]
        if isinstance(lhs, ArrayRef):
            src = self._value_reg(rhs, registers)
            idx = self._value_reg(lhs.index, registers)
            return [f"aput-object {src}, {registers.reg(lhs.base)}, {idx}"]

        # --- loads into a local -----------------------------------------
        assert isinstance(lhs, Local)
        dst = registers.reg(lhs)
        if isinstance(rhs, NewExpr):
            descriptor = java_to_dex_type(rhs.class_name)
            return [
                self._tokened(
                    f"new-instance {dst}, {descriptor} "
                    f"{self._types.render('type', descriptor)}",
                    ("type", descriptor),
                )
            ]
        if isinstance(rhs, StringConstant):
            return [
                self._tokened(
                    f'const-string {dst}, "{rhs.value}" '
                    f"{self._strings.render('string', rhs.value)}",
                    ("string", f'"{rhs.value}"'),
                )
            ]
        if isinstance(rhs, IntConstant):
            return [f"const/16 {dst}, #int {rhs.value} // #{rhs.value:x}"]
        if isinstance(rhs, LongConstant):
            return [f"const-wide/32 {dst}, #long {rhs.value}"]
        if isinstance(rhs, DoubleConstant):
            return [f"const-wide/high16 {dst}, #double {rhs.value}"]
        if isinstance(rhs, NullConstant):
            return [f"const/4 {dst}, #int 0 // #0"]
        if isinstance(rhs, ClassConstant):
            descriptor = java_to_dex_type(rhs.class_name)
            return [
                self._tokened(
                    f"const-class {dst}, {descriptor} "
                    f"{self._types.render('type', descriptor)}",
                    ("type", descriptor),
                )
            ]
        if isinstance(rhs, InstanceFieldRef):
            return [
                self._tokened(
                    f"iget{_field_suffix(rhs.fieldsig.field_type)} {dst}, "
                    f"{registers.reg(rhs.base)}, {rhs.fieldsig.to_dex()} "
                    f"{self._fields.render('field', rhs.fieldsig.to_dex())}",
                    ("fsig", rhs.fieldsig.to_dex()),
                )
            ]
        if isinstance(rhs, StaticFieldRef):
            return [
                self._tokened(
                    f"sget{_field_suffix(rhs.fieldsig.field_type)} {dst}, "
                    f"{rhs.fieldsig.to_dex()} "
                    f"{self._fields.render('field', rhs.fieldsig.to_dex())}",
                    ("fsig", rhs.fieldsig.to_dex()),
                )
            ]
        if isinstance(rhs, ArrayRef):
            idx = self._value_reg(rhs.index, registers)
            return [f"aget-object {dst}, {registers.reg(rhs.base)}, {idx}"]
        if isinstance(rhs, InvokeExpr):
            move = "move-result-object" if _is_reference(rhs.method.return_type) else "move-result"
            return [self._render_invoke(rhs, registers), f"{move} {dst}"]
        if isinstance(rhs, BinopExpr):
            opcode = _BINOP_OPCODES.get(rhs.op, "binop")
            left = self._value_reg(rhs.left, registers)
            right = self._value_reg(rhs.right, registers)
            return [f"{opcode} {dst}, {left}, {right}"]
        if isinstance(rhs, CastExpr):
            descriptor = java_to_dex_type(rhs.to_type)
            src = self._value_reg(rhs.value, registers)
            return [
                f"move-object {dst}, {src}",
                self._tokened(
                    f"check-cast {dst}, {descriptor} "
                    f"{self._types.render('type', descriptor)}",
                    ("type", descriptor),
                ),
            ]
        if isinstance(rhs, NewArrayExpr):
            size = self._value_reg(rhs.size, registers)
            descriptor = java_to_dex_type(rhs.element_type + "[]")
            return [
                self._tokened(
                    f"new-array {dst}, {size}, {descriptor} "
                    f"{self._types.render('type', descriptor)}",
                    ("type", descriptor),
                )
            ]
        if isinstance(rhs, PhiExpr):
            # Phi nodes are an SSA artefact with no dex encoding; render the
            # merge as moves so the text stays plausible.
            sources = [self._value_reg(v, registers) for v in rhs.values]
            return [f"move-object {dst}, {src}" for src in sources[:1]]
        if isinstance(rhs, Local):
            suffix = _move_suffix(rhs.java_type)
            return [f"move{suffix} {dst}, {registers.reg(rhs)}"]
        return ["nop  // <unmodelled-assign>"]

    def _render_invoke(self, expr: InvokeExpr, registers: "_RegisterMap") -> str:
        regs: list[str] = []
        if expr.base is not None:
            regs.append(registers.reg(expr.base))
        for arg in expr.args:
            regs.append(self._value_reg(arg, registers))
        dex_sig = expr.method.to_dex()
        return self._tokened(
            f"{expr.kind.dex_opcode} {{{', '.join(regs)}}}, {dex_sig} "
            f"{self._methods.render('method', dex_sig)}",
            ("msig", dex_sig),
        )

    def _value_reg(self, value, registers: "_RegisterMap") -> str:
        """Materialise a value operand as a register name.

        Constants folded into invoke operands get a synthetic register; the
        searches only care about the signature part of the line.
        """
        if isinstance(value, Local):
            return registers.reg(value)
        return registers.scratch()


class _RegisterMap:
    """Assigns ``vN`` register names to locals, per method."""

    def __init__(self) -> None:
        self._map: dict[str, str] = {}
        self._next = 0

    def reg(self, local: Local) -> str:
        if local.name not in self._map:
            self._map[local.name] = f"v{self._next}"
            self._next += 1
        return self._map[local.name]

    def scratch(self) -> str:
        name = f"v{self._next}"
        self._next += 1
        return name

    def any_reg(self) -> str:
        return next(iter(self._map.values()), "v0")


def _is_reference(java_type: str) -> bool:
    return java_type.endswith("[]") or "." in java_type or java_type in {
        "java", "Object"
    }


def _field_suffix(java_type: str) -> str:
    if _is_reference(java_type):
        return "-object"
    if java_type in ("long", "double"):
        return "-wide"
    if java_type == "boolean":
        return "-boolean"
    return ""


def _move_suffix(java_type: str) -> str:
    if _is_reference(java_type):
        return "-object"
    if java_type in ("long", "double"):
        return "-wide"
    return ""


def disassemble(pool: ClassPool) -> Disassembly:
    """Disassemble a (merged) class pool into dexdump-style plaintext.

    Multidex apps should merge their pools first (``ClassPool.merge``);
    this mirrors BackDroid's preprocessing step, which merges multidex
    bytecode before dumping.
    """
    return _Renderer().render_pool(pool)
