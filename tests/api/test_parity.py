"""Old-vs-new parity: the BackDroid shim must match the session API.

``BackDroid(config).analyze(apk)`` is now a thin shim over a one-shot
:class:`AnalysisSession`; these tests hold it to identical reports —
across both backends and every sink rule family — when compared to a
directly-driven session, and hold the two backends to identical
verdicts for every rule.
"""

import pytest

from repro.api import AnalysisRequest, AnalysisSession, report_to_dict
from repro.core import BackDroid, BackDroidConfig
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app

RULE_SETS = (
    ("crypto-ecb",),
    ("ssl-verifier",),
    ("open-port",),
    ("sms-send",),
    ("crypto-ecb", "ssl-verifier"),
    ("crypto-ecb", "ssl-verifier", "open-port", "sms-send"),
)

BACKENDS = ("linear", "indexed")


def _normalized(report) -> dict:
    """The report's serialized form with timing noise zeroed out.

    Wall-clock fields can never be byte-identical between two runs;
    everything else must be.
    """
    payload = report_to_dict(report)
    payload["analysis_seconds"] = 0.0
    payload["backend_stats"] = dict(payload["backend_stats"])
    payload["backend_stats"]["index_build_seconds"] = 0.0
    for record in payload["records"]:
        record["duration_seconds"] = 0.0
    return payload


def _fresh_apk():
    # A fresh Apk per run: memoized per-disassembly caches (joined text,
    # token index) must not leak state between the two sides.
    return generate_app(benchmark_app_spec(5, scale=0.05)).apk


class TestShimParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("rules", RULE_SETS, ids=[",".join(r) for r in RULE_SETS])
    def test_shim_equals_one_shot_session(self, backend, rules):
        config = BackDroidConfig(sink_rules=rules, search_backend=backend)

        legacy = BackDroid(config).analyze(_fresh_apk())

        apk = _fresh_apk()
        session = AnalysisSession.from_config(apk, config)
        envelope = session.run(AnalysisRequest.from_config(config))

        assert _normalized(legacy) == _normalized(envelope.report)

    def test_shim_parity_with_hierarchy_fix_and_paper_apps(self, heyzap):
        config = BackDroidConfig(
            sink_rules=("ssl-verifier",),
            check_class_hierarchy_in_initial_search=True,
        )
        legacy = BackDroid(config).analyze(heyzap)
        envelope = AnalysisSession.from_config(heyzap, config).run(
            AnalysisRequest.from_config(config)
        )
        assert _normalized(legacy) == _normalized(envelope.report)

    def test_shim_parity_with_disabled_caches(self, lg_tv_plus):
        config = BackDroidConfig(
            sink_rules=("open-port",),
            enable_search_cache=False,
            enable_sink_cache=False,
        )
        legacy = BackDroid(config).analyze(lg_tv_plus)
        envelope = AnalysisSession.from_config(lg_tv_plus, config).run(
            AnalysisRequest.from_config(config)
        )
        assert _normalized(legacy) == _normalized(envelope.report)
        assert legacy.search_cache_lookups == 0


class TestBackendParity:
    @pytest.mark.parametrize("rules", RULE_SETS, ids=[",".join(r) for r in RULE_SETS])
    def test_backends_agree_on_every_rule(self, rules):
        apk = _fresh_apk()
        session = AnalysisSession(apk)
        linear = session.run(AnalysisRequest(rules=rules, backend="linear"))
        indexed = session.run(AnalysisRequest(rules=rules, backend="indexed"))

        left = _normalized(linear.report)
        right = _normalized(indexed.report)
        # Everything except the backend identity/stats must agree.
        for payload in (left, right):
            payload.pop("backend_stats")
            payload.pop("search_backend")
            # Cache rates differ: the second run shares the session's
            # warm command cache.
            payload.pop("search_cache_rate")
            payload.pop("search_cache_lookups")
            payload.pop("search_cache_evictions")
        assert left == right


class TestRequestConfigBridge:
    def test_round_trip_preserves_every_knob(self):
        config = BackDroidConfig(
            sink_rules=("open-port",),
            search_backend="indexed",
            max_frames=123,
            check_class_hierarchy_in_initial_search=True,
            enable_search_cache=False,
            enable_sink_cache=False,
            collect_ssg_dumps=True,
            store_dir="/tmp/s",
            store_mode="full",
            search_cache_max_entries=9,
        )
        request = AnalysisRequest.from_config(config)
        rebuilt = request.to_config(config)
        assert rebuilt == config

    def test_fingerprint_distinguishes_targets_and_budgets(self):
        base = AnalysisRequest()
        assert base.fingerprint() == AnalysisRequest().fingerprint()
        assert base.fingerprint() != AnalysisRequest(
            rules=("crypto-ecb",)
        ).fingerprint()
        assert base.fingerprint() != AnalysisRequest(
            max_frames=17
        ).fingerprint()
        assert base.fingerprint() != AnalysisRequest(
            backend="indexed"
        ).fingerprint()
