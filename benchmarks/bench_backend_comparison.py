"""Search-backend comparison — linear scan vs. prebuilt inverted index.

The command cache (Sec. IV-F) only hides *repeated* queries; every
first-time query still pays the linear backend's O(text) scan.  This
benchmark replays a realistic first-query workload (the initial sink
searches plus sampled invocation/field/class-mention queries) over the
Fig. 7 benchmark corpus with cold caches under both backends and
reports:

* aggregate first-query search time, linear vs. indexed;
* the one-off index build time (amortised over every later query);
* the speedup, which must hold >= 3x for the indexed backend.

Knobs are shared with the corpus benches: ``REPRO_BENCH_APPS`` /
``REPRO_BENCH_SCALE``, plus ``REPRO_BENCH_BACKEND_APPS`` to cap the app
count for quick runs (default: min(BENCH_APPS, 36)).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import BENCH_APPS, BENCH_SCALE, emit_table, render_table
from repro.android.framework import sinks_for_rules
from repro.dex.types import FieldSignature
from repro.search.backends.indexed import TokenIndex
from repro.search.index import BytecodeSearcher
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app

BACKEND_APPS = int(
    os.environ.get("REPRO_BENCH_BACKEND_APPS", str(min(BENCH_APPS, 36)))
)

#: Sampled app-local queries per app (beyond the sink searches).
_SAMPLE_CLASSES = 24
_METHODS_PER_CLASS = 2


def _query_workload(apk):
    """A deterministic first-query mix for one app."""
    invocations = [s.signature for s in sinks_for_rules(("crypto-ecb", "ssl-verifier"))]
    mentions: list[str] = []
    fields: list[FieldSignature] = []
    classes = sorted(apk.classes.application_classes(), key=lambda c: c.name)
    for cls in classes[:_SAMPLE_CLASSES]:
        mentions.append(cls.name)
        for method in cls.methods[:_METHODS_PER_CLASS]:
            invocations.append(method.signature())
        for dex_field in cls.fields[:1]:
            fields.append(
                FieldSignature(cls.name, dex_field.name, dex_field.field_type)
            )
    return invocations, fields, mentions


def _time_queries(apk, backend: str) -> float:
    """Cold-cache wall time for the whole workload under one backend."""
    invocations, fields, mentions = _query_workload(apk)
    searcher = BytecodeSearcher(apk.disassembly, backend=backend)
    started = time.perf_counter()
    for signature in invocations:
        searcher.find_invocations(signature)
    for fieldsig in fields:
        searcher.find_field_accesses(fieldsig)
    for name in mentions:
        searcher.classes_mentioning(name)
    return time.perf_counter() - started


def run_comparison():
    rows = []
    totals = {"linear": 0.0, "indexed": 0.0, "build": 0.0}
    for index in range(BACKEND_APPS):
        apk = generate_app(benchmark_app_spec(index, scale=BENCH_SCALE)).apk
        linear_s = _time_queries(apk, "linear")
        build_started = time.perf_counter()
        TokenIndex.for_disassembly(apk.disassembly)
        build_s = time.perf_counter() - build_started
        indexed_s = _time_queries(apk, "indexed")
        totals["linear"] += linear_s
        totals["indexed"] += indexed_s
        totals["build"] += build_s
        rows.append(
            [
                apk.package,
                str(len(apk.disassembly.lines)),
                f"{linear_s * 1e3:.1f}",
                f"{indexed_s * 1e3:.1f}",
                f"{build_s * 1e3:.1f}",
                f"{linear_s / indexed_s:.1f}x" if indexed_s else "-",
            ]
        )
    return rows, totals


def test_backend_comparison(benchmark):
    rows, totals = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    speedup = totals["linear"] / totals["indexed"] if totals["indexed"] else 0.0
    with_build = totals["indexed"] + totals["build"]
    amortised = totals["linear"] / with_build if with_build else 0.0
    summary = (
        f"\naggregate first-query time: linear {totals['linear']:.3f}s, "
        f"indexed {totals['indexed']:.3f}s ({speedup:.1f}x), "
        f"index build {totals['build']:.3f}s "
        f"(incl. build: {amortised:.1f}x)"
    )
    emit_table(
        "backend_comparison",
        render_table(
            f"Search backends over {BACKEND_APPS} Fig. 7 apps "
            f"(scale {BENCH_SCALE})",
            ["App", "Lines", "Linear(ms)", "Indexed(ms)", "Build(ms)", "Speedup"],
            rows,
        )
        + summary,
    )

    assert speedup >= 3.0, (
        f"indexed backend must be >= 3x faster on aggregate first-query "
        f"time, got {speedup:.2f}x"
    )
