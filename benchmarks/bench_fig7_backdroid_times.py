"""Fig. 7 — the distribution of BackDroid analysis time.

Paper distribution (no timeout at all; 141 analyzed apps):

    0m-1m: 42   1m-5m: 47   5m-10m: 19   10m-20m: 18
    20m-30m: 12   30m-100m: 3

Shape to reproduce: roughly a third of apps analyzed within one
paper-minute, ~77% within ten, only a handful beyond thirty, and — the
headline — **zero timeouts**, because BackDroid's cost tracks sink
count, not app size.
"""

from benchmarks.conftest import (
    BENCH_TIMEOUT,
    bucket_histogram,
    emit_table,
    render_table,
    run_corpus,
    to_paper_minutes,
)

_PAPER_BUCKETS = {
    "0m-1m": 42,
    "1m-5m": 47,
    "5m-10m": 19,
    "10m-20m": 18,
    "20m-30m": 12,
    "30m-100m": 3,
}

_EDGES = [
    ("0m-1m", 0.0, 1.0),
    ("1m-5m", 1.0, 5.0),
    ("5m-10m", 5.0, 10.0),
    ("10m-20m", 10.0, 20.0),
    ("20m-30m", 20.0, 30.0),
    ("30m-100m", 30.0, 100.0),
    ("100m+", 100.0, float("inf")),
]


def test_fig7_backdroid_time_distribution(benchmark):
    rows = benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    minutes = [to_paper_minutes(r.bd_seconds) for r in rows]
    histogram = bucket_histogram(minutes, _EDGES)
    table_rows = [
        [label, str(count), str(_PAPER_BUCKETS.get(label, "-"))]
        for label, count in histogram.items()
        if count or label in _PAPER_BUCKETS
    ]
    within_1 = sum(1 for m in minutes if m < 1.0) / len(minutes)
    within_10 = sum(1 for m in minutes if m < 10.0) / len(minutes)
    timeouts = sum(1 for r in rows if r.bd_seconds > BENCH_TIMEOUT)
    summary = (
        f"\n<1 paper-min: {within_1:.0%} (paper: 30%)   "
        f"<10 paper-min: {within_10:.0%} (paper: 77%)   "
        f"timeouts: {timeouts} (paper: 0)"
    )
    emit_table(
        "fig7_backdroid_times",
        render_table(
            "Fig. 7: BackDroid analysis-time distribution",
            ["Bucket", "#Apps", "#Apps(paper)"],
            table_rows,
        )
        + summary,
    )

    # Shape assertions.  The paper's fastest bucket (0-1 min) is only
    # partially reproducible: our preprocessing floor (a pure-Python
    # disassembler standing in for C dexdump) compresses the low end —
    # see EXPERIMENTS.md.  The headline shapes hold: no timeouts and the
    # bulk of the corpus inside 10 paper-minutes.
    assert timeouts == 0, "BackDroid must have no timed-out failure"
    assert within_10 >= 0.6, "the large majority finishes within 10 paper-min"
    within_5 = sum(1 for m in minutes if m < 5.0) / len(minutes)
    assert within_5 >= 0.3, "a sizeable share finishes within 5 paper-min"
