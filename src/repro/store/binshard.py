"""The v3 binary shard container: struct-packed sections over mmap.

A v2 shard is one JSON document; restoring it costs a full parse even
when the session only ever queries a handful of library groups.  The v3
container packs the same logical content — relative token records, the
vocabulary, posting lists, string-token ids and the containment map —
into independently decodable **sections** behind a fixed header and an
offset table, so a reader can :func:`mmap.mmap` the file and decode
*only the byte ranges a query actually touches*:

* the header + section table (96-odd bytes) identify the shard and
  locate every section;
* the **filter** section (a sorted ``u32`` array of CRC32s over every
  vocabulary text and every containment key) answers "could this group
  possibly contain the needle?" with a zero-copy binary search;
* the **vocabulary blob** answers substring-shaped candidacy with an
  ``mmap.find`` over the raw bytes — no decoding at all;
* only a *candidate* group pays for decoding its mini-index sections.

Every section table entry carries a CRC32 of its section's bytes,
verified on first use — corruption is caught exactly when (and only
when) the damaged bytes would have been trusted, and surfaces as
:class:`ShardCorrupt` so the store can re-fold the group from the live
disassembly (the self-heal path).

Layout (all integers little-endian, no alignment padding)::

    header   <4sHHIIIIII32s>   magic "BDSH", container version,
                               section count, line_count, token_count,
                               vocab_count, string_id_count,
                               containment_count, posting_entries,
                               raw sha256 (the shard's content address)
    table    <HHIQQ> * n       section id, reserved, crc32, offset, length
    sections                   see the per-section codecs below

Section encodings:

* ``VOCAB``       ``u32 lens[vocab_count]`` + concatenated UTF-8 blob
* ``POSTINGS``    ``u32 lens[vocab_count]`` + ``u32 lines[entries]``
* ``STRING_IDS``  ``u32 ids[string_id_count]``
* ``CONTAIN``     ``u32 key_lens[n]`` + ``u32 val_lens[n]`` + keys blob
                  + ``u32 values[sum(val_lens)]``
* ``TOKENS``      ``u8 kind_count`` + (``u8 len`` + bytes) per kind +
                  ``u32 rel_lines[t]`` + ``u8 kind_ids[t]`` +
                  ``u32 text_tids[t]`` (texts dedup through the vocab)
* ``FILTER``      sorted unique ``u32 crc32`` of every vocab text and
                  every containment key

The container version is independent of the *content* addresses (see
:data:`repro.store.sharding.KEY_VERSION`): a JSON shard and its binary
migration carry the same sha and satisfy the same manifest reference.
"""

from __future__ import annotations

import mmap
import struct
import zlib
from pathlib import Path
from typing import Optional

#: The container version this module writes (the store's v3).
BIN_FORMAT_VERSION = 3

MAGIC = b"BDSH"

_HEADER = struct.Struct("<4sHHIIIIII32s")
_SECTION_ENTRY = struct.Struct("<HHIQQ")

SEC_VOCAB = 1
SEC_POSTINGS = 2
SEC_STRING_IDS = 3
SEC_CONTAIN = 4
SEC_TOKENS = 5
SEC_FILTER = 6

#: Sections whose decode yields the prefolded mini-index (what a lazy
#: group materialization pays for).
MINI_INDEX_SECTIONS = (SEC_VOCAB, SEC_POSTINGS, SEC_STRING_IDS, SEC_CONTAIN)


class ShardCorrupt(Exception):
    """The shard's bytes cannot be trusted (bad magic, bounds, CRC)."""


class ShardStale(ShardCorrupt):
    """A well-formed shard written by a different container version."""


class BinHeader:
    """One decoded header + section table."""

    __slots__ = (
        "line_count", "token_count", "vocab_count", "string_id_count",
        "containment_count", "posting_entries", "sha", "sections",
    )

    def __init__(self, line_count, token_count, vocab_count,
                 string_id_count, containment_count, posting_entries,
                 sha, sections):
        self.line_count = line_count
        self.token_count = token_count
        self.vocab_count = vocab_count
        self.string_id_count = string_id_count
        self.containment_count = containment_count
        self.posting_entries = posting_entries
        #: Hex content address the file claims to hold.
        self.sha = sha
        #: section id -> (crc32, offset, length)
        self.sections = sections

    @property
    def table_bytes(self) -> int:
        """Header + section table size (what any read must decode)."""
        return _HEADER.size + _SECTION_ENTRY.size * len(self.sections)


def read_header(buf) -> BinHeader:
    """Decode and bounds-check the header + section table.

    Raises :class:`ShardCorrupt` on any malformed structure and
    :class:`ShardStale` on a foreign container version.
    """
    size = len(buf)
    if size < _HEADER.size:
        raise ShardCorrupt("file shorter than the shard header")
    (magic, version, section_count, line_count, token_count, vocab_count,
     string_id_count, containment_count, posting_entries,
     sha_raw) = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ShardCorrupt("bad shard magic")
    if version != BIN_FORMAT_VERSION:
        raise ShardStale(f"container version {version}")
    table_end = _HEADER.size + _SECTION_ENTRY.size * section_count
    if size < table_end:
        raise ShardCorrupt("file shorter than its section table")
    sections: dict[int, tuple[int, int, int]] = {}
    for index in range(section_count):
        sec_id, _reserved, crc, offset, length = _SECTION_ENTRY.unpack_from(
            buf, _HEADER.size + _SECTION_ENTRY.size * index
        )
        if offset < table_end or offset + length > size:
            raise ShardCorrupt(f"section {sec_id} out of bounds")
        sections[sec_id] = (crc, offset, length)
    for required in (*MINI_INDEX_SECTIONS, SEC_TOKENS, SEC_FILTER):
        if required not in sections:
            raise ShardCorrupt(f"section {required} missing")
    return BinHeader(line_count, token_count, vocab_count, string_id_count,
                     containment_count, posting_entries, sha_raw.hex(),
                     sections)


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_shard(payload: dict, key: str) -> bytes:
    """Pack one shard payload (the v2 JSON shape) into the v3 container.

    ``key`` is the shard's hex content address; it is embedded raw in
    the header so a reader can reject a renamed/swapped file without
    rehashing the content.
    """
    vocab = [str(text) for text in payload["vocab"]]
    postings = payload["postings"]
    string_ids = [int(tid) for tid in payload["string_ids"]]
    containing = payload["containing"]
    tokens = payload["tokens"]

    vocab_blobs = [text.encode("utf-8", "surrogatepass") for text in vocab]
    sec_vocab = b"".join((
        struct.pack(f"<{len(vocab_blobs)}I", *map(len, vocab_blobs)),
        *vocab_blobs,
    ))

    flat_lines: list[int] = []
    posting_lens: list[int] = []
    for posting in postings:
        posting_lens.append(len(posting))
        flat_lines.extend(int(n) for n in posting)
    sec_postings = (
        struct.pack(f"<{len(posting_lens)}I", *posting_lens)
        + struct.pack(f"<{len(flat_lines)}I", *flat_lines)
    )

    sec_string_ids = struct.pack(f"<{len(string_ids)}I", *string_ids)

    keys = [str(sub).encode("utf-8", "surrogatepass") for sub in containing]
    values: list[int] = []
    val_lens: list[int] = []
    for tids in containing.values():
        val_lens.append(len(tids))
        values.extend(int(t) for t in tids)
    sec_contain = b"".join((
        struct.pack(f"<{len(keys)}I", *map(len, keys)),
        struct.pack(f"<{len(val_lens)}I", *val_lens),
        *keys,
        struct.pack(f"<{len(values)}I", *values),
    ))

    exact = {text: tid for tid, text in enumerate(vocab)}
    kinds: list[str] = []
    kind_ids: dict[str, int] = {}
    rel_lines: list[int] = []
    token_kinds: list[int] = []
    token_tids: list[int] = []
    for rel, kind, text in tokens:
        kind = str(kind)
        kid = kind_ids.get(kind)
        if kid is None:
            kid = len(kinds)
            kind_ids[kind] = kid
            kinds.append(kind)
        rel_lines.append(int(rel))
        token_kinds.append(kid)
        # Every token text is a vocabulary entry by construction (the
        # vocabulary *is* the set of token texts), so records store a
        # u32 id instead of repeating the text.
        token_tids.append(exact[str(text)])
    if len(kinds) > 255:
        raise ValueError("more than 255 token kinds")  # pragma: no cover
    kind_table = bytearray([len(kinds)])
    for kind in kinds:
        blob = kind.encode("utf-8", "surrogatepass")
        if len(blob) > 255:
            raise ValueError("token kind name too long")  # pragma: no cover
        kind_table.append(len(blob))
        kind_table.extend(blob)
    count = len(tokens)
    sec_tokens = b"".join((
        bytes(kind_table),
        struct.pack(f"<{count}I", *rel_lines),
        bytes(token_kinds),
        struct.pack(f"<{count}I", *token_tids),
    ))

    crcs = sorted({
        zlib.crc32(blob) for blob in vocab_blobs
    } | {
        zlib.crc32(blob) for blob in keys
    })
    sec_filter = struct.pack(f"<{len(crcs)}I", *crcs)

    ordered = (
        (SEC_VOCAB, sec_vocab),
        (SEC_POSTINGS, sec_postings),
        (SEC_STRING_IDS, sec_string_ids),
        (SEC_CONTAIN, sec_contain),
        (SEC_TOKENS, sec_tokens),
        (SEC_FILTER, sec_filter),
    )
    table_end = _HEADER.size + _SECTION_ENTRY.size * len(ordered)
    header = _HEADER.pack(
        MAGIC, BIN_FORMAT_VERSION, len(ordered),
        int(payload["line_count"]), count, len(vocab), len(string_ids),
        len(keys), len(flat_lines), bytes.fromhex(key),
    )
    table = bytearray()
    offset = table_end
    for sec_id, blob in ordered:
        table.extend(_SECTION_ENTRY.pack(
            sec_id, 0, zlib.crc32(blob), offset, len(blob)
        ))
        offset += len(blob)
    return b"".join((header, bytes(table), *(blob for _, blob in ordered)))


# ----------------------------------------------------------------------
# Section decoders (shared by the eager and lazy readers)
# ----------------------------------------------------------------------
def _checked(buf, header: BinHeader, sec_id: int) -> tuple[int, int]:
    """The section's (offset, length), CRC-verified."""
    crc, offset, length = header.sections[sec_id]
    if zlib.crc32(buf[offset:offset + length]) != crc:
        raise ShardCorrupt(f"section {sec_id} failed its CRC")
    return offset, length


def _decode_vocab(buf, offset: int, length: int, count: int) -> list[str]:
    if 4 * count > length:
        raise ShardCorrupt("vocab lengths overrun their section")
    lens = struct.unpack_from(f"<{count}I", buf, offset)
    cursor = offset + 4 * count
    if 4 * count + sum(lens) > length:
        raise ShardCorrupt("vocab blob overruns its section")
    vocab: list[str] = []
    try:
        for text_len in lens:
            vocab.append(
                bytes(buf[cursor:cursor + text_len]).decode(
                    "utf-8", "surrogatepass"
                )
            )
            cursor += text_len
    except UnicodeDecodeError as exc:
        raise ShardCorrupt(f"vocab text undecodable: {exc}") from exc
    return vocab


def _decode_postings(
    buf, offset: int, length: int, count: int, entries: int
) -> list[list[int]]:
    if 4 * (count + entries) > length:
        raise ShardCorrupt("posting lists overrun their section")
    lens = struct.unpack_from(f"<{count}I", buf, offset)
    if sum(lens) != entries:
        raise ShardCorrupt("posting lists disagree with the header")
    flat = struct.unpack_from(f"<{entries}I", buf, offset + 4 * count)
    postings: list[list[int]] = []
    cursor = 0
    for posting_len in lens:
        postings.append(list(flat[cursor:cursor + posting_len]))
        cursor += posting_len
    return postings


def _decode_string_ids(buf, offset: int, length: int, count: int) -> list[int]:
    if 4 * count > length:
        raise ShardCorrupt("string ids overrun their section")
    return list(struct.unpack_from(f"<{count}I", buf, offset))


def _decode_containing(
    buf, offset: int, length: int, count: int
) -> dict[str, list[int]]:
    if 8 * count > length:
        raise ShardCorrupt("containment tables overrun their section")
    key_lens = struct.unpack_from(f"<{count}I", buf, offset)
    val_lens = struct.unpack_from(f"<{count}I", buf, offset + 4 * count)
    keys_start = offset + 8 * count
    values_start = keys_start + sum(key_lens)
    total_values = sum(val_lens)
    if values_start + 4 * total_values - offset > length:
        raise ShardCorrupt("containment map overruns its section")
    flat = struct.unpack_from(f"<{total_values}I", buf, values_start)
    containing: dict[str, list[int]] = {}
    cursor = keys_start
    value_cursor = 0
    try:
        for key_len, val_len in zip(key_lens, val_lens):
            sub = bytes(buf[cursor:cursor + key_len]).decode(
                "utf-8", "surrogatepass"
            )
            cursor += key_len
            containing[sub] = list(flat[value_cursor:value_cursor + val_len])
            value_cursor += val_len
    except UnicodeDecodeError as exc:
        raise ShardCorrupt(f"containment key undecodable: {exc}") from exc
    return containing


def _decode_tokens(
    buf, offset: int, length: int, count: int, vocab: list[str]
) -> list[list]:
    end = offset + length
    if offset >= end:
        raise ShardCorrupt("token section empty")
    kind_count = buf[offset]
    cursor = offset + 1
    kinds: list[str] = []
    try:
        for _ in range(kind_count):
            kind_len = buf[cursor]
            cursor += 1
            kinds.append(
                bytes(buf[cursor:cursor + kind_len]).decode(
                    "utf-8", "surrogatepass"
                )
            )
            cursor += kind_len
    except (IndexError, UnicodeDecodeError) as exc:
        raise ShardCorrupt(f"token kind table malformed: {exc}") from exc
    if cursor + 9 * count > end:
        raise ShardCorrupt("token records overrun their section")
    rel_lines = struct.unpack_from(f"<{count}I", buf, cursor)
    cursor += 4 * count
    kind_ids = bytes(buf[cursor:cursor + count])
    cursor += count
    text_tids = struct.unpack_from(f"<{count}I", buf, cursor)
    try:
        return [
            [rel, kinds[kid], vocab[tid]]
            for rel, kid, tid in zip(rel_lines, kind_ids, text_tids)
        ]
    except IndexError as exc:
        raise ShardCorrupt("token record references out of range") from exc


def decode_mini_index(buf, header: BinHeader) -> dict:
    """The prefolded mini-index sections as the v2 payload keys."""
    off, length = _checked(buf, header, SEC_VOCAB)
    vocab = _decode_vocab(buf, off, length, header.vocab_count)
    off, length = _checked(buf, header, SEC_POSTINGS)
    postings = _decode_postings(
        buf, off, length, header.vocab_count, header.posting_entries
    )
    off, length = _checked(buf, header, SEC_STRING_IDS)
    string_ids = _decode_string_ids(buf, off, length, header.string_id_count)
    off, length = _checked(buf, header, SEC_CONTAIN)
    containing = _decode_containing(buf, off, length, header.containment_count)
    return {
        "vocab": vocab,
        "postings": postings,
        "string_ids": string_ids,
        "containing": containing,
    }


def decode_shard(buf, sha: Optional[str] = None) -> dict:
    """Fully decode one binary shard into the v2 JSON payload shape.

    With ``sha`` given, the header's embedded content address must
    match (the binary analogue of the JSON ``key`` field check).
    Raises :class:`ShardCorrupt`/:class:`ShardStale` as appropriate.
    """
    header = read_header(buf)
    if sha is not None and header.sha != sha:
        raise ShardCorrupt("embedded content address mismatch")
    payload = decode_mini_index(buf, header)
    off, length = _checked(buf, header, SEC_TOKENS)
    payload["tokens"] = _decode_tokens(
        buf, off, length, header.token_count, payload["vocab"]
    )
    payload["version"] = BIN_FORMAT_VERSION
    payload["key"] = header.sha
    payload["line_count"] = header.line_count
    return payload


# ----------------------------------------------------------------------
# The lazy view
# ----------------------------------------------------------------------
class LazyShardView:
    """One mmapped shard file, decoded only where touched.

    The file is opened and mapped on first use; candidacy probes
    (:meth:`may_contain`, :meth:`blob_contains`) read the filter and
    vocabulary-blob byte ranges without building any Python structures,
    and :meth:`mini_index` decodes exactly the four mini-index sections.
    ``bytes_mapped``/``bytes_decoded`` account for what was mapped and
    what was actually decoded — the observables the lazy-restore tests
    and the sustained-traffic benchmark assert on.

    Not thread-safe on its own; the owning
    :class:`~repro.store.lazy.LazyTokenIndex` serializes access.
    """

    def __init__(self, path, sha: str) -> None:
        self.path = Path(path)
        self.sha = sha
        self._file = None
        self._mm: Optional[mmap.mmap] = None
        self._header: Optional[BinHeader] = None
        self._verified: set[int] = set()
        self.bytes_mapped = 0
        self.bytes_decoded = 0

    # ------------------------------------------------------------------
    def _ensure(self) -> BinHeader:
        if self._header is not None:
            return self._header
        try:
            handle = open(self.path, "rb")
        except OSError as exc:
            raise ShardCorrupt(f"shard unreadable: {exc}") from exc
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            handle.close()
            raise ShardCorrupt(f"shard unmappable: {exc}") from exc
        self._file = handle
        self._mm = mapped
        self.bytes_mapped += len(mapped)
        try:
            header = read_header(mapped)
        except ShardCorrupt:
            self.reset()
            raise
        if header.sha != self.sha:
            self.reset()
            raise ShardCorrupt("embedded content address mismatch")
        self._header = header
        self.bytes_decoded += header.table_bytes
        return header

    def _section(self, sec_id: int) -> tuple[int, int]:
        """The section's (offset, length), CRC-verified once per map."""
        header = self._ensure()
        if sec_id in self._verified:
            _, offset, length = header.sections[sec_id]
            return offset, length
        offset, length = _checked(self._mm, header, sec_id)
        self._verified.add(sec_id)
        return offset, length

    # ------------------------------------------------------------------
    @property
    def line_count(self) -> int:
        return self._ensure().line_count

    @property
    def posting_entries(self) -> int:
        return self._ensure().posting_entries

    @property
    def vocab_count(self) -> int:
        return self._ensure().vocab_count

    # ------------------------------------------------------------------
    def may_contain(self, crc: int) -> bool:
        """Whether *crc* is in the shard's filter (zero-copy bisect).

        A hit means the needle *may* be a vocabulary text or containment
        key of this group (CRC collisions give false positives, never
        false negatives); a miss proves the group cannot answer an
        exact or containment lookup for it.
        """
        offset, length = self._section(SEC_FILTER)
        mapped = self._mm
        lo, hi = 0, length // 4
        while lo < hi:
            mid = (lo + hi) // 2
            value = struct.unpack_from("<I", mapped, offset + 4 * mid)[0]
            if value < crc:
                lo = mid + 1
            elif value > crc:
                hi = mid
            else:
                return True
        return False

    def blob_contains(self, needle: bytes) -> bool:
        """Whether the raw vocabulary blob contains *needle*.

        A zero-copy ``mmap.find`` over the concatenated text bytes:
        every substring occurrence inside any single vocabulary text is
        found (texts are contiguous), and a match spanning two texts is
        a harmless false positive — the materialized group answers
        exactly.
        """
        offset, length = self._section(SEC_VOCAB)
        blob_start = offset + 4 * self._ensure().vocab_count
        return self._mm.find(needle, blob_start, offset + length) >= 0

    # ------------------------------------------------------------------
    def mini_index(self) -> dict:
        """Decode the four mini-index sections (one group's fault-in)."""
        header = self._ensure()
        payload = decode_mini_index(self._mm, header)
        self.bytes_decoded += sum(
            header.sections[sec_id][2] for sec_id in MINI_INDEX_SECTIONS
        )
        return payload

    def payload(self) -> dict:
        """Fully decode the shard (token records included)."""
        header = self._ensure()
        # decode_shard re-verifies CRCs via _checked; fine — it is the
        # cold full-restore path, not the per-query one.
        payload = decode_shard(self._mm, self.sha)
        self.bytes_decoded += sum(
            length for _, _, length in header.sections.values()
        )
        return payload

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop the mapping (e.g. after the file was healed in place)."""
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None
        self._header = None
        self._verified.clear()

    close = reset
