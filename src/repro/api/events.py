"""Streaming progress events for long analyses.

A session run reports sink-by-sink progress instead of going dark until
the final report: the initial search yields one :class:`SinkDiscovered`
per located sink call, each analyzed sink yields a :class:`SinkAnalyzed`
with its finished record, and the terminal :class:`AnalysisFinished`
carries the complete :class:`~repro.api.envelope.ReportEnvelope`.

Consume them with ``for event in session.stream(request)`` or pass an
``on_event`` callback to ``session.run``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import SinkRecord
from repro.core.slicer import SinkCallSite


@dataclass(frozen=True)
class AnalysisEvent:
    """Base class of every streamed event."""


@dataclass(frozen=True)
class SinkDiscovered(AnalysisEvent):
    """The initial search located one target sink call site."""

    site: SinkCallSite
    index: int
    total: int


@dataclass(frozen=True)
class SinkAnalyzed(AnalysisEvent):
    """One sink finished slicing + forward analysis (or was cached)."""

    record: SinkRecord
    index: int
    total: int


@dataclass(frozen=True)
class AnalysisFinished(AnalysisEvent):
    """The run completed; ``envelope`` holds the full result."""

    envelope: "ReportEnvelope"  # noqa: F821 - import cycle kept lazy


__all__ = [
    "AnalysisEvent",
    "AnalysisFinished",
    "SinkAnalyzed",
    "SinkDiscovered",
]
