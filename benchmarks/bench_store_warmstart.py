"""Warm-start artifact store — cold build vs. restored-artifact batch runs.

Corpus re-analysis is the common case at market scale (new rule
versions, re-runs, incremental crawls), and the artifact store exists to
amortize per-app preprocessing across those runs.  This benchmark runs
the same generated corpus through ``run_batch`` twice against one store
and reports, per app and in aggregate:

* the cold run — index built from the token stream, full analysis,
  artifacts published;
* a warm ``"index"``-mode run — posting lists restored from disk, the
  analysis itself re-executed;
* a warm ``"full"``-mode run — the finished outcome restored, skipping
  re-analysis entirely.

The acceptance bar: the full-mode warm run must be at least 2x faster
than the cold run on aggregate index-build + analysis time (generation
and disassembly rendering are identical on both sides and excluded).

Knobs: ``REPRO_BENCH_STORE_APPS`` caps the corpus (default
min(BENCH_APPS, 24)); ``REPRO_BENCH_SCALE`` scales app bulk as usual.
"""

from __future__ import annotations

import os
import tempfile

from benchmarks.conftest import BENCH_APPS, BENCH_SCALE, emit_table, render_table
from repro.core import BackDroidConfig, run_batch
from repro.workload.corpus import benchmark_app_spec

STORE_APPS = int(
    os.environ.get("REPRO_BENCH_STORE_APPS", str(min(BENCH_APPS, 24)))
)


def _config(store_dir: str, mode: str) -> BackDroidConfig:
    return BackDroidConfig(
        search_backend="indexed", store_dir=store_dir, store_mode=mode
    )


def run_warmstart(store_dir: str):
    specs = [benchmark_app_spec(i, scale=BENCH_SCALE) for i in range(STORE_APPS)]
    cold = run_batch(specs, _config(store_dir, "full"), executor="serial")
    warm_index = run_batch(specs, _config(store_dir, "index"), executor="serial")
    warm_full = run_batch(specs, _config(store_dir, "full"), executor="serial")
    return cold, warm_index, warm_full


def test_store_warmstart(benchmark):
    with tempfile.TemporaryDirectory(prefix="bdstore-bench-") as store_dir:
        cold, warm_index, warm_full = benchmark.pedantic(
            run_warmstart, args=(store_dir,), rounds=1, iterations=1
        )

    assert not cold.failures and not warm_index.failures and not warm_full.failures
    assert cold.store_hits == 0
    assert all(o.index_restored for o in warm_index.analyzed)
    assert warm_index.store_hits == 0  # index mode never reuses outcomes
    assert warm_full.store_hits == STORE_APPS
    assert [o.findings for o in warm_full.outcomes] == \
        [o.findings for o in cold.outcomes]

    rows = []
    for c, wi, wf in zip(cold.outcomes, warm_index.outcomes, warm_full.outcomes):
        rows.append(
            [
                c.package,
                f"{c.seconds * 1e3:.1f}",
                f"{wi.seconds * 1e3:.1f}",
                f"{wf.seconds * 1e3:.1f}",
                f"{c.seconds / wf.seconds:.0f}x" if wf.seconds else "-",
            ]
        )

    cold_s = cold.total_analysis_seconds
    index_s = warm_index.total_analysis_seconds
    full_s = warm_full.total_analysis_seconds
    speedup_full = cold_s / full_s if full_s else float("inf")
    speedup_index = cold_s / index_s if index_s else float("inf")
    summary = (
        f"\naggregate index-build + analysis time: cold {cold_s:.3f}s, "
        f"warm/index {index_s:.3f}s ({speedup_index:.2f}x), "
        f"warm/full {full_s:.3f}s ({speedup_full:.1f}x); "
        f"{warm_index.index_restores} restored index(es), "
        f"{warm_full.store_hits} outcome hit(s)"
    )
    emit_table(
        "store_warmstart",
        render_table(
            f"Warm-start store over {STORE_APPS} Fig. 7 apps "
            f"(scale {BENCH_SCALE})",
            ["App", "Cold(ms)", "Warm-index(ms)", "Warm-full(ms)", "Speedup"],
            rows,
        )
        + summary,
    )

    assert speedup_full >= 2.0, (
        f"a full-mode warm batch run must be >= 2x faster than the cold "
        f"run on aggregate index-build + analysis time, got "
        f"{speedup_full:.2f}x"
    )
    assert speedup_index >= 2.0, (
        f"an index-mode warm batch run (restore the posting lists, "
        f"re-run the analysis) must be >= 2x faster than the cold run, "
        f"got {speedup_index:.2f}x"
    )
