"""Fig. 1 — FlowDroid's call-graph generation time for 144 modern apps.

Paper distribution (timeout = 5 hours = 300 paper-minutes):

    1m-5m: 31   5m-10m: 44   10m-20m: 20   20m-30m: 10
    30m-100m: 5   Timeout: 34  (24% timed out; median ~9.76 min)

Shape to reproduce: a substantial timeout fraction (~quarter of the
apps), a median around ~10 paper-minutes, and a CG-generation median
several times slower than BackDroid's *complete* analysis (the paper
reports 4.58x).
"""

import statistics

from benchmarks.conftest import (
    bucket_histogram,
    emit_table,
    render_table,
    run_corpus,
    to_paper_minutes,
)

_PAPER_BUCKETS = {
    "1m-5m": 31,
    "5m-10m": 44,
    "10m-20m": 20,
    "20m-30m": 10,
    "30m-100m": 5,
    "Timeout": 34,
}

_EDGES = [
    ("0m-1m", 0.0, 1.0),
    ("1m-5m", 1.0, 5.0),
    ("5m-10m", 5.0, 10.0),
    ("10m-20m", 10.0, 20.0),
    ("20m-30m", 20.0, 30.0),
    ("30m-100m", 30.0, 100.0),
    ("100m-300m", 100.0, 300.0),
]


def test_fig1_flowdroid_callgraph_times(benchmark):
    rows = benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    finished = [r for r in rows if not r.fd_timed_out]
    timed_out = [r for r in rows if r.fd_timed_out]
    minutes = [to_paper_minutes(r.fd_seconds) for r in finished]
    histogram = bucket_histogram(minutes, _EDGES)
    histogram["Timeout"] = len(timed_out)

    table_rows = [
        [label, str(count), str(_PAPER_BUCKETS.get(label, "-"))]
        for label, count in histogram.items()
        if count or label in _PAPER_BUCKETS
    ]
    median_min = statistics.median(minutes) if minutes else float("nan")
    bd_median_min = statistics.median(
        to_paper_minutes(r.bd_seconds) for r in rows
    )
    summary = (
        f"\nFlowDroid CG generation: median {median_min:.2f} paper-min "
        f"(paper: 9.76), timeouts {len(timed_out)}/{len(rows)} "
        f"({len(timed_out) / len(rows):.0%}, paper: 24%)\n"
        f"CG-only vs BackDroid complete analysis: "
        f"{median_min / bd_median_min:.2f}x slower (paper: 4.58x)"
    )
    emit_table(
        "fig1_flowdroid_cg",
        render_table(
            "Fig. 1: FlowDroid call-graph generation time (144 modern apps)",
            ["Bucket", "#Apps", "#Apps(paper)"],
            table_rows,
        )
        + summary,
    )

    # Shape assertions.
    assert timed_out, "some apps must exceed the CG timeout"
    assert 0.05 <= len(timed_out) / len(rows) <= 0.5, "timeout share near 24%"
    assert median_min > bd_median_min, "CG-only slower than BackDroid's analysis"
