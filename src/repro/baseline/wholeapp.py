"""The Amandroid-style whole-app analyzer.

The comparator of Sec. VI: build the whole-app call graph from all entry
points, run whole-app forward constant propagation over *all* reachable
code, then look for sink API calls and judge their parameters.  Its cost
is proportional to the whole app; its blind spots are the configured
liblist, the incomplete implicit-flow maps, and its entry-point model —
exactly the Sec. VI-C delta sources.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.android.apk import Apk
from repro.android.framework import SinkSpec, sinks_for_rules
from repro.baseline.callgraph import CallGraph, build_whole_app_callgraph
from repro.baseline.config import (
    AmandroidConfig,
    AnalysisError,
    AnalysisTimeout,
    Deadline,
)
from repro.core.api_models import ApiCall, framework_constant, lookup_model
from repro.core.detectors import DETECTORS, Finding
from repro.core.values import (
    ArrayObjFact,
    ConstFact,
    Fact,
    NewObjFact,
    UnknownFact,
    merge_facts,
)
from repro.dex.hierarchy import DexMethod
from repro.dex.instructions import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    ClassConstant,
    DoubleConstant,
    IdentityStmt,
    InstanceFieldRef,
    IntConstant,
    InvokeExpr,
    Local,
    LongConstant,
    NewArrayExpr,
    NewExpr,
    NullConstant,
    ParameterRef,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    StringConstant,
    ThisRef,
    Value,
)
from repro.dex.types import FieldSignature, MethodSignature


@dataclass
class BaselineReport:
    """The outcome of one whole-app analysis run."""

    package: str
    findings: list[Finding] = field(default_factory=list)
    analysis_seconds: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    reachable_methods: int = 0
    cg_edges: int = 0
    sink_calls_seen: int = 0
    skipped_library_classes: int = 0
    dropped_implicit_sites: int = 0

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None

    @property
    def vulnerable(self) -> bool:
        return bool(self.findings)

    def findings_by_rule(self, rule: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule]


class _WholeAppConstants:
    """Context-insensitive whole-app constant propagation.

    A fixpoint over *every* reachable method: parameter facts merge over
    all call sites, field facts live in one global map.  This is the
    expensive part of whole-app analysis — cost scales with total code,
    not with the number of sinks.
    """

    def __init__(self, apk: Apk, graph: CallGraph, config: AmandroidConfig,
                 deadline: Deadline) -> None:
        self.pool = apk.full_pool
        self.graph = graph
        self.config = config
        self.deadline = deadline
        self._locals: dict[tuple[MethodSignature, str], Fact] = {}
        self._fields: dict[FieldSignature, Fact] = {}
        self._returns: dict[MethodSignature, Fact] = {}
        self._param_in: dict[tuple[MethodSignature, int], Fact] = {}
        self._this_in: dict[MethodSignature, Fact] = {}

    # ------------------------------------------------------------------
    def run(self) -> None:
        methods = [
            m
            for sig in sorted(self.graph.reachable, key=str)
            if (m := self.pool.resolve_method(sig)) is not None and m.has_body
        ]
        for _ in range(self.config.max_passes):
            self.deadline.check()
            before = (len(self._locals), hash(frozenset(self._returns.items())),
                      hash(frozenset(self._fields.items())))
            for method in methods:
                self._eval_method(method)
            after = (len(self._locals), hash(frozenset(self._returns.items())),
                     hash(frozenset(self._fields.items())))
            if before == after:
                break

    # ------------------------------------------------------------------
    def _eval_method(self, method: DexMethod) -> None:
        self.deadline.check()
        sig = method.signature()
        for stmt in method.body:
            if isinstance(stmt, IdentityStmt):
                if isinstance(stmt.ref, ParameterRef):
                    incoming = self._param_in.get((sig, stmt.ref.index))
                    if incoming is not None:
                        self._locals[(sig, stmt.local.name)] = incoming
                elif isinstance(stmt.ref, ThisRef):
                    incoming = self._this_in.get(sig)
                    if incoming is not None:
                        self._locals[(sig, stmt.local.name)] = incoming
            elif isinstance(stmt, AssignStmt):
                self._eval_assign(sig, stmt)
            elif isinstance(stmt, ReturnStmt) and stmt.value is not None:
                fact = self._value_fact(sig, stmt.value)
                previous = self._returns.get(sig)
                self._returns[sig] = (
                    fact if previous is None else merge_facts([previous, fact])
                )
            else:
                expr = stmt.invoke_expr()
                if expr is not None:
                    self._eval_invoke(sig, expr, assign_to=None)

    def _eval_assign(self, sig: MethodSignature, stmt: AssignStmt) -> None:
        if isinstance(stmt.rhs, InvokeExpr):
            fact = self._eval_invoke(sig, stmt.rhs, assign_to=stmt.lhs)
        else:
            fact = self._value_fact(sig, stmt.rhs)
        lhs = stmt.lhs
        if isinstance(lhs, Local):
            self._locals[(sig, lhs.name)] = fact
        elif isinstance(lhs, StaticFieldRef):
            self._merge_field(lhs.fieldsig, fact)
        elif isinstance(lhs, InstanceFieldRef):
            base = self._locals.get((sig, lhs.base.name))
            if isinstance(base, NewObjFact):
                self._locals[(sig, lhs.base.name)] = base.with_member(
                    lhs.fieldsig.name, fact
                )
            self._merge_field(lhs.fieldsig, fact)

    def _merge_field(self, fieldsig: FieldSignature, fact: Fact) -> None:
        previous = self._fields.get(fieldsig)
        self._fields[fieldsig] = (
            fact if previous is None else merge_facts([previous, fact])
        )

    # ------------------------------------------------------------------
    def _eval_invoke(
        self, sig: MethodSignature, expr: InvokeExpr, assign_to
    ) -> Fact:
        base_fact = (
            self._locals.get((sig, expr.base.name)) if expr.base is not None else None
        )
        arg_facts = [self._value_fact(sig, arg) for arg in expr.args]

        model = lookup_model(expr.method)
        if model is not None:
            outcome = model(ApiCall(expr.method, base_fact, arg_facts))
            if outcome.base_update is not None and expr.base is not None:
                self._locals[(sig, expr.base.name)] = outcome.base_update
            return outcome.result if outcome.result is not None else UnknownFact("void")

        if expr.method.is_constructor and expr.base is not None:
            target = (
                base_fact
                if isinstance(base_fact, NewObjFact)
                else NewObjFact.make(expr.method.class_name)
            )
            for position, fact in enumerate(arg_facts):
                target = target.with_member(f"arg{position}", fact)
            self._locals[(sig, expr.base.name)] = target

        # Feed parameter facts to every CG-reachable target.
        returned: list[Fact] = []
        for callee in self.graph.callees_of(sig):
            if callee.name != expr.method.name and not expr.method.is_constructor:
                continue
            for position, fact in enumerate(arg_facts):
                key = (callee, position)
                previous = self._param_in.get(key)
                self._param_in[key] = (
                    fact if previous is None else merge_facts([previous, fact])
                )
            if base_fact is not None:
                previous = self._this_in.get(callee)
                self._this_in[callee] = (
                    base_fact
                    if previous is None
                    else merge_facts([previous, base_fact])
                )
            if callee in self._returns:
                returned.append(self._returns[callee])
        if returned:
            return merge_facts(returned)
        return UnknownFact(f"call {expr.method.name}")

    # ------------------------------------------------------------------
    def _value_fact(self, sig: MethodSignature, value: Value) -> Fact:
        if isinstance(value, Local):
            return self._locals.get((sig, value.name), UnknownFact("local"))
        if isinstance(value, StringConstant):
            return ConstFact(value.value)
        if isinstance(value, (IntConstant, LongConstant, DoubleConstant)):
            return ConstFact(value.value)
        if isinstance(value, NullConstant):
            return ConstFact(None)
        if isinstance(value, ClassConstant):
            return ConstFact(f"class {value.class_name}")
        if isinstance(value, CastExpr):
            return self._value_fact(sig, value.value)
        if isinstance(value, PhiExpr):
            return merge_facts(self._value_fact(sig, v) for v in value.values)
        if isinstance(value, StaticFieldRef):
            known = framework_constant(value.fieldsig)
            if known is not None:
                return known
            return self._fields.get(value.fieldsig, UnknownFact("field"))
        if isinstance(value, InstanceFieldRef):
            base = self._locals.get((sig, value.base.name))
            if isinstance(base, NewObjFact):
                member = base.member(value.fieldsig.name)
                if member is not None:
                    return member
            return self._fields.get(value.fieldsig, UnknownFact("field"))
        if isinstance(value, ArrayRef):
            return UnknownFact("array")
        if isinstance(value, NewExpr):
            return NewObjFact.make(value.class_name)
        if isinstance(value, NewArrayExpr):
            return ArrayObjFact.make(value.element_type)
        if isinstance(value, BinopExpr):
            left = self._value_fact(sig, value.left)
            right = self._value_fact(sig, value.right)
            lv = next(left.possible_consts(), None)
            rv = next(right.possible_consts(), None)
            if isinstance(lv, int) and isinstance(rv, int) and value.op == "+":
                return ConstFact(lv + rv)
            return UnknownFact("binop")
        return UnknownFact(type(value).__name__)

    # ------------------------------------------------------------------
    def facts_for(self, sig: MethodSignature, values: list[Value]) -> list[Fact]:
        return [self._value_fact(sig, v) for v in values]


class AmandroidStyleAnalyzer:
    """The whole-app comparator: CG + whole-app dataflow + detection."""

    def __init__(
        self,
        config: Optional[AmandroidConfig] = None,
        sink_rules: tuple[str, ...] = ("crypto-ecb", "ssl-verifier"),
    ) -> None:
        self.config = config if config is not None else AmandroidConfig()
        self.sink_specs: tuple[SinkSpec, ...] = sinks_for_rules(sink_rules)

    # ------------------------------------------------------------------
    def analyze(self, apk: Apk) -> BaselineReport:
        report = BaselineReport(package=apk.package)
        started = time.perf_counter()
        deadline = Deadline(self.config.timeout_seconds)
        try:
            graph = build_whole_app_callgraph(apk, self.config, deadline)
            report.reachable_methods = len(graph.reachable)
            report.cg_edges = graph.edge_count
            report.skipped_library_classes = len(graph.skipped_library_classes)
            report.dropped_implicit_sites = graph.dropped_implicit_sites
            propagation = _WholeAppConstants(apk, graph, self.config, deadline)
            propagation.run()
            self._detect(apk, graph, propagation, report, deadline)
        except AnalysisTimeout:
            report.timed_out = True
        except AnalysisError as failure:
            report.error = str(failure)
        report.analysis_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------
    def _detect(
        self,
        apk: Apk,
        graph: CallGraph,
        propagation: _WholeAppConstants,
        report: BaselineReport,
        deadline: Deadline,
    ) -> None:
        pool = apk.full_pool
        by_key = {
            (spec.signature.class_name, spec.signature.name,
             spec.signature.param_types): spec
            for spec in self.sink_specs
        }
        for sig in sorted(graph.reachable, key=str):
            deadline.check()
            if sig.class_name.startswith(tuple(self.config.liblist)) and (
                self.config.skip_liblist
            ):
                continue
            method = pool.resolve_method(sig)
            if method is None or not method.has_body:
                continue
            for index, stmt in enumerate(method.body):
                expr = stmt.invoke_expr()
                if expr is None:
                    continue
                spec = by_key.get(
                    (expr.method.class_name, expr.method.name, expr.method.param_types)
                )
                if spec is None:
                    # Hierarchy-aware matching: an invocation written
                    # against an app subclass of the sink's declaring
                    # class still resolves to the framework sink (the
                    # case BackDroid's text-level initial search misses,
                    # Sec. VI-C).
                    resolved = pool.resolve_method(expr.method)
                    if resolved is not None:
                        spec = by_key.get(
                            (
                                resolved.declaring_class,
                                resolved.name,
                                resolved.param_types,
                            )
                        )
                if spec is None:
                    continue
                report.sink_calls_seen += 1
                facts = {
                    position: propagation.facts_for(sig, [expr.args[position]])[0]
                    for position in spec.tracked_params
                    if position < len(expr.args)
                }
                detector = DETECTORS.get(spec.rule)
                if detector is None:
                    continue
                finding = detector.evaluate(facts, sig, index, pool)
                if finding is not None:
                    report.findings.append(finding)
