"""The inverted-index backend: prebuilt posting lists over dex tokens.

The disassembler already knows, while rendering, which substrings of each
line a bytecode search could target (method/field signatures, type
descriptors, quoted literals) and emits them as a token stream
(:class:`~repro.dex.disassembler.LineToken`).  This backend folds that
stream — once per app — into

* ``exact``      — token text -> posting list of line numbers, so the
  hot queries (``find_invocations``, ``find_field_accesses``) become a
  dict lookup instead of an O(text) scan;
* ``containing`` — type descriptor -> the tokens embedding it, so
  descriptor queries (``classes_mentioning``, ``find_const_class``) keep
  the substring semantics of a raw text search (a descriptor also
  appears inside invoke signatures, field signatures, array descriptors
  and header protos) without scanning the text;
* a tiny *vocabulary scan* fallback for needle shapes the index does not
  recognise — still far smaller than the full plaintext.

Arbitrary literal/regex queries fall back to the shared linear scan and
are counted in the backend stats, so the index's coverage is observable.

The index is built lazily on first query and memoized on the
:class:`Disassembly`, so every searcher over one app shares one build.
"""

from __future__ import annotations

import bisect
import re
import time
from typing import Optional

from repro.dex.disassembler import Disassembly
from repro.search.backends.base import JoinedText, SearchBackend
from repro.telemetry import tracing

#: A bare dex reference-type descriptor, possibly array-wrapped.
_DESCRIPTOR_RE = re.compile(r"\[*L[^;]+;")


class TokenIndex:
    """Posting lists keyed by dex tokens, built once per disassembly."""

    def __init__(self, disassembly: Disassembly) -> None:
        started = time.perf_counter()
        self.restored = False
        #: Shard groups the store re-folded while restoring this index
        #: (0 for fresh builds and full-shard restores).
        self.patched_groups = 0
        self.vocab: list[str] = []
        self.postings: list[list[int]] = []
        self.exact: dict[str, int] = {}
        self.containing: dict[str, list[int]] = {}
        self._string_ids: list[int] = []
        self._joined_vocab: Optional[JoinedText] = None
        self._joined_strings: Optional[JoinedText] = None

        for token in disassembly.tokens:
            tid = self.exact.get(token.text)
            if tid is None:
                tid = len(self.vocab)
                self.exact[token.text] = tid
                self.vocab.append(token.text)
                self.postings.append([])
                if token.kind == "string":
                    self._string_ids.append(tid)
            posting = self.postings[tid]
            if not posting or posting[-1] != token.line_no:
                posting.append(token.line_no)

        for tid, text in enumerate(self.vocab):
            for sub in _containment_keys(text):
                bucket = self.containing.setdefault(sub, [])
                if not bucket or bucket[-1] != tid:
                    bucket.append(tid)

        self.posting_entries = sum(len(p) for p in self.postings)
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    @classmethod
    def for_disassembly(cls, disassembly: Disassembly) -> "TokenIndex":
        cached = getattr(disassembly, "_token_index_cache", None)
        if cached is None:
            cached = cls(disassembly)
            disassembly._token_index_cache = cached
        return cached

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: dict) -> "TokenIndex":
        """Rebuild an index from its serialized posting lists.

        The inverse of the artifact store's ``save_index`` payload: no
        token-stream fold, no containment-key derivation — the restored
        index is query-ready immediately and reports ``build_seconds ==
        0.0``.  Raises ``KeyError``/``TypeError``/``ValueError`` on any
        shape mismatch so the store can treat the entry as corrupt.
        """
        index = cls.__new__(cls)
        index.restored = True
        index.patched_groups = 0
        index.vocab = [str(text) for text in payload["vocab"]]
        index.postings = [
            [int(line_no) for line_no in posting]
            for posting in payload["postings"]
        ]
        if len(index.postings) != len(index.vocab):
            raise ValueError("postings/vocab length mismatch")
        index.exact = {text: tid for tid, text in enumerate(index.vocab)}
        valid = range(len(index.vocab))
        index._string_ids = [int(tid) for tid in payload["string_ids"]]
        index.containing = {
            str(sub): [int(tid) for tid in tids]
            for sub, tids in payload["containing"].items()
        }
        for tid in index._string_ids:
            if tid not in valid:
                raise ValueError("string id out of range")
        for tids in index.containing.values():
            for tid in tids:
                if tid not in valid:
                    raise ValueError("containment id out of range")
        index._joined_vocab = None
        index._joined_strings = None
        index.posting_entries = sum(len(p) for p in index.postings)
        index.build_seconds = 0.0
        return index

    # ------------------------------------------------------------------
    def token_lines(self, needle: str) -> list[int]:
        """Every line whose tokens contain *needle* as a substring."""
        lines: set[int] = set()
        tid = self.exact.get(needle)
        if tid is not None:
            lines.update(self.postings[tid])
        if _DESCRIPTOR_RE.fullmatch(needle):
            # Descriptors also occur inside longer tokens (signatures,
            # protos, array types, string values); the containment map
            # registered every such occurrence at build time, so this
            # stays a dict lookup.
            for tid in self.containing.get(needle, ()):
                lines.update(self.postings[tid])
        elif ";." in needle and ":" in needle:
            # A full method/field signature.  Inside signature tokens it
            # can only occur as a suffix (class names may suffix each
            # other: ``La;.m:()V`` inside ``Lcom/La;.m:()V``) — covered
            # by the containment map; string-literal values can embed it
            # anywhere, so those are scanned too.
            for tid in self.containing.get(needle, ()):
                lines.update(self.postings[tid])
            lines.update(self._scan(self._strings_joined(), needle,
                                    self._string_ids))
        elif len(needle) >= 2 and needle[0] == "'" == needle[-1]:
            # A quoted header literal: header tokens are quoted whole
            # (exact lookup), but string values may embed the quoted
            # form verbatim.
            lines.update(self._scan(self._strings_joined(), needle,
                                    self._string_ids))
        elif len(needle) >= 2 and needle[0] == '"' == needle[-1]:
            # A quoted string literal: scan only the string vocabulary
            # (values may embed each other).
            lines.update(self._scan(self._strings_joined(), needle,
                                    self._string_ids))
        else:
            # Unrecognised shape: scan the whole vocabulary — still a
            # small fraction of the plaintext.
            lines.update(self._scan(self._vocab_joined(), needle, None))
        return sorted(lines)

    # ------------------------------------------------------------------
    def _vocab_joined(self) -> JoinedText:
        if self._joined_vocab is None:
            self._joined_vocab = JoinedText(self.vocab)
        return self._joined_vocab

    def _strings_joined(self) -> JoinedText:
        if self._joined_strings is None:
            self._joined_strings = JoinedText(
                [self.vocab[tid] for tid in self._string_ids]
            )
        return self._joined_strings

    def _scan(
        self, joined: JoinedText, needle: str, id_map: Optional[list[int]]
    ) -> set[int]:
        """Substring-scan a vocabulary join, returning matching lines."""
        lines: set[int] = set()
        start = 0
        while True:
            offset = joined.text.find(needle, start)
            if offset < 0:
                break
            row = joined.line_of_offset(offset)
            tid = id_map[row] if id_map is not None else row
            lines.update(self.postings[tid])
            start = joined.line_offsets[row + 1]
        return lines


def _containment_keys(token: str):
    """All substrings of *token* a descriptor/signature query could be.

    Two families, both required to preserve the substring semantics of
    the linear scan:

    * every proper suffix starting at a ``[`` or ``L`` — a signature or
      descriptor needle occurring *inside* a token always extends to the
      token's end, because one class name can suffix another
      (``La;.m:()V`` inside ``Lcom/La;.m:()V``);
    * every descriptor ending *mid*-token (parameter and return types in
      signatures, protos and array descriptors), including its own
      array-prefix/``L``-restart suffixes (``[[Lcom/La;`` can satisfy
      queries for ``[Lcom/La;``, ``Lcom/La;`` and ``La;``).
    """
    seen: set[str] = set()
    for i in range(1, len(token)):
        if token[i] == "[" or token[i] == "L":
            sub = token[i:]
            # Only descriptor- or signature-shaped suffixes can ever be
            # looked up; skipping the rest bounds the map (a long string
            # literal full of 'L's would otherwise materialise one key
            # per occurrence).
            if sub in seen:
                continue
            if _DESCRIPTOR_RE.fullmatch(sub) or (";." in sub and ":" in sub):
                seen.add(sub)
                yield sub
    for match in _DESCRIPTOR_RE.finditer(token):
        text = match.group()
        for i, ch in enumerate(text):
            if ch == "[" or ch == "L":
                sub = text[i:]
                if _DESCRIPTOR_RE.fullmatch(sub) and sub not in seen:
                    seen.add(sub)
                    yield sub


class InvertedIndexBackend(SearchBackend):
    """Dict-lookup token queries over the prebuilt :class:`TokenIndex`.

    With an artifact ``store`` attached, the index is composed from the
    store's per-class-group shards when any exist for this disassembly
    (``index_restored`` set in the stats; a full-shard hit reports
    ``index_build_seconds == 0.0``, a partial hit re-folds only the
    missing groups and reports them as ``shards_patched``) and saved
    back after a cold build, so later runs over the same bytecode — or
    over *different apps embedding the same libraries* — skip the fold.
    """

    name = "indexed"

    def __init__(self, disassembly: Disassembly, store=None) -> None:
        super().__init__(disassembly, store=store)
        self._index: Optional[TokenIndex] = None
        self._fallback: Optional[JoinedText] = None

    # ------------------------------------------------------------------
    @property
    def index(self) -> TokenIndex:
        if self._index is None:
            if not self.disassembly.tokens and len(self.disassembly.lines) > 2:
                # Lines beyond the two-line preamble mean at least one
                # rendered class, which always emits tokens — a token-less
                # disassembly here was built outside the disassembler and
                # would make every query silently return nothing.
                raise ValueError(
                    "disassembly carries no token stream; the indexed "
                    "backend requires Disassembly objects produced by "
                    "repro.dex.disassembler.disassemble (use the linear "
                    "backend otherwise)"
                )
            index = getattr(self.disassembly, "_token_index_cache", None)
            if index is None and self.store is not None:
                with tracing.span("index.restore") as restore_span:
                    index = self.store.load_index(self.disassembly)
                    restore_span.set_attrs(
                        hit=index is not None,
                        lazy=bool(getattr(index, "lazy", False)),
                        bytes_mapped=getattr(index, "bytes_mapped", 0),
                    )
                if index is not None:
                    # Share the restored index with sibling searchers.
                    self.disassembly._token_index_cache = index
            if index is None:
                with tracing.span("index.fold") as fold_span:
                    index = TokenIndex.for_disassembly(self.disassembly)
                    fold_span.set_attr(
                        "build_seconds", index.build_seconds
                    )
                    if self.store is not None:
                        self.store.save_index(self.disassembly, index)
            self._index = index
            self.stats.index_build_seconds = index.build_seconds
            self.stats.index_restored = index.restored
            if getattr(index, "lazy", False):
                # Touching ``index.vocab`` would force the full
                # materialization a lazy restore exists to avoid; the
                # shard headers carry the counts.  Reading them is also
                # where a torn shard file first surfaces (and heals),
                # so the patch counter is read afterwards.
                self.stats.vocab_size = index.vocab_size
            else:
                self.stats.vocab_size = len(index.vocab)
            self.stats.posting_entries = index.posting_entries
            self.stats.shards_patched = getattr(index, "patched_groups", 0)
        return self._index

    # ------------------------------------------------------------------
    def token_lines(self, needle: str) -> list[int]:
        self.stats.token_queries += 1
        return self.index.token_lines(needle)

    def literal_lines(self, needle: str) -> list[int]:
        self.stats.literal_queries += 1
        self.stats.fallbacks += 1
        return self._joined().literal_lines(needle)

    def pattern_lines(self, pattern: str) -> list[int]:
        self.stats.pattern_queries += 1
        self.stats.fallbacks += 1
        return self._joined().pattern_lines(pattern)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """The stats snapshot, with live laziness counters.

        A lazy index materializes groups (and may heal shards) *after*
        the index property primed the stats, so the counters are
        re-read from the index at snapshot time — this is what the
        session layer's per-request deltas diff.
        """
        index = self._index
        if index is not None and getattr(index, "lazy", False):
            self.stats.materialized_groups = index.materialized_groups
            self.stats.bytes_mapped = index.bytes_mapped
            self.stats.bytes_decoded = index.bytes_decoded
            self.stats.shards_patched = index.patched_groups
            self.stats.vocab_size = index.vocab_size
        return super().describe()

    # ------------------------------------------------------------------
    def _joined(self) -> JoinedText:
        if self._fallback is None:
            self._fallback = JoinedText.for_disassembly(self.disassembly)
        return self._fallback
