"""Integration tests: the full pipeline on the paper's example apps.

These replicate the paper's three worked examples end to end:

* Fig. 3/4 (LG TV Plus): sink behind a private method, reached through
  the Runnable/Executor advanced-search chain, plus the explicit-ICC
  service;
* Sec. IV-C (Heyzap): SSL sink whose path crosses ``APIClient.<clinit>``;
* Fig. 6 (PalcoMP3): the full SSG with an off-path static initializer,
  recovering ``new InetSocketAddress(null, 8089)`` at the bind sink.
"""

import pytest

from repro.core.backdroid import BackDroid, BackDroidConfig
from repro.core.forward import ForwardPropagation
from repro.core.slicer import BackwardSlicer
from repro.core.values import ConstFact, NewObjFact
from repro.dex.types import FieldSignature, MethodSignature


def _open_port_config():
    return BackDroidConfig(sink_rules=("open-port",))


class TestLgTvPlusPipeline:
    def test_sink_sites_found(self, lg_tv_plus):
        driver = BackDroid(_open_port_config())
        sites = driver.find_sink_call_sites(lg_tv_plus)
        hosts = {s.method.class_name for s in sites}
        assert "com.connectsdk.service.netcast.NetcastHttpServer" in hosts
        assert "com.lge.app1.fota.HttpServerService" in hosts

    def test_async_chain_sink_is_reachable(self, lg_tv_plus):
        driver = BackDroid(_open_port_config())
        report = driver.analyze(lg_tv_plus)
        by_class = {
            r.site.method.class_name: r for r in report.records
        }
        record = by_class["com.connectsdk.service.netcast.NetcastHttpServer"]
        assert record.reachable
        assert any("MainActivity" in e for e in record.entry_points)

    def test_icc_service_sink_is_reachable(self, lg_tv_plus):
        driver = BackDroid(_open_port_config())
        report = driver.analyze(lg_tv_plus)
        by_class = {r.site.method.class_name: r for r in report.records}
        record = by_class["com.lge.app1.fota.HttpServerService"]
        assert record.reachable

    def test_port_value_resolved(self, lg_tv_plus):
        driver = BackDroid(_open_port_config())
        report = driver.analyze(lg_tv_plus)
        by_class = {r.site.method.class_name: r for r in report.records}
        record = by_class["com.connectsdk.service.netcast.NetcastHttpServer"]
        assert record.facts_repr.get(0) == "8080"


class TestHeyzapPipeline:
    def test_ssl_sink_detected_through_clinit(self, heyzap):
        driver = BackDroid(BackDroidConfig(sink_rules=("ssl-verifier",)))
        report = driver.analyze(heyzap)
        assert report.sink_count == 1
        record = report.records[0]
        assert record.reachable
        assert record.finding is not None
        assert record.finding.rule == "ssl-verifier"
        assert "ALLOW_ALL" in record.finding.detail

    def test_clinit_note_recorded(self, heyzap):
        driver = BackDroid(BackDroidConfig(sink_rules=("ssl-verifier",)))
        engine_report = driver.analyze(heyzap)
        assert engine_report.records[0].entry_points  # reached via clinit chain


class TestPalcomp3Pipeline:
    @pytest.fixture(scope="class")
    def ssg(self, palcomp3):
        driver = BackDroid(_open_port_config())
        sites = driver.find_sink_call_sites(palcomp3)
        bind_sites = [s for s in sites if s.spec.signature.name == "bind"]
        assert len(bind_sites) == 1
        slicer = BackwardSlicer(palcomp3)
        return slicer.slice_sink(bind_sites[0])

    def test_ssg_reaches_entry(self, ssg):
        assert ssg.reached_entry
        assert any("PalcoMP3Act" in str(e) for e in ssg.entry_points)

    def test_ssg_contains_fig6_methods(self, ssg):
        methods = {f"{m.class_name}.{m.name}" for m in ssg.methods()}
        assert "com.studiosol.util.NanoHTTPD.start" in methods
        assert "com.studiosol.util.NanoHTTPD.<init>" in methods
        assert "com.studiosol.palcomp3.MP3LocalServer.<init>" in methods
        assert "com.studiosol.palcomp3.SmartCacheMgr.initLocalServer" in methods
        assert "com.studiosol.palcomp3.Activities.PalcoMP3Act.onCreate" in methods

    def test_static_track_for_port(self, ssg):
        port = FieldSignature("com.studiosol.palcomp3.MP3LocalServer", "PORT", "int")
        assert port in ssg.static_tracks
        track = ssg.static_tracks[port]
        assert any("8089" in str(unit.stmt) for unit in track)

    def test_taint_map_is_hierarchical(self, ssg):
        # Per-method taint sets exist for the tracked methods.
        start = MethodSignature("com.studiosol.util.NanoHTTPD", "start", (), "void")
        assert start in ssg.taint_map
        assert ssg.taint_map[start]

    def test_forward_recovers_inet_socket_address(self, palcomp3, ssg):
        facts = ForwardPropagation(palcomp3, ssg).run()
        fact = facts[0]
        assert isinstance(fact, NewObjFact)
        assert fact.class_name == "java.net.InetSocketAddress"
        assert fact.member("arg0") == ConstFact(None)  # hostname = null
        assert fact.member("arg1") == ConstFact(8089)  # PORT from <clinit>

    def test_render_mentions_static_track(self, ssg):
        text = ssg.render()
        assert "static track" in text
        assert "8089" in text


class TestSinkCaching:
    def test_unreachable_host_method_cached(self):
        """Two sinks in one dead method: the second is served from cache."""
        from repro.android.apk import Apk
        from repro.android.manifest import Manifest
        from repro.dex.builder import AppBuilder

        app = AppBuilder()
        dead = app.new_class("com.a.Dead")
        m = dead.method("never", static=True)
        t1 = m.const_string("AES/ECB/PKCS5Padding")
        m.invoke_static(
            "javax.crypto.Cipher", "getInstance", args=[t1],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        t2 = m.const_string("DES")
        m.invoke_static(
            "javax.crypto.Cipher", "getInstance", args=[t2],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        m.return_void()
        apk = Apk(package="com.a", classes=app.build(), manifest=Manifest("com.a"))
        report = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",))).analyze(apk)
        assert report.sink_count == 2
        assert not any(r.reachable for r in report.records)
        assert any(r.cached for r in report.records)
        assert report.sink_cache_rate > 0.0
        assert not report.findings  # dead code: no false positive
