#!/usr/bin/env python
"""CI smoke for the multi-node service, end to end over real processes.

Boots a two-node cluster (real ``backdroid serve`` subprocesses over
one shared store) behind a front end, then asserts the subsystem's
load-bearing behaviors:

* a warm job and a cold job both complete through the front end, each
  stamped with the node that ran it;
* every node's ``/metrics`` exposition carries its own ``node="..."``
  label on the served samples;
* SIGKILLing the node that owns an in-flight job reclaims the job onto
  the surviving peer under the same trace, and the specmap lease moves
  to the survivor with a bumped fencing token.

Exits nonzero on the first violated assertion, so CI can run it
directly::

    PYTHONPATH=src python scripts/ci_cluster_smoke.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.core import BackDroidConfig, analyze_spec  # noqa: E402
from repro.service import ClusterHarness, ServiceClient  # noqa: E402
from repro.store import ArtifactStore  # noqa: E402
from repro.workload.corpus import benchmark_app_spec  # noqa: E402

SCALE = 0.05
LEASE_TTL = 1.5


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def wait_job(client: ServiceClient, job_id: str, timeout: float) -> dict:
    deadline = time.time() + timeout
    while time.time() < deadline:
        snapshot = client.job(job_id)
        if snapshot is not None and snapshot["state"] in (
            "done",
            "failed",
            "cancelled",
        ):
            return snapshot
        time.sleep(0.1)
    raise SystemExit(f"FAIL: job {job_id} did not finish in {timeout}s")


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="ci-cluster-"))
    store = tmp / "store"
    try:
        # Pre-warm one app so the cluster serves a genuinely warm job.
        outcome = analyze_spec(
            benchmark_app_spec(0, scale=SCALE),
            BackDroidConfig(
                search_backend="indexed",
                store_dir=str(store),
                store_mode="full",
            ),
        )
        check(outcome.ok, f"pre-warm failed: {outcome.error}")

        with ClusterHarness(
            store,
            nodes=2,
            store_mode="full",
            lease_ttl=LEASE_TTL,
            heartbeat_interval=0.25,
            env_overrides={"n1": {"BACKDROID_COLD_STALL_SECONDS": "45"}},
        ) as harness:
            front = harness.front_end(monitor_interval=0.2)
            client = ServiceClient(*front.address, timeout=15.0)

            # Warm + cold jobs complete through the front end, stamped
            # with the executing node.
            warm = wait_job(
                client,
                client.submit(
                    {"app": "bench:0", "scale": SCALE, "node": "n2"}
                )["id"],
                timeout=30.0,
            )
            check(warm["state"] == "done", f"warm job: {warm}")
            check(warm["result"]["store_hit"] is True, "warm job ran cold")
            check(warm["node_id"] == "n2", f"warm node: {warm['node_id']}")
            cold = wait_job(
                client,
                client.submit(
                    {"app": "bench:1", "scale": SCALE, "node": "n2"}
                )["id"],
                timeout=60.0,
            )
            check(cold["state"] == "done", f"cold job: {cold}")
            check(cold["result"]["store_hit"] is False, "cold job was warm")
            print("ok: warm + cold jobs served through the front end")

            # Per-node metric labels on each node's own scrape.
            for node_id, (host, port) in zip(
                ("n1", "n2"), harness.endpoints()
            ):
                text = ServiceClient(host, port, timeout=10.0).metrics()
                check(
                    f'node="{node_id}"' in text,
                    f"{node_id}: /metrics lacks its node label",
                )
                check(
                    "backdroid_jobs_submitted_total" in text,
                    f"{node_id}: /metrics lacks job counters",
                )
            print("ok: per-node /metrics labels")

            # Failover: kill the owner of a stalled in-flight cold job.
            victim = client.submit(
                {"app": "bench:2", "scale": SCALE, "node": "n1"}
            )
            trace_id = victim["trace_id"]
            time.sleep(0.5)
            harness.kill_node("n1")
            recovered = wait_job(client, victim["id"], timeout=60.0)
            check(
                recovered["state"] == "done",
                f"failover job: {recovered}",
            )
            check(
                recovered["node_id"] == "n2",
                f"failover ran on {recovered['node_id']}",
            )
            check(recovered["attempts"] == 2, "expected one re-dispatch")
            check(
                recovered["trace_id"] == trace_id,
                "trace changed across failover",
            )
            stats = client.stats()
            check(
                stats["routing"]["reclaims"] >= 1,
                f"no reclaim recorded: {stats['routing']}",
            )
            # n2 reclaims the lease on its next heartbeat after the
            # dead owner's grant expires — poll past that window.
            artifact_store = ArtifactStore(store)
            deadline = time.time() + LEASE_TTL + 3.0
            lease = None
            while time.time() < deadline:
                lease = artifact_store.read_lease("specmap")
                if lease is not None and lease["owner"] == "n2":
                    break
                time.sleep(0.1)
            check(
                lease is not None and lease["owner"] == "n2",
                f"lease did not move: {lease}",
            )
            check(lease["token"] >= 2, f"fencing token not bumped: {lease}")
            print("ok: SIGKILL failover reclaimed under the same trace")
        print("cluster smoke: all checks passed")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
