#!/usr/bin/env python3
"""The paper's future-work extensions, implemented and demonstrated.

1. **Per-app SSG** (Sec. V-A / VI-D): instead of one slicing graph per
   sink, merge them into one partial-app graph — shared backtracking
   paths are stored once, and the graph still covers only a small
   fraction of the app (unlike whole-app graphs).
2. **Reflection resolution** (Sec. VII): resolve ``Class.forName`` /
   ``getMethod`` string parameters with the same backward + forward
   machinery, then hand the reflective call site to the search engine as
   an ordinary caller edge.

Run:  python examples/extensions_demo.py
"""

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.core import BackDroid, BackDroidConfig
from repro.core.per_app import build_per_app_ssg
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.search.reflection import ReflectionResolver
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app


def per_app_ssg_demo() -> None:
    print("=" * 72)
    print("Per-app SSG: one partial-app graph for all sinks")
    print("=" * 72)
    generated = generate_app(benchmark_app_spec(1, scale=0.5))
    apk = generated.apk
    driver = BackDroid(BackDroidConfig())
    sites = driver.find_sink_call_sites(apk)
    merged = build_per_app_ssg(apk, sites)
    print(f"app                    : {apk.package} "
          f"({apk.method_count()} methods)")
    print(f"sinks sliced           : {len(merged.slices)}")
    print(f"summed per-sink units  : {merged.summed_slice_units}")
    print(f"merged per-app units   : {merged.unit_count} "
          f"(sharing ratio {merged.sharing_ratio:.2f})")
    print(f"app coverage           : {merged.coverage_fraction(apk):.1%} of "
          "methods — a partial-app graph, as promised")
    print()


def reflection_demo() -> None:
    print("=" * 72)
    print("Reflection resolution: Class.forName -> caller edge")
    print("=" * 72)
    app = AppBuilder()
    manifest = Manifest("com.demo")
    target = app.new_class("com.demo.SecretHelper")
    tm = target.method("unlock", params=["java.lang.String"], static=True)
    tm.param(0)
    tm.return_void()
    main = app.new_class("com.demo.Main", superclass="android.app.Activity")
    main.default_constructor()
    oc = main.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    # The class name is assembled dynamically — resolved by the same
    # backward slicing + forward constant propagation as sink parameters.
    sb = oc.new_init("java.lang.StringBuilder", args=["com.demo."],
                     ctor_params=["java.lang.String"])
    sb2 = oc.invoke_virtual(sb, "java.lang.StringBuilder", "append",
                            args=["SecretHelper"], params=["java.lang.String"],
                            returns="java.lang.StringBuilder")
    name = oc.invoke_virtual(sb2, "java.lang.StringBuilder", "toString",
                             returns="java.lang.String")
    cls = oc.invoke_static("java.lang.Class", "forName", args=[name],
                           params=["java.lang.String"], returns="java.lang.Class")
    method_name = oc.const_string("unlock")
    oc.invoke_virtual(
        cls, "java.lang.Class", "getMethod",
        args=[method_name, oc.const_null("java.lang.Class[]")],
        params=["java.lang.String", "java.lang.Class[]"],
        returns="java.lang.reflect.Method",
    )
    oc.return_void()
    manifest.register("com.demo.Main", ComponentKind.ACTIVITY)
    apk = Apk(package="com.demo", classes=app.build(), manifest=manifest)

    resolver = ReflectionResolver(apk)
    for edge in resolver.resolve_all():
        print(f"resolved reflective call in {edge.caller.to_soot()}")
        print(f"  -> target class : {edge.target_class}")
        print(f"  -> target method: {edge.target_method}")
    callee = MethodSignature("com.demo.SecretHelper", "unlock",
                             ("java.lang.String",), "void")
    callers = resolver.caller_edges_for(callee)
    print(f"caller edges cached for {callee.to_soot()}: {len(callers)}")
    print()


def main() -> None:
    per_app_ssg_demo()
    reflection_demo()


if __name__ == "__main__":
    main()
