"""Cluster/single-node parity: sharding must not change the answers.

The six-app bench corpus runs twice per backend — once locally through
``analyze_spec`` (the reference) and once through a 3-node cluster
front end on a fresh shared store — and the result payloads must be
identical after stripping fields that legitimately vary with *where*
and *how fast* the analysis ran (timing, cache hits, lane, node).
"""

import time

import pytest

from repro.core import BackDroidConfig, analyze_spec, outcome_payload
from repro.service import ServiceClient
from repro.workload.corpus import benchmark_app_spec

APPS = 6
SCALE = 0.05

#: Execution-environment fields; everything else must match exactly.
VOLATILE = {
    "seconds",
    "index_build_seconds",
    "store_hit",
    "index_restored",
    "shards_patched",
    "materialized_groups",
    "bytes_mapped",
    "bytes_decoded",
    "lane",
    "node_id",
}


def sanitized(payload):
    return {k: v for k, v in payload.items() if k not in VOLATILE}


@pytest.mark.parametrize("backend", ["linear", "indexed"])
def test_three_node_cluster_matches_single_process(
    cluster_factory, tmp_path, backend
):
    references = {}
    for index in range(APPS):
        outcome = analyze_spec(
            benchmark_app_spec(index, scale=SCALE),
            BackDroidConfig(search_backend=backend),
        )
        assert outcome.ok, outcome.error
        references[outcome.package] = sanitized(outcome_payload(outcome))

    harness = cluster_factory(
        nodes=3,
        store_dir=tmp_path / f"store-{backend}",
        backend=backend,
        lease_ttl=5.0,
        heartbeat_interval=0.5,
    )
    front = harness.front_end()
    client = ServiceClient(*front.address, timeout=30.0)
    submitted = [
        client.submit({"app": f"bench:{index}", "scale": SCALE})
        for index in range(APPS)
    ]

    deadline = time.time() + 120.0
    results = {}
    for entry in submitted:
        while True:
            snapshot = client.job(entry["id"])
            if snapshot is not None and snapshot["state"] in (
                "done",
                "failed",
                "cancelled",
            ):
                break
            assert time.time() < deadline, "cluster run timed out"
            time.sleep(0.1)
        assert snapshot["state"] == "done", snapshot.get("error")
        assert snapshot["node_id"] in {"n1", "n2", "n3"}
        results[snapshot["result"]["package"]] = sanitized(
            snapshot["result"]
        )

    assert set(results) == set(references)
    for package, reference in references.items():
        assert results[package] == reference, package
