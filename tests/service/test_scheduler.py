"""Tests for store-aware two-lane scheduling and in-flight dedup."""

import threading

import pytest

import repro.service.scheduler as scheduler_module
from repro.api import AnalysisRequest
from repro.core import BackDroidConfig, analyze_spec
from repro.service import StoreAwareScheduler
from repro.workload.corpus import benchmark_app_spec

SCALE = 0.05


def _config(tmp_path, mode="full"):
    return BackDroidConfig(
        search_backend="indexed",
        store_dir=str(tmp_path / "store"),
        store_mode=mode,
    )


def _warm(config, index):
    """Run one app through the store so later probes classify it warm."""
    outcome = analyze_spec(benchmark_app_spec(index, scale=SCALE), config)
    assert outcome.ok, outcome.error
    return outcome


class TestRouting:
    def test_warm_submission_rides_the_fast_lane(self, tmp_path):
        config = _config(tmp_path)
        _warm(config, 0)
        with StoreAwareScheduler(config, workers=2, fast_lane_workers=1) as s:
            warm = s.submit(benchmark_app_spec(0, scale=SCALE))
            cold = s.submit(benchmark_app_spec(1, scale=SCALE))
            assert warm.lane == "fast" and warm.warm
            assert cold.lane == "main" and not cold.warm
            done = s.wait(warm.id, timeout=60)
            assert done.state == "done"
            assert done.result["store_hit"] is True
            assert done.result["lane"] == "fast"
            assert s.wait(cold.id, timeout=60).state == "done"

    def test_warm_submission_never_rebuilds_its_index(self, tmp_path):
        # Index-mode store: the analysis re-runs but the posting lists
        # must be restored, never folded again.
        config = _config(tmp_path, mode="index")
        _warm(config, 0)
        with StoreAwareScheduler(config, workers=1, fast_lane_workers=1) as s:
            job = s.submit(benchmark_app_spec(0, scale=SCALE))
            assert job.lane == "fast"
            done = s.wait(job.id, timeout=60)
            assert done.result["index_restored"] is True
            assert done.result["index_build_seconds"] == 0.0

    def test_index_level_is_not_warm_for_the_linear_backend(self, tmp_path):
        # A stored index saves the linear scan nothing; routing such a
        # submission to the fast lane would serialize full-cost work.
        _warm(_config(tmp_path, mode="index"), 0)
        linear = BackDroidConfig(
            search_backend="linear",
            store_dir=str(tmp_path / "store"),
            store_mode="index",
        )
        with StoreAwareScheduler(linear, workers=1, fast_lane_workers=1) as s:
            job = s.submit(benchmark_app_spec(0, scale=SCALE))
            assert job.lane == "main" and not job.warm
            assert s.wait(job.id, timeout=60).state == "done"

    def test_outcome_level_is_warm_even_for_the_linear_backend(self, tmp_path):
        # Full-mode outcome restores skip the analysis entirely, so the
        # backend does not matter.
        linear_full = BackDroidConfig(
            search_backend="linear",
            store_dir=str(tmp_path / "store"),
            store_mode="full",
        )
        _warm(linear_full, 0)
        with StoreAwareScheduler(
            linear_full, workers=1, fast_lane_workers=1
        ) as s:
            job = s.submit(benchmark_app_spec(0, scale=SCALE))
            assert job.lane == "fast" and job.warm
            assert s.wait(job.id, timeout=60).result["store_hit"] is True

    def test_no_store_means_single_lane(self, tmp_path):
        with StoreAwareScheduler(BackDroidConfig(), workers=1) as s:
            job = s.submit(benchmark_app_spec(0, scale=SCALE))
            assert job.lane == "main" and not job.warm
            assert s.wait(job.id, timeout=60).state == "done"

    def test_zero_fast_lane_degrades_to_fifo(self, tmp_path):
        config = _config(tmp_path)
        _warm(config, 0)
        with StoreAwareScheduler(config, workers=1, fast_lane_workers=0) as s:
            job = s.submit(benchmark_app_spec(0, scale=SCALE))
            assert job.warm and job.lane == "main"
            assert s.wait(job.id, timeout=60).state == "done"


class TestDedup:
    def test_concurrent_duplicates_one_analysis_shared_payload(
        self, tmp_path, monkeypatch
    ):
        """The acceptance bar: two submissions, one analysis, one payload."""
        release = threading.Event()
        calls = []
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            calls.append(spec.package)
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=2, fast_lane_workers=1
        )
        try:
            spec = benchmark_app_spec(0, scale=SCALE)
            first = scheduler.submit(spec)
            second = scheduler.submit(spec)
            assert second.coalesced_into == first.id
            release.set()
            first_done = scheduler.wait(first.id, timeout=60)
            second_done = scheduler.wait(second.id, timeout=60)
        finally:
            release.set()
            scheduler.shutdown(wait=True)

        assert calls == [spec.package]  # exactly one analysis ran
        assert scheduler.analyses_run == 1
        assert first_done.state == "done" and second_done.state == "done"
        assert first_done.result == second_done.result
        assert second_done.result is first_done.result  # shared, not copied
        assert scheduler.queue.dedup_hits == 1
        # Lane stats reconcile: both submissions count as completed.
        lanes = scheduler.stats()["lanes"]
        completed = sum(lane["completed"] for lane in lanes.values())
        submitted = sum(lane["submitted"] for lane in lanes.values())
        assert submitted == completed == 2

    def test_cold_duplicate_survives_midrun_specmap_learning(
        self, tmp_path, monkeypatch
    ):
        """The cold-start race: analyze_spec teaches the store the
        spec -> sha mapping while the first submission is still running,
        so the duplicate resolves to a different dedup key.  The
        fingerprint alias must still coalesce them."""
        from repro.workload.generator import spec_fingerprint

        release = threading.Event()
        learned = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            learned.wait(timeout=30)  # specmap write happens before this
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        config = _config(tmp_path)
        scheduler = StoreAwareScheduler(config, workers=1)
        try:
            spec = benchmark_app_spec(5, scale=SCALE)
            first = scheduler.submit(spec)
            assert first.key.startswith("spec:")
            # Simulate the worker's mid-run store write, then submit the
            # duplicate: its probe now resolves the disassembly sha.
            config.artifact_store().save_spec_key(
                spec_fingerprint(spec), "f00d" * 16
            )
            learned.set()
            second = scheduler.submit(spec)
            assert second.key == "f00d" * 16
            assert second.coalesced_into == first.id
            release.set()
            assert scheduler.wait(second.id, timeout=60).state == "done"
        finally:
            learned.set()
            release.set()
            scheduler.shutdown(wait=True)
        assert scheduler.analyses_run == 1

    def test_failed_analysis_fails_both_jobs(self, tmp_path, monkeypatch):
        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        from repro.workload.generator import AppSpec

        bad = AppSpec(package="com.broken", patterns=(("no-such",),))
        scheduler = StoreAwareScheduler(_config(tmp_path), workers=1)
        try:
            first = scheduler.submit(bad)
            second = scheduler.submit(bad)
            release.set()
            assert scheduler.wait(first.id, timeout=60).state == "failed"
            assert scheduler.wait(second.id, timeout=60).state == "failed"
            assert scheduler.wait(second.id, timeout=60).error
        finally:
            release.set()
            scheduler.shutdown(wait=True)


class TestLifecycleAndStats:
    def test_shutdown_drains_every_queued_job(self, tmp_path):
        scheduler = StoreAwareScheduler(_config(tmp_path), workers=2)
        jobs = [
            scheduler.submit(benchmark_app_spec(i, scale=SCALE))
            for i in range(5)
        ]
        scheduler.shutdown(wait=True)
        states = {scheduler.queue.get(j.id).state for j in jobs}
        assert states == {"done"}

    def test_submit_after_shutdown_raises(self, tmp_path):
        scheduler = StoreAwareScheduler(_config(tmp_path), workers=1)
        scheduler.shutdown(wait=True)
        with pytest.raises(RuntimeError, match="shut down"):
            scheduler.submit(benchmark_app_spec(0, scale=SCALE))

    def test_submit_racing_executor_shutdown_leaves_no_queued_job(
        self, tmp_path
    ):
        # A handler thread can pass the _closed check just as the pools
        # stop accepting futures; the job must fail, not hang queued.
        scheduler = StoreAwareScheduler(_config(tmp_path), workers=1)
        scheduler._main.shutdown(wait=True)  # race the check itself
        with pytest.raises(RuntimeError, match="shut down"):
            scheduler.submit(benchmark_app_spec(0, scale=SCALE))
        jobs = scheduler.queue.snapshots()
        assert len(jobs) == 1
        assert jobs[0]["state"] == "failed"
        assert "before dispatch" in jobs[0]["error"]
        assert scheduler.queue.counts()["in_flight_keys"] == 0
        scheduler.shutdown(wait=True)

    def test_stats_report_lanes_and_warm_rate(self, tmp_path):
        config = _config(tmp_path)
        _warm(config, 0)
        with StoreAwareScheduler(config, workers=2, fast_lane_workers=1) as s:
            warm = s.submit(benchmark_app_spec(0, scale=SCALE))
            cold = s.submit(benchmark_app_spec(1, scale=SCALE))
            s.wait(warm.id, timeout=60)
            s.wait(cold.id, timeout=60)
            stats = s.stats()
        assert stats["submitted"] == 2
        assert stats["warm_hit_rate"] == 0.5
        assert stats["lanes"]["fast"]["completed"] == 1
        assert stats["lanes"]["main"]["completed"] == 1
        assert stats["lanes"]["fast"]["depth"] == 0
        assert stats["lanes"]["fast"]["mean_wait_seconds"] >= 0.0
        assert stats["jobs"]["by_state"]["done"] == 2
        assert stats["analyses_run"] == 2
        # Store counters are live even though each analysis constructs
        # its own handle (stats are shared per root in-process).
        assert stats["store"]["outcome_hits"] >= 1
        assert stats["store"]["writes"] >= 1

    def test_rejects_bad_worker_counts(self):
        with pytest.raises(ValueError):
            StoreAwareScheduler(workers=0)
        with pytest.raises(ValueError):
            StoreAwareScheduler(fast_lane_workers=-1)


class TestRequests:
    def test_differently_targeted_jobs_do_not_coalesce(self, tmp_path, monkeypatch):
        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        with StoreAwareScheduler(_config(tmp_path), workers=2) as scheduler:
            spec = benchmark_app_spec(0, scale=SCALE)
            crypto = scheduler.submit(
                spec, request=AnalysisRequest(rules=("crypto-ecb",))
            )
            ssl = scheduler.submit(
                spec, request=AnalysisRequest(rules=("ssl-verifier",))
            )
            same = scheduler.submit(
                spec, request=AnalysisRequest(rules=("crypto-ecb",))
            )
            assert ssl.coalesced_into is None  # different request: new job
            assert same.coalesced_into == crypto.id  # same request: coalesced
            release.set()
            crypto_done = scheduler.wait(crypto.id, timeout=60)
            ssl_done = scheduler.wait(ssl.id, timeout=60)
        crypto_rules = {rule for rule, _ in crypto_done.result["findings"]}
        ssl_rules = {rule for rule, _ in ssl_done.result["findings"]}
        assert crypto_rules <= {"crypto-ecb"}
        assert ssl_rules <= {"ssl-verifier"}
        assert scheduler.analyses_run == 2

    def test_jobs_share_one_warm_session_per_app(self, tmp_path):
        config = BackDroidConfig(search_backend="indexed")
        with StoreAwareScheduler(config, workers=1) as scheduler:
            spec = benchmark_app_spec(0, scale=SCALE)
            first = scheduler.submit(
                spec, request=AnalysisRequest(rules=("crypto-ecb",))
            )
            scheduler.wait(first.id, timeout=60)
            second = scheduler.submit(
                spec, request=AnalysisRequest(rules=("ssl-verifier",))
            )
            done = scheduler.wait(second.id, timeout=60)
        # The second, differently-targeted job reused the warm session:
        # no index rebuild even without an artifact store.
        assert done.result["index_build_seconds"] == 0.0
        sessions = scheduler.stats()["sessions"]
        assert sessions["hits"] >= 1

    def test_request_snapshot_rides_the_job_record(self, tmp_path):
        with StoreAwareScheduler(_config(tmp_path), workers=1) as scheduler:
            job = scheduler.submit(
                benchmark_app_spec(0, scale=SCALE),
                request=AnalysisRequest(rules=("crypto-ecb",), max_frames=99),
            )
            snapshot = scheduler.queue.snapshot(job.id)
            scheduler.wait(job.id, timeout=60)
        assert snapshot["request"]["rules"] == ["crypto-ecb"]
        assert snapshot["request"]["max_frames"] == 99


class TestCancellation:
    def test_queued_job_cancels_and_reconciles_stats(self, tmp_path, monkeypatch):
        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        scheduler = StoreAwareScheduler(_config(tmp_path), workers=1)
        try:
            blocker = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            queued = scheduler.submit(benchmark_app_spec(1, scale=SCALE))
            job, disposition = scheduler.cancel(queued.id)
            assert disposition == "cancelled"
            assert job.state == "cancelled"
            release.set()
            assert scheduler.wait(blocker.id, timeout=60).state == "done"
            assert scheduler.wait(queued.id, timeout=60).state == "cancelled"
        finally:
            release.set()
            scheduler.shutdown(wait=True)
        lanes = scheduler.stats()["lanes"]
        assert sum(lane["cancelled"] for lane in lanes.values()) == 1
        assert sum(lane["completed"] for lane in lanes.values()) == 1
        assert all(lane["depth"] == 0 for lane in lanes.values())
        assert scheduler.analyses_run == 1  # the cancelled job never ran

    def test_running_job_cancels_when_worker_finishes(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            started.set()
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        scheduler = StoreAwareScheduler(_config(tmp_path), workers=1)
        try:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            assert started.wait(timeout=30)
            cancelled, disposition = scheduler.cancel(job.id)
            assert disposition == "cancelling"
            assert cancelled.state == "cancelling"
            release.set()
            final = scheduler.wait(job.id, timeout=60)
        finally:
            release.set()
            scheduler.shutdown(wait=True)
        assert final.state == "cancelled"
        assert final.result is None
        lanes = scheduler.stats()["lanes"]
        assert sum(lane["cancelled"] for lane in lanes.values()) == 1
        assert all(lane["depth"] == 0 for lane in lanes.values())

    def test_cancelled_job_evicted_before_worker_slot_still_frees_depth(
        self, tmp_path, monkeypatch
    ):
        # Tiny retention: a cancelled-while-queued job can be evicted
        # from the registry before the pool ever dequeues its _run; the
        # lane slot it held must still be released.
        release = threading.Event()
        real = scheduler_module.analyze_spec

        def gated(spec, config=None, **kwargs):
            release.wait(timeout=30)
            return real(spec, config, **kwargs)

        monkeypatch.setattr(scheduler_module, "analyze_spec", gated)
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, max_finished_jobs=1
        )
        try:
            blocker = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            victims = [
                scheduler.submit(benchmark_app_spec(i, scale=SCALE))
                for i in (1, 2, 3)
            ]
            for victim in victims:
                assert scheduler.cancel(victim.id)[1] == "cancelled"
            # Retention bound 1: the first two cancelled jobs are gone.
            assert scheduler.queue.get(victims[0].id) is None
            release.set()
            scheduler.wait(blocker.id, timeout=60)
        finally:
            release.set()
            scheduler.shutdown(wait=True)
        lanes = scheduler.stats()["lanes"]
        assert all(lane["depth"] == 0 for lane in lanes.values())
        assert sum(lane["cancelled"] for lane in lanes.values()) == 3


class TestProcessColdLane:
    """The out-of-process cold lane: PID isolation, cross-boundary
    cancellation, worker-death containment."""

    def test_cold_runs_out_of_process_warm_stays_in_process(self, tmp_path):
        import os

        config = _config(tmp_path, mode="index")
        _warm(config, 0)
        scheduler = StoreAwareScheduler(
            config, workers=1, fast_lane_workers=1, cold_executor="process"
        )
        try:
            warm = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            cold = scheduler.submit(benchmark_app_spec(1, scale=SCALE))
            warm_done = scheduler.wait(warm.id, timeout=60)
            cold_done = scheduler.wait(cold.id, timeout=60)
            # The acceptance bar: cold analyses execute in a worker
            # process, warm restores in the service interpreter —
            # and never rebuild an index.
            assert cold_done.worker_pid is not None
            assert cold_done.worker_pid != os.getpid()
            assert warm_done.worker_pid == os.getpid()
            assert warm_done.result["index_restored"] is True
            assert warm_done.result["index_build_seconds"] == 0.0
            assert cold_done.state == "done"
            assert cold_done.result["lane"] == "main"
            stats = scheduler.stats()
            assert stats["lanes"]["main"]["kind"] == "process"
            assert stats["lanes"]["fast"]["kind"] == "in-process"
            assert stats["cold"]["executor"] == "process"
            assert cold_done.worker_pid in stats["cold"]["worker_pids"]
        finally:
            scheduler.shutdown(wait=True)

    def test_cancel_queued_cold_job_never_reaches_a_worker(
        self, tmp_path, monkeypatch
    ):
        from repro.service.workers import STALL_ENV_VAR

        monkeypatch.setenv(STALL_ENV_VAR, "20")
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, cold_executor="process"
        )
        try:
            blocker = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            _wait_for_state(scheduler, blocker.id, "running")
            queued = scheduler.submit(benchmark_app_spec(1, scale=SCALE))
            job, disposition = scheduler.cancel(queued.id)
            assert disposition == "cancelled"
            assert scheduler.queue.get(queued.id).state == "cancelled"
            # The blocker dies with the scheduler's hard shutdown; the
            # cancelled job must not have consumed a worker.
            assert scheduler.stats()["cold"]["workers_restarted"] == 0
        finally:
            scheduler.shutdown(wait=False)

    def test_cancel_running_cold_job_kills_the_worker(
        self, tmp_path, monkeypatch
    ):
        import time

        from repro.service.workers import STALL_ENV_VAR

        monkeypatch.setenv(STALL_ENV_VAR, "30")
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, cold_executor="process"
        )
        try:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            _wait_for_state(scheduler, job.id, "running")
            # "running" is stamped just before the dispatch; wait until
            # the lane has actually bound the task to a worker, so the
            # cancel exercises the live-worker kill path rather than
            # the kill-raced-dispatch refusal (also correct, but it
            # never terminates a worker).
            deadline = time.monotonic() + 10
            while job.id not in scheduler._cold._running:
                assert time.monotonic() < deadline, "task never bound"
                time.sleep(0.005)
            before = scheduler.stats()["cold"]["worker_pids"]
            started = time.monotonic()
            _, disposition = scheduler.cancel(job.id)
            assert disposition == "cancelling"
            done = scheduler.wait(job.id, timeout=15)
            elapsed = time.monotonic() - started
            # The worker was terminated: the cancel resolves far inside
            # the 30s stall, the result is discarded, and a replacement
            # worker keeps the lane's capacity.
            assert done.state == "cancelled"
            assert done.result is None
            assert elapsed < 10
            stats = scheduler.stats()
            assert stats["cold"]["workers_restarted"] == 1
            assert stats["cold"]["worker_pids"] != before
            monkeypatch.delenv(STALL_ENV_VAR)
            after = scheduler.submit(benchmark_app_spec(1, scale=SCALE))
            assert scheduler.wait(after.id, timeout=60).state == "done"
        finally:
            scheduler.shutdown(wait=False)

    def test_cancel_shared_cold_primary_is_still_a_conflict(
        self, tmp_path, monkeypatch
    ):
        from repro.service.workers import STALL_ENV_VAR

        monkeypatch.setenv(STALL_ENV_VAR, "20")
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, cold_executor="process"
        )
        try:
            first = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            second = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            assert second.coalesced_into == first.id
            _, disposition = scheduler.cancel(first.id)
            assert disposition == "conflict"
            # The follower may detach and cancel alone.
            _, disposition = scheduler.cancel(second.id)
            assert disposition == "cancelled"
        finally:
            scheduler.shutdown(wait=False)

    def test_worker_death_retries_once_then_fails_only_that_job(
        self, tmp_path, monkeypatch
    ):
        import os
        import signal as signal_module
        import time

        from repro.service.workers import STALL_ENV_VAR

        monkeypatch.setenv(STALL_ENV_VAR, "30")
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, cold_executor="process"
        )
        try:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            _wait_for_state(scheduler, job.id, "running")
            # A dying worker no longer fails the job outright: it gets
            # one re-dispatch onto the replacement.  Kill that worker
            # too, so both attempts are exhausted.
            killed = set()
            deadline = time.monotonic() + 15
            while len(killed) < 2 and time.monotonic() < deadline:
                pids = set(scheduler.stats()["cold"]["worker_pids"])
                for pid in pids - killed:
                    os.kill(pid, signal_module.SIGKILL)
                    killed.add(pid)
                time.sleep(0.05)
            done = scheduler.wait(job.id, timeout=15)
            assert done.state == "failed"
            assert "worker died" in done.error
            monkeypatch.delenv(STALL_ENV_VAR)
            # The lane recovered: the next job runs on a replacement.
            after = scheduler.submit(benchmark_app_spec(1, scale=SCALE))
            done_after = scheduler.wait(after.id, timeout=60)
            assert done_after.state == "done"
            assert done_after.worker_pid is not None
            assert done_after.worker_pid not in killed
        finally:
            scheduler.shutdown(wait=False)

    def test_worker_death_once_retries_to_success(
        self, tmp_path, monkeypatch
    ):
        import os
        import signal as signal_module

        from repro.service.workers import STALL_ENV_VAR

        monkeypatch.setenv(STALL_ENV_VAR, "30")
        scheduler = StoreAwareScheduler(
            _config(tmp_path), workers=1, cold_executor="process"
        )
        try:
            job = scheduler.submit(benchmark_app_spec(0, scale=SCALE))
            _wait_for_state(scheduler, job.id, "running")
            (pid,) = scheduler.stats()["cold"]["worker_pids"]
            # Clear the stall before the kill: the retry attempt
            # re-reads it at dispatch time and completes normally.
            monkeypatch.delenv(STALL_ENV_VAR)
            os.kill(pid, signal_module.SIGKILL)
            done = scheduler.wait(job.id, timeout=60)
            assert done.state == "done"
            assert done.worker_pid not in (None, pid)
            assert scheduler.stats()["cold"]["workers_restarted"] >= 1
        finally:
            scheduler.shutdown(wait=False)

    def test_custom_registry_is_rejected_in_process_mode(self, tmp_path):
        class FakeRegistry:
            rules = ("custom",)

        with pytest.raises(ValueError, match="registry"):
            StoreAwareScheduler(
                _config(tmp_path),
                workers=1,
                registry=FakeRegistry(),
                cold_executor="process",
            )

    def test_unknown_cold_executor_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cold_executor"):
            StoreAwareScheduler(_config(tmp_path), cold_executor="fiber")


class TestLaneObservability:
    def test_lane_stats_report_kind_utilization_and_depth_percentiles(
        self, tmp_path
    ):
        config = _config(tmp_path)
        with StoreAwareScheduler(config, workers=2) as scheduler:
            jobs = [
                scheduler.submit(benchmark_app_spec(i, scale=SCALE))
                for i in range(3)
            ]
            for job in jobs:
                scheduler.wait(job.id, timeout=60)
            lane = scheduler.stats()["lanes"]["main"]
            assert lane["kind"] == "in-process"
            assert 0.0 <= lane["utilization"] <= 1.0
            percentiles = lane["depth_percentiles"]
            assert set(percentiles) == {"p50", "p90", "p99"}
            # Three submissions were sampled; the deepest observation
            # bounds the p99.
            assert percentiles["p99"] >= percentiles["p50"] >= 0.0
            assert lane["busy"] == 0  # drained


def _wait_for_state(scheduler, job_id, state, timeout=15.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = scheduler.queue.get(job_id)
        if job is not None and job.state == state:
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {state!r}")
