"""The ``AndroidManifest.xml`` model.

Entry points of an Android app are the lifecycle handlers of the
components *registered in the manifest* (Sec. II-A).  BackDroid checks
registration when deciding whether a backward path has reached a valid
entry — which is exactly how it avoids the six Amandroid false positives
whose flows "originate from an Activity component not in manifest"
(Sec. VI-C).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional


class ComponentKind(enum.Enum):
    """The four Android component kinds."""

    ACTIVITY = "activity"
    SERVICE = "service"
    RECEIVER = "receiver"
    PROVIDER = "provider"

    @property
    def base_class(self) -> str:
        return {
            ComponentKind.ACTIVITY: "android.app.Activity",
            ComponentKind.SERVICE: "android.app.Service",
            ComponentKind.RECEIVER: "android.content.BroadcastReceiver",
            ComponentKind.PROVIDER: "android.content.ContentProvider",
        }[self]


@dataclass(frozen=True)
class IntentFilter:
    """One ``<intent-filter>``: the actions a component reacts to."""

    actions: tuple[str, ...] = ()
    categories: tuple[str, ...] = ()

    def matches_action(self, action: str) -> bool:
        return action in self.actions


@dataclass(frozen=True)
class Component:
    """One registered component entry."""

    class_name: str
    kind: ComponentKind
    exported: bool = False
    intent_filters: tuple[IntentFilter, ...] = ()

    @property
    def is_launcher(self) -> bool:
        return any(
            "android.intent.action.MAIN" in f.actions for f in self.intent_filters
        )

    def handles_action(self, action: str) -> bool:
        return any(f.matches_action(action) for f in self.intent_filters)


@dataclass
class Manifest:
    """The parsed manifest: package name plus registered components."""

    package: str
    components: list[Component] = field(default_factory=list)
    application_class: Optional[str] = None
    min_sdk: int = 21
    target_sdk: int = 28

    def __post_init__(self) -> None:
        self._by_name = {c.class_name: c for c in self.components}

    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        self.components.append(component)
        self._by_name[component.class_name] = component
        return component

    def register(
        self,
        class_name: str,
        kind: ComponentKind,
        exported: bool = False,
        actions: Iterable[str] = (),
    ) -> Component:
        """Register a component, with an optional action intent filter."""
        actions = tuple(actions)
        filters = (IntentFilter(actions=actions),) if actions else ()
        return self.add(Component(class_name, kind, exported, filters))

    # ------------------------------------------------------------------
    def is_registered(self, class_name: str) -> bool:
        """Whether a class is a registered component (or the Application)."""
        return class_name in self._by_name or class_name == self.application_class

    def component(self, class_name: str) -> Optional[Component]:
        return self._by_name.get(class_name)

    def components_of(self, kind: ComponentKind) -> list[Component]:
        return [c for c in self.components if c.kind == kind]

    def components_handling(self, action: str) -> list[Component]:
        """Registered components whose intent filters accept *action*.

        This is the OS-side resolution of an *implicit* ICC call
        (Sec. IV-D).
        """
        return [c for c in self.components if c.handles_action(action)]

    def entry_classes(self) -> set[str]:
        """All classes that can be entered by the framework."""
        names = {c.class_name for c in self.components}
        if self.application_class:
            names.add(self.application_class)
        return names
