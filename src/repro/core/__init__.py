"""BackDroid's dataflow layer (Sec. V) and public driver.

On top of the search-based inter-procedural analysis, this package
adjusts the traditional backward slicing and forward analysis:

* :mod:`repro.core.ssg` — the self-contained slicing graph (SSG):
  hierarchical taint map, inter-procedural relationships, raw typed
  bytecode statements (``SSGUnit``), and the special static-initializer
  track (Sec. V-A);
* :mod:`repro.core.slicer` — the adjusted backward taint analysis over
  fields, arrays and contained methods that generates SSGs;
* :mod:`repro.core.values` — dataflow facts: constants, ``NewObj`` /
  ``ArrayObj`` points-to objects, merged facts (Sec. V-B);
* :mod:`repro.core.api_models` — modeled Java/Android APIs
  (``StringBuilder``, ``String.valueOf``, ...) used when mimicking
  statement semantics;
* :mod:`repro.core.forward` — forward constant + points-to propagation
  over the SSG (Sec. V-B);
* :mod:`repro.core.detectors` — the crypto-ECB and SSL-verifier rules of
  the Sec. VI evaluation;
* :mod:`repro.core.backdroid` — the top-level ``BackDroid`` driver
  (Fig. 2), and :mod:`repro.core.report` its result types;
* :mod:`repro.core.batch` — the corpus-scale batch driver fanning many
  apps across a ``concurrent.futures`` worker pool.
"""

from repro.core.backdroid import STORE_MODES, BackDroid, BackDroidConfig
from repro.core.batch import (
    AppOutcome,
    BatchResult,
    analyze_spec,
    level_is_warm,
    outcome_payload,
    plan_lanes,
    probe_spec,
    resolve_worker_count,
    run_batch,
)
from repro.core.detectors import DETECTORS, Detector, Finding
from repro.core.forward import ForwardPropagation
from repro.core.per_app import PerAppSSG, build_per_app_ssg
from repro.core.report import AnalysisReport, SinkRecord
from repro.core.slicer import BackwardSlicer, SinkCallSite
from repro.core.ssg import SSG, CallBinding, SSGUnit
from repro.core.values import (
    ArrayObjFact,
    ConstFact,
    Fact,
    MultiFact,
    NewObjFact,
    UnknownFact,
)

__all__ = [
    "AnalysisReport",
    "AppOutcome",
    "ArrayObjFact",
    "BackDroid",
    "BackDroidConfig",
    "BackwardSlicer",
    "BatchResult",
    "CallBinding",
    "analyze_spec",
    "level_is_warm",
    "outcome_payload",
    "plan_lanes",
    "probe_spec",
    "resolve_worker_count",
    "run_batch",
    "STORE_MODES",
    "ConstFact",
    "DETECTORS",
    "Detector",
    "Fact",
    "Finding",
    "ForwardPropagation",
    "MultiFact",
    "NewObjFact",
    "PerAppSSG",
    "SSG",
    "SSGUnit",
    "SinkCallSite",
    "SinkRecord",
    "UnknownFact",
    "build_per_app_ssg",
]
