"""Whole-app, entry-driven call-graph construction.

This is the "lifecycle-aware call graph" style of analysis (Sec. II-A):
start from *all* entry points, traverse *all* reachable code, resolve
virtual dispatch by class hierarchy analysis, and wire implicit edges
(async dispatch, callbacks, ICC, static initializers) from hardwired
domain knowledge.  Everything BackDroid avoids doing — and everything
that makes whole-app analysis expensive on modern apps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.android.apk import Apk
from repro.android.framework import (
    ICC_CALL_APIS,
    LIFECYCLE_HANDLERS,
    component_kind_of,
    is_framework_class,
)
from repro.baseline.config import AmandroidConfig, AnalysisError, Deadline
from repro.dex.hierarchy import ClassPool, DexMethod
from repro.dex.instructions import (
    ClassConstant,
    InvokeKind,
    Local,
    StringConstant,
    referenced_classes,
)
from repro.dex.types import MethodSignature


@dataclass
class CallGraph:
    """The whole-app call graph: adjacency plus bookkeeping."""

    edges: dict[MethodSignature, set[MethodSignature]] = field(default_factory=dict)
    reachable: set[MethodSignature] = field(default_factory=set)
    entry_points: set[MethodSignature] = field(default_factory=set)
    unresolved_references: int = 0
    skipped_library_classes: set[str] = field(default_factory=set)
    dropped_implicit_sites: int = 0

    def add_edge(self, caller: MethodSignature, callee: MethodSignature) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def callees_of(self, method: MethodSignature) -> set[MethodSignature]:
        return self.edges.get(method, set())


def _is_skipped(config: AmandroidConfig, class_name: str) -> bool:
    return config.skip_liblist and class_name.startswith(tuple(config.liblist))


def _entry_methods(apk: Apk, config: AmandroidConfig) -> list[MethodSignature]:
    """All lifecycle handlers the analyzer treats as entry points.

    With ``treat_unregistered_components_as_entries`` (the Amandroid
    default behaviour the paper's FP analysis exposes), *every* component
    subclass counts — manifest registration is not checked.
    """
    pool = apk.full_pool
    entries: list[MethodSignature] = []
    for cls in apk.classes.application_classes():
        base = component_kind_of(pool, cls.name)
        if base is None:
            continue
        if not config.treat_unregistered_components_as_entries:
            if not apk.manifest.is_registered(cls.name):
                continue
        for handler_name in LIFECYCLE_HANDLERS[base]:
            method = cls.find_method(handler_name)
            if method is not None and method.has_body:
                entries.append(method.signature())
    return entries


def _cha_targets(
    pool: ClassPool, expr_method: MethodSignature, kind: InvokeKind
) -> list[DexMethod]:
    """Class-hierarchy-analysis dispatch targets of one invocation."""
    targets: list[DexMethod] = []
    resolved = pool.resolve_method(expr_method)
    if kind in (InvokeKind.STATIC, InvokeKind.SPECIAL, InvokeKind.DIRECT):
        if resolved is not None and resolved.has_body:
            targets.append(resolved)
        return targets
    if resolved is not None and resolved.has_body:
        targets.append(resolved)
    sub_signature = expr_method.sub_signature()
    for subclass in pool.all_subclasses(expr_method.class_name):
        override = subclass.find_method(expr_method.name, expr_method.param_types)
        if override is not None and override.has_body:
            targets.append(override)
    if not targets and (cls := pool.get(expr_method.class_name)) is not None:
        if cls.is_interface:
            for implementer in pool.implementers_of(expr_method.class_name):
                method = implementer.find_method(expr_method.name, expr_method.param_types)
                if method is not None and method.has_body:
                    targets.append(method)
    return targets


def build_whole_app_callgraph(
    apk: Apk,
    config: Optional[AmandroidConfig] = None,
    deadline: Optional[Deadline] = None,
) -> CallGraph:
    """Build the whole-app call graph from all entry points."""
    config = config if config is not None else AmandroidConfig()
    deadline = deadline if deadline is not None else Deadline(None)
    pool = apk.full_pool
    graph = CallGraph()
    implicit_sites_used = 0

    worklist: list[MethodSignature] = []
    for entry in _entry_methods(apk, config):
        graph.entry_points.add(entry)
        worklist.append(entry)

    while worklist:
        deadline.check()
        current = worklist.pop()
        if current in graph.reachable:
            continue
        graph.reachable.add(current)
        if _is_skipped(config, current.class_name):
            graph.skipped_library_classes.add(current.class_name)
            continue  # liblist: do not look inside skipped libraries
        method = pool.resolve_method(current)
        if method is None or not method.has_body:
            continue

        # Static initializers of referenced classes run implicitly.
        for class_name in set(referenced_classes(method.body)):
            referenced = pool.get(class_name)
            if referenced is None:
                if not is_framework_class(class_name):
                    graph.unresolved_references += 1
                continue
            clinit = referenced.static_initializer()
            if clinit is not None and clinit.has_body:
                graph.add_edge(current, clinit.signature())
                worklist.append(clinit.signature())

        for stmt in method.body:
            expr = stmt.invoke_expr()
            if expr is None:
                continue
            deadline.check()

            # --- hardwired async edges --------------------------------
            async_target = _async_edge_target(pool, config, expr.method)
            if async_target is not None:
                receiver_type = expr.base.java_type if expr.base else None
                arg_types = [
                    arg.java_type for arg in expr.args if isinstance(arg, Local)
                ]
                dispatched = _resolve_async_callee(
                    pool, async_target, receiver_type, arg_types
                )
                if dispatched is not None:
                    if _implicit_budget_ok(config, expr.method, implicit_sites_used):
                        implicit_sites_used += 1
                        graph.add_edge(current, dispatched.signature())
                        worklist.append(dispatched.signature())
                    else:
                        graph.dropped_implicit_sites += 1

            # --- hardwired callback edges ------------------------------
            callback = config.callback_edges.get(expr.method.name)
            if callback is not None and expr.args:
                iface, handler_name = callback
                listener_type = (
                    expr.args[0].java_type
                    if isinstance(expr.args[0], Local)
                    else None
                )
                if listener_type is not None and pool.is_subtype_of(
                    listener_type, iface
                ):
                    listener_cls = pool.get(listener_type)
                    handler = (
                        listener_cls.find_method(handler_name)
                        if listener_cls is not None
                        else None
                    )
                    if handler is not None and handler.has_body:
                        if _implicit_budget_ok(config, expr.method, implicit_sites_used):
                            implicit_sites_used += 1
                            graph.add_edge(current, handler.signature())
                            worklist.append(handler.signature())
                        else:
                            graph.dropped_implicit_sites += 1

            # --- ICC edges (explicit Intents in the same method) -------
            if expr.method.name in ICC_CALL_APIS:
                for target_cls in _explicit_icc_targets(method):
                    component = pool.get(target_cls)
                    if component is None:
                        continue
                    base = component_kind_of(pool, target_cls)
                    if base is None:
                        continue
                    for handler_name in LIFECYCLE_HANDLERS[base]:
                        handler = component.find_method(handler_name)
                        if handler is not None and handler.has_body:
                            graph.add_edge(current, handler.signature())
                            worklist.append(handler.signature())

            # --- plain CHA dispatch ------------------------------------
            targets = _cha_targets(pool, expr.method, expr.kind)
            if not targets:
                target_cls = expr.method.class_name
                if not is_framework_class(target_cls) and pool.get(target_cls) is None:
                    graph.unresolved_references += 1
            for target in targets:
                signature = target.signature()
                graph.add_edge(current, signature)
                worklist.append(signature)

    if graph.unresolved_references > config.unresolved_procedure_tolerance:
        raise AnalysisError(
            f"Could not find procedure: {graph.unresolved_references} unresolved "
            "references during whole-app graph construction"
        )
    return graph


def _async_edge_target(
    pool: ClassPool, config: AmandroidConfig, invoked: MethodSignature
) -> Optional[str]:
    for (class_name, method_name), target in config.async_edges.items():
        if invoked.name != method_name:
            continue
        if invoked.class_name == class_name or pool.is_subtype_of(
            invoked.class_name, class_name
        ):
            return target
    return None


def _resolve_async_callee(
    pool: ClassPool,
    target_name: str,
    receiver_type: Optional[str],
    arg_types: list[str],
) -> Optional[DexMethod]:
    """Find the app-side method an async dispatch lands in.

    ``thread.start()`` → the receiver class's ``run()``;
    ``handler.post(r)`` → the Runnable argument class's ``run()``.
    """
    candidates = []
    if receiver_type is not None:
        candidates.append(receiver_type)
    candidates.extend(arg_types)
    for class_name in candidates:
        cls = pool.get(class_name)
        if cls is None or cls.is_framework:
            continue
        method = cls.find_method(target_name)
        if method is not None and method.has_body:
            return method
    return None


def _implicit_budget_ok(
    config: AmandroidConfig, invoked: MethodSignature, used: int
) -> bool:
    """The deterministic "unrobust implicit flow" behaviour.

    ``Thread.start``/``Handler.post`` edges are always wired;
    AsyncTask and click-listener sites beyond the per-app budget are
    dropped, standing in for the flaky handling Sec. VI-C observed.
    """
    always_robust = invoked.name in ("start", "post", "postDelayed", "schedule")
    if always_robust:
        return True
    return used < config.implicit_flow_site_budget


def _explicit_icc_targets(method: DexMethod) -> list[str]:
    """Component classes named by const-class operands in this method."""
    return [
        value.class_name
        for stmt in method.body
        for value in stmt.uses()
        if isinstance(value, ClassConstant)
    ]
