"""The raw text-search engine over the dexdump plaintext.

This is the "bytecode search space" half of Fig. 3: given a search
signature (already translated to dexdump format), find every line of the
disassembled plaintext that mentions it, and map each hit back to the
containing method so the program-analysis space can take over.

The line-level scanning itself is delegated to a pluggable
:class:`~repro.search.backends.SearchBackend` — the original O(text)
:class:`~repro.search.backends.LinearScanBackend` by default, or the
prebuilt :class:`~repro.search.backends.InvertedIndexBackend` whose
posting lists turn signature/descriptor/literal queries into dict
lookups.  All backends return identical hits; only the cost differs.

All searches run through a :class:`~repro.search.caching.SearchCommandCache`
— repeated commands (common when similar paths are explored across
different sinks) are served from cache, reproducing the Sec. IV-F
"search caching" enhancement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.dex.disassembler import Disassembly
from repro.dex.types import FieldSignature, MethodSignature, java_to_dex_type
from repro.search.backends import BackendSpec, JoinedText, create_backend
from repro.search.caching import SearchCommandCache


@dataclass(frozen=True)
class SearchHit:
    """One text hit: absolute line plus its program-space location."""

    line_no: int
    line: str
    #: The method whose disassembly block contains the hit (None when the
    #: hit is outside any method body, e.g. in a class header).
    method: Optional[MethodSignature]
    #: The IR statement index the hit line renders, if known.
    stmt_index: Optional[int]


#: The mnemonic slot of a rendered instruction line: address, 24-column
#: gutter, ``|`` and the code offset, then the opcode.  Method-header
#: lines use ``|[addr]`` instead of ``|off:`` and never match.  The
#: renderer's ``:06x``/``:04x`` widths are minimums that widen on huge
#: apps, hence ``{6,}``/``{4,}``.
_INSN_OPCODE_RE = re.compile(r"^[0-9a-f]{6,}: +\|[0-9a-f]{4,}: (\S+)")


def instruction_opcode(line: str) -> Optional[str]:
    """The mnemonic of a rendered instruction line, or None.

    Opcode filters must inspect this slot rather than substring-match the
    whole line: a ``const-string`` whose value embeds ``invoke-`` or a
    dex signature would otherwise pass for a call site.
    """
    match = _INSN_OPCODE_RE.match(line)
    return match.group(1) if match else None


class BytecodeSearcher:
    """Searches one app's disassembled plaintext, with command caching."""

    def __init__(
        self,
        disassembly: Disassembly,
        cache: Optional[SearchCommandCache] = None,
        backend: BackendSpec = None,
        store=None,
    ):
        self.disassembly = disassembly
        self.cache = cache if cache is not None else SearchCommandCache()
        self.backend = create_backend(backend, disassembly, store=store)

    # ------------------------------------------------------------------
    # Core primitives
    # ------------------------------------------------------------------
    @property
    def _text(self) -> str:
        """The joined plaintext (kept for introspection and tests)."""
        return JoinedText.for_disassembly(self.disassembly).text

    def _line_of_offset(self, offset: int) -> int:
        return JoinedText.for_disassembly(self.disassembly).line_of_offset(offset)

    def _hit(self, line_no: int) -> SearchHit:
        block = self.disassembly.block_at_line(line_no)
        stmt_index = block.stmt_index_for_line(line_no) if block else None
        return SearchHit(
            line_no=line_no,
            line=self.disassembly.lines[line_no],
            method=block.signature if block else None,
            stmt_index=stmt_index,
        )

    def search_literal(self, needle: str, kind: str = "raw") -> list[SearchHit]:
        """All hits of a literal substring (cached by command)."""
        return self.cache.get_or_run(
            kind, needle,
            lambda: [self._hit(n) for n in self.backend.literal_lines(needle)],
        )

    def search_pattern(self, pattern: str, kind: str = "raw-regex") -> list[SearchHit]:
        """All hits of a regular expression (cached by command)."""
        return self.cache.get_or_run(
            kind, pattern,
            lambda: [self._hit(n) for n in self.backend.pattern_lines(pattern)],
        )

    def _search_token(self, needle: str, kind: str) -> list[SearchHit]:
        """All hits of a token-shaped needle (cached by command).

        Uses the same ``(kind, command)`` cache keys as a literal search
        would, so cache rates are backend-independent.
        """
        return self.cache.get_or_run(
            kind, needle,
            lambda: [self._hit(n) for n in self.backend.token_lines(needle)],
        )

    # ------------------------------------------------------------------
    # Signature-level searches
    # ------------------------------------------------------------------
    def find_invocations(self, callee: MethodSignature) -> list[SearchHit]:
        """Invocation sites of a method signature (Fig. 3, step 1).

        The needle is the full dexdump signature; only lines whose
        *mnemonic* is ``invoke-*`` qualify — the same signature also
        appears in its own method header (not a call site) and can be
        embedded verbatim in a string literal, whose line would pass a
        naive ``"invoke-" in line`` substring check.
        """
        needle = callee.to_dex()
        hits = self._search_token(needle, kind="caller-method")
        return [
            h
            for h in hits
            if (op := instruction_opcode(h.line)) and op.startswith("invoke-")
        ]

    def find_field_accesses(
        self, fieldsig: FieldSignature, writes_only: bool = False
    ) -> list[SearchHit]:
        """Field access sites (the slicer's static-field search, Sec. V-A)."""
        needle = fieldsig.to_dex()
        hits = self._search_token(needle, kind="field")
        ops = ("iput", "sput") if writes_only else ("iget", "iput", "sget", "sput")
        return [
            h
            for h in hits
            if (op := instruction_opcode(h.line)) and op.startswith(ops)
        ]

    def find_const_class(self, class_name: str) -> list[SearchHit]:
        """``const-class`` mentions of a class (explicit-ICC parameters)."""
        descriptor = java_to_dex_type(class_name)
        hits = self._search_token(descriptor, kind="invoked-class")
        return [h for h in hits if instruction_opcode(h.line) == "const-class"]

    def find_const_string(self, value: str) -> list[SearchHit]:
        """``const-string`` mentions of a literal (implicit-ICC actions).

        The value is matched literally — never compiled into a regex —
        so regex metacharacters (``.*+?()[]`` and friends, common in
        intent actions) need no escaping and cannot mis-match.
        """
        hits = self._search_token(f'"{value}"', kind="raw")
        return [h for h in hits if instruction_opcode(h.line) == "const-string"]

    def find_invocations_by_name(
        self, method_name: str, param_blob: Optional[str] = None
    ) -> list[SearchHit]:
        """Invocations matched by method name regardless of receiver class.

        Used by the two-time ICC search, where the receiver of e.g.
        ``startService`` can be any ``Context`` subclass.  ``param_blob``
        optionally pins the dex parameter descriptor blob.  Both inputs
        are regex-escaped before entering the pattern.
        """
        params = re.escape(param_blob) if param_blob is not None else "[^)]*"
        pattern = rf"invoke-[a-z]+ \{{[^}}]*\}}, L[^;]+;\.{re.escape(method_name)}:\({params}\)"
        hits = self.search_pattern(pattern, kind="caller-method")
        return [
            h
            for h in hits
            if (op := instruction_opcode(h.line)) and op.startswith("invoke-")
        ]

    def classes_mentioning(self, class_name: str) -> set[str]:
        """Names of classes whose bytecode text mentions *class_name*.

        One recursive step of the static-initializer search (Sec. IV-C):
        "BackDroid first launches a search to find out a set of classes
        that invoke the SI class."
        """
        descriptor = java_to_dex_type(class_name)
        hits = self._search_token(descriptor, kind="invoked-class")
        users: set[str] = set()
        for hit in hits:
            if hit.method is None:
                continue
            if hit.method.class_name == class_name:
                continue
            # Class-header lines (superclass/interface declarations) have
            # no method; instruction-level mentions land here.
            users.add(hit.method.class_name)
        return users

    def subclass_header_mentions(self, class_name: str) -> set[str]:
        """Classes whose *header* (superclass/interfaces) names the class.

        Each hit is attributed independently: a hit whose enclosing
        class-descriptor line is missing or unparseable contributes
        nothing.  (The attribution previously leaked across hits through
        a loop-carried ``current_class``, so such a hit inherited the
        *previous* hit's class.)
        """
        descriptor = f"'{java_to_dex_type(class_name)}'"
        hits = self._search_token(descriptor, kind="invoked-class")
        users: set[str] = set()
        for hit in hits:
            if "Superclass" in hit.line or ": '" in hit.line:
                owner = self._owning_class_of(hit.line_no)
                if owner and owner != class_name:
                    users.add(owner)
        return users

    def _owning_class_of(self, line_no: int) -> Optional[str]:
        """The class of the nearest ``Class descriptor`` header above.

        None when no descriptor line precedes *line_no* or the nearest
        one cannot be parsed — never a value carried over from another
        hit.
        """
        for prior in range(line_no, -1, -1):
            line = self.disassembly.lines[prior]
            if "Class descriptor" in line:
                match = re.search(r"'L([^;]+);'", line)
                if match:
                    return match.group(1).replace("/", ".")
                return None
        return None
