"""Tests for the persistent warm-start artifact store.

Covers the store's four guarantees: restored artifacts are
byte-identical to fresh builds, stale entries (format-version or
content-hash mismatch) are invalidated, corrupted entries fall back to a
rebuild instead of failing, and the atomic-rename write protocol keeps
concurrent process-pool writers safe.
"""

import json

import pytest

from repro.core import BackDroidConfig, analyze_spec, run_batch
from repro.search.backends.indexed import TokenIndex
from repro.search.index import BytecodeSearcher
from repro.store import ArtifactStore, store_key
from repro.store.artifacts import FORMAT_VERSION
from repro.store.binshard import decode_shard, encode_shard
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import AppSpec, LibrarySpec, generate_app
from repro.workload.paperapps import build_heyzap, build_palcomp3


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _fresh_searcher(apk, store=None):
    return BytecodeSearcher(apk.disassembly, backend="indexed", store=store)


class TestKeying:
    def test_same_bytecode_same_key(self):
        assert store_key(build_heyzap().disassembly) == \
            store_key(build_heyzap().disassembly)

    def test_different_bytecode_different_key(self):
        assert store_key(build_heyzap().disassembly) != \
            store_key(build_palcomp3().disassembly)

    def test_key_memoized_per_disassembly(self):
        disassembly = build_heyzap().disassembly
        assert store_key(disassembly) is store_key(disassembly)


class TestIndexRoundTrip:
    def test_empty_store_misses(self, store):
        apk = build_heyzap()
        assert store.load_index(apk.disassembly) is None
        assert store.stats.index_misses == 1
        assert store.stats.index_hits == 0

    def test_restored_index_equals_fresh_build(self, store):
        apk = build_heyzap()
        fresh = TokenIndex.for_disassembly(apk.disassembly)
        store.save_index(apk.disassembly, fresh)

        restored = store.load_index(build_heyzap().disassembly)
        assert restored is not None
        assert restored.restored and not fresh.restored
        assert restored.build_seconds == 0.0
        assert restored.vocab == fresh.vocab
        assert restored.postings == fresh.postings
        assert restored.exact == fresh.exact
        assert restored.containing == fresh.containing
        assert restored._string_ids == fresh._string_ids
        assert restored.posting_entries == fresh.posting_entries
        assert store.stats.index_hits == 1

    def test_token_stream_round_trip(self, store):
        apk = build_heyzap()
        store.save_tokens(apk.disassembly)
        tokens = store.load_tokens(build_heyzap().disassembly)
        assert tokens == apk.disassembly.tokens
        assert store.stats.token_hits == 1

    def test_backend_restores_and_reports_zero_build(self, store):
        cold = _fresh_searcher(build_heyzap(), store=store)
        cold.backend.index  # build + save
        assert not cold.backend.stats.index_restored

        warm = _fresh_searcher(build_heyzap(), store=store)
        warm.backend.index
        assert warm.backend.stats.index_restored
        assert warm.backend.stats.index_build_seconds == 0.0

    def test_restored_index_shared_via_disassembly_memo(self, store):
        cold = _fresh_searcher(build_heyzap(), store=store)
        cold.backend.index
        apk = build_heyzap()
        first = _fresh_searcher(apk, store=store)
        second = _fresh_searcher(apk, store=store)
        assert first.backend.index is second.backend.index


def _only_shard_path(store, disassembly):
    """The shard file of a single-group app (asserts there is one)."""
    groups = store._groups(disassembly)
    assert len(groups) == 1
    return store._shard_path(groups[0][1])


class TestInvalidation:
    def test_corrupt_manifest_self_heals_on_index_load(self, store):
        # A torn manifest over intact shards must not wedge the entry:
        # the next load republishes it and probes go warm again.
        apk = build_heyzap()
        key = store_key(apk.disassembly)
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        store._manifest_path(key).write_text("{torn")
        assert store.probe(key).level == "none"

        restored = store.load_index(build_heyzap().disassembly)
        assert restored is not None
        assert store.probe(key).level == "index"
        assert all(entry.ok for entry in store.verify())

    def test_probe_never_counts_corrupt_entries(self, store):
        # probe() is advisory: a scheduler probing one damaged manifest
        # on every submission must not inflate the load-path counter.
        apk = build_heyzap()
        key = store_key(apk.disassembly)
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        store._manifest_path(key).write_text("{torn")
        before = store.stats.corrupt_entries
        for _ in range(5):
            store.probe(key)
        assert store.stats.corrupt_entries == before

    def test_manifest_version_mismatch_is_a_token_miss(self, store):
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        path = store._manifest_path(store_key(apk.disassembly))
        payload = json.loads(path.read_text())
        payload["version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))

        assert store.load_tokens(build_heyzap().disassembly) is None
        assert store.probe(store_key(apk.disassembly)).level == "none"
        assert store.stats.corrupt_entries >= 1

    def test_manifest_key_mismatch_is_a_token_miss(self, store):
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        path = store._manifest_path(store_key(apk.disassembly))
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))

        assert store.load_tokens(build_heyzap().disassembly) is None
        assert store.stats.corrupt_entries >= 1

    def test_changed_bytecode_never_hits_old_entry(self, store):
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        assert store.load_index(build_palcomp3().disassembly) is None

    def test_garbage_shard_is_patched_in_place(self, store):
        # A torn shard is indistinguishable from a missing one: the
        # load path re-folds just that group from the live disassembly
        # and publishes the repaired shard.
        apk = build_heyzap()
        fresh = TokenIndex.for_disassembly(apk.disassembly)
        store.save_index(apk.disassembly, fresh)
        _only_shard_path(store, apk.disassembly).write_text("{not json at all")

        warm = _fresh_searcher(build_heyzap(), store=store)
        warm.backend.index  # must repair, not raise
        assert warm.backend.stats.shards_patched == 1
        assert store.stats.corrupt_entries >= 1
        assert warm.backend.index.vocab == fresh.vocab
        # The patch republished the shard: a third run restores whole.
        third = _fresh_searcher(build_heyzap(), store=store)
        third.backend.index
        assert third.backend.stats.index_restored
        assert third.backend.stats.shards_patched == 0
        assert third.backend.stats.index_build_seconds == 0.0

    def test_truncated_shard_shape_is_patched(self, tmp_path):
        # Shape truncation is a JSON-container failure mode (the binary
        # container catches truncation structurally); the legacy writer
        # must patch it the same way.
        store = ArtifactStore(tmp_path / "store", shard_format="json")
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        path = _only_shard_path(store, apk.disassembly)
        payload = json.loads(path.read_text())
        del payload["postings"]
        path.write_text(json.dumps(payload))
        restored = store.load_index(build_heyzap().disassembly)
        assert restored is not None and restored.patched_groups == 1
        assert restored.vocab == TokenIndex.for_disassembly(
            build_heyzap().disassembly
        ).vocab


def _store_config(tmp_path, mode="full", **kwargs):
    return BackDroidConfig(
        search_backend="indexed",
        store_dir=str(tmp_path / "store"),
        store_mode=mode,
        **kwargs,
    )


class TestOutcomeReuse:
    def test_second_run_is_a_store_hit(self, tmp_path):
        spec = benchmark_app_spec(0, scale=0.05)
        config = _store_config(tmp_path)
        cold = analyze_spec(spec, config)
        warm = analyze_spec(spec, config)
        assert not cold.store_hit
        assert warm.store_hit
        assert warm.findings == cold.findings
        assert warm.sink_count == cold.sink_count
        assert warm.package == cold.package

    def test_config_change_invalidates_outcome(self, tmp_path):
        spec = benchmark_app_spec(0, scale=0.05)
        analyze_spec(spec, _store_config(tmp_path))
        other = analyze_spec(
            spec, _store_config(tmp_path, sink_rules=("open-port",))
        )
        assert not other.store_hit

    def test_backend_change_invalidates_outcome(self, tmp_path):
        # An outcome recorded under one backend must not be served to a
        # run configured for another: its backend/cache-stat fields
        # would misreport the run.
        spec = benchmark_app_spec(0, scale=0.05)
        analyze_spec(spec, _store_config(tmp_path))  # indexed
        other = analyze_spec(
            spec,
            BackDroidConfig(
                search_backend="linear",
                store_dir=str(tmp_path / "store"),
                store_mode="full",
            ),
        )
        assert not other.store_hit
        assert other.backend == "linear"

    def test_index_mode_never_reuses_outcomes(self, tmp_path):
        spec = benchmark_app_spec(0, scale=0.05)
        config = _store_config(tmp_path, mode="index")
        analyze_spec(spec, config)
        warm = analyze_spec(spec, config)
        assert not warm.store_hit
        assert warm.index_restored

    def test_corrupt_outcome_falls_back_to_analysis(self, tmp_path):
        spec = benchmark_app_spec(0, scale=0.05)
        config = _store_config(tmp_path)
        cold = analyze_spec(spec, config)
        store = config.artifact_store()
        outcome_files = [
            p for e in store.entries() for p in e.iterdir()
            if p.name.startswith("outcome-")
        ]
        assert outcome_files
        for path in outcome_files:
            path.write_text('{"version": 1, "outcome": "garbage"}')
        warm = analyze_spec(spec, config)
        assert not warm.store_hit
        assert warm.findings == cold.findings

    def test_unknown_store_mode_rejected(self, tmp_path):
        config = _store_config(tmp_path, mode="quantum")
        outcome = analyze_spec(benchmark_app_spec(0, scale=0.05), config)
        assert not outcome.ok
        assert "unknown store mode" in outcome.error


class TestConcurrency:
    def test_process_pool_writers_then_warm_run(self, tmp_path):
        specs = [benchmark_app_spec(i, scale=0.05) for i in range(4)]
        config = _store_config(tmp_path)
        cold = run_batch(specs, config, executor="process", max_workers=4)
        assert not cold.failures
        assert cold.store_hits == 0

        warm = run_batch(specs, config, executor="process", max_workers=4)
        assert not warm.failures
        assert warm.store_hits == len(specs)
        assert warm.warm_hit_rate == 1.0
        assert [o.findings for o in warm.outcomes] == \
            [o.findings for o in cold.outcomes]

    def test_no_temp_files_left_behind(self, tmp_path):
        specs = [benchmark_app_spec(i, scale=0.05) for i in range(3)]
        config = _store_config(tmp_path)
        run_batch(specs, config, executor="process", max_workers=3)
        leftovers = list((tmp_path / "store").rglob("*.tmp"))
        assert leftovers == []

    def test_duplicate_specs_race_benignly(self, tmp_path):
        # Same app analyzed by several workers at once: every writer
        # publishes identical content, so last-rename-wins is safe.
        specs = [benchmark_app_spec(0, scale=0.05)] * 4
        config = _store_config(tmp_path)
        result = run_batch(specs, config, executor="process", max_workers=4)
        assert not result.failures
        store = config.artifact_store()
        restored = store.load_index(generate_app(specs[0]).apk.disassembly)
        assert restored is not None


class TestMaintenance:
    def test_describe_counts_entries_and_kinds(self, store):
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        inventory = store.describe()
        assert inventory.entries == 1
        assert inventory.files_by_kind["manifest"] == 1
        assert inventory.files_by_kind["shard"] >= 1
        assert inventory.shards == inventory.files_by_kind["shard"]
        assert inventory.shard_refs == inventory.shards  # one app: no sharing
        assert inventory.logical_shard_bytes == inventory.shard_bytes
        assert inventory.dedup_ratio == 1.0 and inventory.bytes_saved == 0
        assert inventory.total_bytes > 0
        assert "entries     : 1" in inventory.render()
        assert "dedup ratio" in inventory.render()

    def test_gc_clears_everything_by_default(self, store):
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        result = store.gc()
        assert result.entries_removed == 1
        assert result.shards_removed >= 1
        assert result.bytes_reclaimed > 0
        inventory = store.describe()
        assert inventory.entries == 0 and inventory.shards == 0

    def test_gc_keeps_fresh_entries(self, store):
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        result = store.gc(max_age_seconds=3600.0)
        assert result.entries_removed == 0 and result.shards_removed == 0
        inventory = store.describe()
        assert inventory.entries == 1 and inventory.shards >= 1

    def test_describe_empty_store(self, store):
        inventory = store.describe()
        assert inventory.entries == 0
        assert inventory.total_bytes == 0


class TestProbe:
    def test_probe_levels_escalate_with_artifacts(self, store):
        apk = build_heyzap()
        key = store_key(apk.disassembly)
        assert store.probe(key).level == "none"

        # Shards carry both the token stream and the mini-index, so the
        # token save already publishes a fully restorable entry.
        store.save_tokens(apk.disassembly)
        probe = store.probe(key)
        assert probe.level == "index" and probe.warm
        assert probe.shards_total == probe.shards_present >= 1

        store.save_outcome(apk.disassembly, "cfg1", {"package": "x"})
        assert store.probe(key, "cfg1").level == "outcome"
        # A different config's probe does not see that outcome.
        assert store.probe(key, "cfg2").level == "index"
        assert store.probe(key).level == "index"

    def test_probe_reports_partial_when_a_shard_is_missing(self, store):
        lib = LibrarySpec(package="org.probed.sdk", seed=3, classes=4)
        apk = generate_app(
            AppSpec(package="com.probe.host", seed=1, libraries=(lib,))
        ).apk
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        key = store_key(apk.disassembly)
        groups = store._groups(apk.disassembly)
        assert len(groups) >= 2
        store._shard_path(groups[0][1]).unlink()

        probe = store.probe(key)
        assert probe.level == "partial" and probe.warm
        assert probe.shards_present == probe.shards_total - 1

        # With every shard gone the manifest alone offers no warmth.
        for _, sha in groups[1:]:
            store._shard_path(sha).unlink()
        assert store.probe(key).level == "none"

    def test_spec_key_round_trip(self, store):
        assert store.load_spec_key("ab" * 8) is None
        store.save_spec_key("ab" * 8, "deadbeef" * 8)
        assert store.load_spec_key("ab" * 8) == "deadbeef" * 8

    def test_spec_key_self_heals_on_remap(self, store):
        # A generator change survived by the store: the next analysis
        # overwrites the stale mapping instead of misrouting forever.
        store.save_spec_key("ab" * 8, "old0" * 16)
        store.save_spec_key("ab" * 8, "new1" * 16)
        assert store.load_spec_key("ab" * 8) == "new1" * 16

    def test_gc_and_describe_cover_the_specmap(self, store):
        apk = build_heyzap()
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        store.save_spec_key("ab" * 8, store_key(apk.disassembly))

        inventory = store.describe()
        assert inventory.files_by_kind["specmap"] == 1
        result = store.gc()
        assert result.entries_removed == 1 and result.bytes_reclaimed > 0
        assert store.load_spec_key("ab" * 8) is None
        assert store.describe().files_by_kind == {}

    def test_analyze_spec_records_the_spec_mapping(self, tmp_path):
        spec = benchmark_app_spec(0, scale=0.05)
        config = BackDroidConfig(
            search_backend="indexed", store_dir=str(tmp_path / "store")
        )
        assert analyze_spec(spec, config).ok
        from repro.workload.generator import spec_fingerprint

        store = config.artifact_store()
        key = store.load_spec_key(spec_fingerprint(spec))
        assert key == store_key(generate_app(spec).apk.disassembly)
        assert store.probe(key).warm


class TestVerify:
    def _populate(self, store, apk):
        store.save_index(
            apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
        )
        return store_key(apk.disassembly)

    def test_intact_store_verifies_clean(self, store):
        keys = {
            self._populate(store, build_heyzap()),
            self._populate(store, build_palcomp3()),
        }
        results = store.verify()
        assert {entry.key for entry in results} == keys
        assert all(entry.status == "ok" and entry.ok for entry in results)

    def test_tampered_postings_detected(self, store):
        # CRC-clean bytes whose posting lists lie: decode, shift every
        # line in one posting, re-encode under the same content address.
        apk = build_heyzap()
        self._populate(store, apk)
        path = _only_shard_path(store, apk.disassembly)
        payload = decode_shard(path.read_bytes())
        payload["postings"][0] = [line + 1 for line in payload["postings"][0]]
        path.write_bytes(encode_shard(payload, payload["key"]))

        (entry,) = store.verify()
        assert entry.status == "mismatch" and not entry.ok
        assert "postings" in entry.detail

    def test_shard_swap_breaks_the_content_address(self, store):
        # A shard replaced by *another group's valid content* passes the
        # mini-index parity check but fails the content-address replay.
        apk = build_heyzap()
        other = build_palcomp3()
        self._populate(store, apk)
        self._populate(store, other)
        target = _only_shard_path(store, apk.disassembly)
        impostor = _only_shard_path(store, other.disassembly)
        payload = decode_shard(impostor.read_bytes())
        target.write_bytes(
            encode_shard(payload, store._groups(apk.disassembly)[0][1])
        )

        statuses = {entry.key: entry for entry in store.verify()}
        bad = statuses[store_key(apk.disassembly)]
        assert bad.status == "mismatch" and "content address" in bad.detail
        assert statuses[store_key(other.disassembly)].status == "ok"

    def test_unreadable_shard_reported_corrupt(self, store):
        apk = build_heyzap()
        self._populate(store, apk)
        _only_shard_path(store, apk.disassembly).write_text("{torn")
        (entry,) = store.verify()
        assert entry.status == "corrupt" and not entry.ok

    def test_missing_shard_flagged(self, store):
        apk = build_heyzap()
        self._populate(store, apk)
        _only_shard_path(store, apk.disassembly).unlink()
        (entry,) = store.verify()
        assert entry.status == "missing-shard" and not entry.ok

    def test_shifted_manifest_offset_detected(self, store):
        # Shards verify clean individually; a corrupted start_line would
        # compose postings onto the wrong absolute lines, so verify must
        # check that group offsets tile.
        lib = LibrarySpec(package="org.tiled.sdk", seed=5, classes=4)
        apk = generate_app(
            AppSpec(package="com.tiled.host", seed=1, libraries=(lib,))
        ).apk
        key = store_key(apk.disassembly)
        store.save_index(apk.disassembly, TokenIndex.for_disassembly(apk.disassembly))
        path = store._manifest_path(key)
        payload = json.loads(path.read_text())
        assert len(payload["groups"]) >= 2
        payload["groups"][1]["start_line"] += 3
        path.write_text(json.dumps(payload))

        entries = {e.key: e for e in store.verify()}
        assert entries[key].status == "mismatch"
        assert "tile" in entries[key].detail

    def test_torn_manifest_reported_corrupt(self, store):
        key = self._populate(store, build_heyzap())
        store._manifest_path(key).write_text("{torn")
        (entry,) = store.verify()
        assert entry.status == "corrupt" and not entry.ok
        assert "manifest" in entry.detail

    def test_outcome_only_entry_skipped(self, store):
        apk = build_heyzap()
        store.save_outcome(apk.disassembly, "cfg", {"package": "x"})
        (entry,) = store.verify()
        assert entry.status == "no-index" and entry.ok

    def test_stale_format_version_is_a_skip_not_a_failure(self, store):
        # A store written by an older format (e.g. restored from a CI
        # cache prefix) is rebuilt by live runs, never "corruption".
        key = self._populate(store, build_heyzap())
        path = store._manifest_path(key)
        payload = json.loads(path.read_text())
        # v1 predates the compat window (v2 JSON is still readable).
        payload["version"] = 1
        path.write_text(json.dumps(payload))

        (entry,) = store.verify()
        assert entry.status == "stale" and entry.ok
