"""Unit tests for the whole-app constant propagation's semantics."""

from repro.baseline.callgraph import build_whole_app_callgraph
from repro.baseline.config import AmandroidConfig, Deadline
from repro.baseline.wholeapp import _WholeAppConstants
from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.core.values import ConstFact
from repro.dex.builder import AppBuilder
from repro.dex.instructions import Local
from repro.dex.types import FieldSignature, MethodSignature


def _propagated(build_body):
    """Build an app, run whole-app propagation, return the instance."""
    app = AppBuilder()
    manifest = Manifest("com.w")
    main = app.new_class("com.w.Main", superclass="android.app.Activity")
    main.default_constructor()
    oc = main.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    build_body(oc, app)
    oc.return_void()
    manifest.register("com.w.Main", ComponentKind.ACTIVITY)
    apk = Apk(package="com.w", classes=app.build(), manifest=manifest)
    config = AmandroidConfig(timeout_seconds=None)
    graph = build_whole_app_callgraph(apk, config)
    propagation = _WholeAppConstants(apk, graph, config, Deadline(None))
    propagation.run()
    return propagation


class TestWholeAppConstants:
    def test_param_facts_flow_into_callees(self):
        def body(oc, app):
            helper = app.new_class("com.w.H")
            m = helper.method("use", params=["java.lang.String"], static=True)
            m.param(0)
            m.return_void()
            t = oc.const_string("AES/ECB/PKCS5Padding")
            oc.invoke_static("com.w.H", "use", args=[t],
                             params=["java.lang.String"])

        propagation = _propagated(body)
        sig = MethodSignature("com.w.H", "use", ("java.lang.String",), "void")
        fact = propagation._param_in[(sig, 0)]
        assert fact == ConstFact("AES/ECB/PKCS5Padding")

    def test_multiple_callers_merge_param_facts(self):
        def body(oc, app):
            helper = app.new_class("com.w.H")
            m = helper.method("use", params=["java.lang.String"], static=True)
            m.param(0)
            m.return_void()
            for value in ("AES", "DES"):
                t = oc.const_string(value)
                oc.invoke_static("com.w.H", "use", args=[t],
                                 params=["java.lang.String"])

        propagation = _propagated(body)
        sig = MethodSignature("com.w.H", "use", ("java.lang.String",), "void")
        fact = propagation._param_in[(sig, 0)]
        assert set(fact.possible_consts()) == {"AES", "DES"}

    def test_return_facts_flow_back(self):
        def body(oc, app):
            helper = app.new_class("com.w.H")
            m = helper.method("mode", returns="java.lang.String", static=True)
            v = m.const_string("DES")
            m.return_value(v)
            got = oc.invoke_static("com.w.H", "mode", returns="java.lang.String")
            # keep the local alive for inspection
            oc.move(got)

        propagation = _propagated(body)
        sig = MethodSignature("com.w.H", "mode", (), "java.lang.String")
        assert propagation._returns[sig] == ConstFact("DES")

    def test_global_field_map_shared(self):
        def body(oc, app):
            conf = app.new_class("com.w.Conf")
            conf.field("MODE", "java.lang.String", static=True)
            clinit = conf.static_initializer()
            clinit.put_static("com.w.Conf", "MODE", "java.lang.String", "AES")
            clinit.return_void()
            oc.get_static("com.w.Conf", "MODE", "java.lang.String")

        propagation = _propagated(body)
        field = FieldSignature("com.w.Conf", "MODE", "java.lang.String")
        assert propagation._fields[field] == ConstFact("AES")
