"""BackDroid's public analysis API.

The single entry point for programmatic use::

    from repro.api import AnalysisSession, AnalysisRequest

    session = AnalysisSession(apk, default_backend="indexed")
    crypto = session.run(AnalysisRequest(rules=("crypto-ecb",)))
    ssl = session.run(AnalysisRequest(rules=("ssl-verifier",)))
    assert ssl.report.backend_stats["index_build_seconds"] == 0.0

* :mod:`repro.api.session`  — :class:`AnalysisSession` (expensive
  per-app state, many requests, zero rebuilds) and the
  :class:`SessionCache` shared by the batch driver and the service;
* :mod:`repro.api.request`  — the composable :class:`AnalysisRequest`;
* :mod:`repro.api.registry` — :class:`TargetRegistry` for client sink
  specs and detectors;
* :mod:`repro.api.envelope` — the versioned :class:`ReportEnvelope`
  (``schema_version``, exact ``as_dict``/``from_dict`` round-trip);
* :mod:`repro.api.events`   — the streaming progress events.

``BackDroid(config).analyze(apk)`` remains as a thin compatibility shim
over a one-shot session.
"""

from repro.api.envelope import (
    ENVELOPE_KIND,
    SCHEMA_VERSION,
    ReportEnvelope,
    report_from_dict,
    report_to_dict,
)
from repro.api.events import (
    AnalysisEvent,
    AnalysisFinished,
    SinkAnalyzed,
    SinkDiscovered,
)
from repro.api.registry import TargetRegistry, builtin_rules
from repro.api.request import (
    DEFAULT_RULES,
    AnalysisRequest,
    analysis_request_from_payload,
)
from repro.api.session import AnalysisSession, SessionCache

__all__ = [
    "AnalysisEvent",
    "AnalysisFinished",
    "AnalysisRequest",
    "AnalysisSession",
    "DEFAULT_RULES",
    "ENVELOPE_KIND",
    "ReportEnvelope",
    "SCHEMA_VERSION",
    "SessionCache",
    "SinkAnalyzed",
    "SinkDiscovered",
    "TargetRegistry",
    "analysis_request_from_payload",
    "builtin_rules",
    "report_from_dict",
    "report_to_dict",
]
