"""Sec. IV-F — search caching, sink caching and loop detection stats.

Paper numbers:

* search-command cache rate: 23.39% average per app (min 2.97%, max
  88.95%);
* sink-API-call cache rate: 13.86% average (max 68.18%);
* at least one dead method loop detected in 60% of apps; CrossBackward
  is the most common loop type.
"""

import statistics
from collections import Counter

from benchmarks.conftest import emit_table, render_table, run_corpus
from repro.search.loops import LoopKind


def test_cache_and_loop_statistics(benchmark):
    rows = benchmark.pedantic(run_corpus, rounds=1, iterations=1)

    search_rates = [r.bd_cache_rate for r in rows]
    sink_rates = [r.bd_sink_cache_rate for r in rows]
    apps_with_loop = [r for r in rows if any(r.bd_loop_counts.values())]
    loop_totals: Counter = Counter()
    for row in rows:
        for kind, count in row.bd_loop_counts.items():
            loop_totals[kind] += count

    most_common = loop_totals.most_common(1)[0][0] if loop_totals else None
    table = render_table(
        "Sec. IV-F: implementation-enhancement statistics",
        ["Metric", "Measured", "Paper"],
        [
            ["search cache rate (avg)", f"{statistics.fmean(search_rates):.2%}",
             "23.39%"],
            ["search cache rate (min)", f"{min(search_rates):.2%}", "2.97%"],
            ["search cache rate (max)", f"{max(search_rates):.2%}", "88.95%"],
            ["sink cache rate (avg)", f"{statistics.fmean(sink_rates):.2%}",
             "13.86%"],
            ["sink cache rate (max)", f"{max(sink_rates):.2%}", "68.18%"],
            ["apps with >=1 dead loop",
             f"{len(apps_with_loop) / len(rows):.0%}", "60%"],
            ["most common loop type",
             most_common.value if most_common else "none", "CrossBackward"],
        ],
    )
    emit_table("cache_and_loops", table)

    # Shape assertions.
    assert statistics.fmean(search_rates) > 0.05, "search caching must pay off"
    assert max(search_rates) > statistics.fmean(search_rates)
    assert any(sink_rates), "sink caching fires on shared host methods"
    assert apps_with_loop, "dead loops occur in the corpus"
