#!/usr/bin/env python3
"""SSL-misconfiguration vetting: the paper's Heyzap walkthrough.

Rebuilds the Sec. IV-C example — an ad library whose
``MySSLSocketFactory`` installs ``ALLOW_ALL_HOSTNAME_VERIFIER``, reachable
only through ``APIClient.<clinit>`` — and shows each stage of the
targeted analysis:

1. the initial sink search locating ``setHostnameVerifier``;
2. the recursive static-initializer search proving the ``<clinit>``
   reachable via the class-use chain APIClient <- AdModel <- Activity;
3. the SSG and the resolved verifier value;
4. the final finding.

Run:  python examples/ssl_vetting.py
"""

from repro.core import BackDroid, BackDroidConfig
from repro.dex.types import MethodSignature
from repro.search.clinit import clinit_reachability_search
from repro.search.engine import CallerResolutionEngine
from repro.workload.paperapps import build_heyzap


def main() -> None:
    apk = build_heyzap()
    print(f"app: {apk.package} ({apk.class_count()} classes)\n")

    driver = BackDroid(
        BackDroidConfig(sink_rules=("ssl-verifier",), collect_ssg_dumps=True)
    )

    # Stage 1: the initial sink search over the dexdump plaintext.
    sites = driver.find_sink_call_sites(apk)
    print("1) initial sink search:")
    for site in sites:
        print(f"   {site.spec.description} found in {site.method.to_soot()}")

    # Stage 2: the recursive <clinit> reachability search.
    engine = CallerResolutionEngine(apk)
    result = clinit_reachability_search(
        engine.searcher, apk.full_pool, apk.manifest, "com.heyzap.internal.APIClient"
    )
    print("\n2) recursive static-initializer search:")
    print(f"   APIClient.<clinit> reachable: {result.reachable}")
    print("   witness chain: " + "  <-  ".join(result.chain))

    # Stages 3-4: slicing, forward propagation, detection.
    report = driver.analyze(apk)
    print("\n3) self-contained slicing graph:")
    for note in report.notes:
        print("   " + note.replace("\n", "\n   "))
    print("\n4) findings:")
    for finding in report.findings:
        print(f"   {finding}")
    assert report.vulnerable, "the Heyzap shape must be flagged"


if __name__ == "__main__":
    main()
