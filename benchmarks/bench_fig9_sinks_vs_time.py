"""Fig. 9 — the number of sink API calls vs BackDroid's analysis time.

The paper's point: BackDroid's cost "largely depends on the number of
sink API calls analyzed, instead of the app/code size that existing
tools are mainly affected by".  Fig. 9 shows an approximately linear
trend with per-sink cost under 30 seconds (i.e. 0.5 paper-minutes per
sink on our scale).

The sweep holds the bulk-code volume constant and varies only the sink
count, isolating the per-sink slope; a second series varies only the
bulk size at a fixed sink count to show the near-flat size dependence.
"""

import statistics

from benchmarks.conftest import emit_table, render_table, to_paper_minutes
from repro.core import BackDroid
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PatternSpec

_SINK_COUNTS = (1, 5, 10, 20, 40, 60, 80, 100)
_SIZES = (20, 60, 120, 240)
_FIXED_FILLER = 60
_FIXED_SINKS = 10


def _sweep():
    driver = BackDroid()
    sink_series = []
    for count in _SINK_COUNTS:
        patterns = tuple(
            PatternSpec("wrapper_chain", insecure=(i % 3 == 0)) for i in range(count)
        )
        generated = generate_app(
            AppSpec(package=f"com.fig9.s{count}", seed=count, patterns=patterns,
                    filler_classes=_FIXED_FILLER)
        )
        report = driver.analyze(generated.apk)
        sink_series.append((count, report.sink_count, report.analysis_seconds))

    size_series = []
    for filler in _SIZES:
        patterns = tuple(
            PatternSpec("wrapper_chain", insecure=False) for _ in range(_FIXED_SINKS)
        )
        generated = generate_app(
            AppSpec(package=f"com.fig9.z{filler}", seed=filler, patterns=patterns,
                    filler_classes=filler)
        )
        report = driver.analyze(generated.apk)
        size_series.append(
            (generated.apk.method_count(), report.analysis_seconds)
        )
    return sink_series, size_series


def test_fig9_sinks_vs_time(benchmark):
    sink_series, size_series = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    sink_rows = [
        [str(requested), str(analyzed), f"{seconds:.3f}s",
         f"{to_paper_minutes(seconds):.2f}m",
         f"{to_paper_minutes(seconds) / max(analyzed, 1):.3f}m/sink"]
        for requested, analyzed, seconds in sink_series
    ]
    size_rows = [
        [str(methods), f"{seconds:.3f}s", f"{to_paper_minutes(seconds):.2f}m"]
        for methods, seconds in size_series
    ]
    table = (
        render_table(
            "Fig. 9a: sink count vs BackDroid time (bulk code fixed)",
            ["#Sinks", "Analyzed", "Seconds", "Paper-min", "Per-sink"],
            sink_rows,
        )
        + "\n\n"
        + render_table(
            "Fig. 9b: app size vs BackDroid time (sink count fixed at 10)",
            ["#Methods", "Seconds", "Paper-min"],
            size_rows,
        )
    )
    emit_table("fig9_sinks_vs_time", table)

    # Shape assertions: time grows with sinks, roughly linearly, and the
    # per-sink cost stays below the paper's 30-second (0.5 paper-minute)
    # guideline.
    times = [seconds for _, _, seconds in sink_series]
    assert times[-1] > times[0], "more sinks must cost more"
    per_sink = [
        to_paper_minutes(seconds) / analyzed
        for _, analyzed, seconds in sink_series
        if analyzed
    ]
    assert statistics.median(per_sink) < 0.5, "per-sink cost < 30 paper-seconds"
    # Size dependence at fixed sinks is sub-linear relative to the
    # 12x method growth in the size series.
    growth = size_series[-1][1] / max(size_series[0][1], 1e-9)
    methods_growth = size_series[-1][0] / size_series[0][0]
    assert growth < methods_growth, "size affects BackDroid sub-linearly"
