"""Command-line front end.

Because this reproduction operates on a synthetic bytecode substrate
(there is no APK parser — see DESIGN.md), the CLI works on the built-in
app sources:

* the paper's worked examples (``lgtv``, ``heyzap``, ``palcomp3``);
* generated benchmark apps (``bench:<index>``).

Commands::

    backdroid analyze lgtv --rules open-port --dump-ssg
    backdroid analyze bench:7 --backend indexed --json
    backdroid compare bench:3 --timeout 5
    backdroid corpus --year 2018 --count 1000
    backdroid batch bench:0..20 --backend indexed --workers 8
    backdroid batch --year 2016 --count 24 --scale 0.2
    backdroid batch bench:0..50 --store .bdstore --store-mode full
    backdroid store warm bench:0..50 --store .bdstore
    backdroid store stats --store .bdstore
    backdroid store verify --store .bdstore
    backdroid store migrate --store .bdstore
    backdroid store gc --store .bdstore --max-age-hours 48
    backdroid serve --port 8099 --store .bdstore --cold-workers 4 --fast-lane-workers 1
    backdroid inventory bench:3
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
from typing import Optional

from repro.android.apk import Apk
from repro.api import AnalysisRequest, AnalysisSession
from repro.baseline import AmandroidConfig, AmandroidStyleAnalyzer
from repro.core import STORE_MODES, BackDroid, BackDroidConfig, run_batch
from repro.core.batch import EXECUTORS, analyze_spec
from repro.search.backends import BACKENDS, DEFAULT_BACKEND
from repro.store import ArtifactStore, store_key
from repro.workload.corpus import (
    benchmark_app_spec,
    sample_year_corpus,
    year_app_spec,
)
from repro.workload.generator import AppSpec, generate_app, spec_fingerprint
from repro.workload.paperapps import build_heyzap, build_lg_tv_plus, build_palcomp3

_PAPER_APPS = {
    "lgtv": build_lg_tv_plus,
    "heyzap": build_heyzap,
    "palcomp3": build_palcomp3,
}


def _bench_index(spec: str) -> int:
    """The index of a ``bench:<index>`` spec, with a friendly error."""
    raw = spec.split(":", 1)[1]
    try:
        index = int(raw)
    except ValueError:
        raise SystemExit(
            f"bad benchmark app spec {spec!r}: the part after 'bench:' must "
            f"be a non-negative integer, e.g. bench:7"
        ) from None
    if index < 0:
        raise SystemExit(
            f"bad benchmark app spec {spec!r}: the index must be >= 0"
        )
    return index


def _load_app(name: str) -> Apk:
    if name in _PAPER_APPS:
        return _PAPER_APPS[name]()
    if name.startswith("bench:"):
        return generate_app(benchmark_app_spec(_bench_index(name))).apk
    raise SystemExit(
        f"unknown app {name!r}: use one of {sorted(_PAPER_APPS)} or bench:<index>"
    )


def _rules(args) -> tuple[str, ...]:
    return tuple(args.rules.split(",")) if args.rules else ("crypto-ecb", "ssl-verifier")


def cmd_analyze(args) -> int:
    apk = _load_app(args.app)
    config = BackDroidConfig(
        sink_rules=_rules(args),
        check_class_hierarchy_in_initial_search=args.hierarchy_fix,
        collect_ssg_dumps=args.dump_ssg,
        search_backend=args.backend,
        store_dir=args.store,
        store_mode=args.store_mode,
    )
    session = AnalysisSession.from_config(apk, config)
    request = AnalysisRequest.from_config(config)
    if args.trace:
        # A throwaway per-invocation tracer: the root span is ambient,
        # so the pipeline's library spans nest under it with no
        # plumbing (same mechanism the service scheduler uses).
        from repro import telemetry

        tracer = telemetry.Tracer(enabled=True)
        with tracer.span("analyze", attrs={"app": args.app}) as root:
            envelope = session.run(request)
        envelope.trace = {
            "trace_id": root.trace_id,
            "spans": tracer.collect(root.trace_id),
        }
    else:
        envelope = session.run(request)
    report = envelope.report
    if args.json:
        print(json.dumps(envelope.as_dict(), indent=2, sort_keys=True))
        return 1 if report.vulnerable else 0
    print(report.to_text())
    if args.dump_ssg:
        for note in report.notes:
            print()
            print(note)
    if args.trace and envelope.trace:
        from repro.telemetry import render_span_tree

        print()
        print("trace " + envelope.trace["trace_id"])
        print(render_span_tree(envelope.trace["spans"]))
    return 1 if report.vulnerable else 0


def cmd_compare(args) -> int:
    apk = _load_app(args.app)
    backdroid = BackDroid(
        BackDroidConfig(sink_rules=_rules(args), search_backend=args.backend)
    )
    baseline = AmandroidStyleAnalyzer(
        AmandroidConfig(timeout_seconds=args.timeout), sink_rules=_rules(args)
    )
    bd = backdroid.analyze(apk)
    am = baseline.analyze(apk)
    print(f"app: {apk.package} ({apk.method_count()} methods)")
    print(f"BackDroid : {bd.analysis_seconds:8.3f}s  "
          f"{len(bd.findings)} findings  ({bd.sink_count} sinks analyzed)")
    status = "TIMEOUT" if am.timed_out else (am.error or "ok")
    print(f"whole-app : {am.analysis_seconds:8.3f}s  "
          f"{len(am.findings)} findings  [{status}]")
    only_bd = {f.method.class_name for f in bd.findings} - {
        f.method.class_name for f in am.findings
    }
    if only_bd:
        print("flagged only by BackDroid: " + ", ".join(sorted(only_bd)))
    return 0


def cmd_corpus(args) -> int:
    apps = sample_year_corpus(args.year, count=args.count)
    sizes = [a.size_mb for a in apps]
    print(f"year {args.year}: {len(apps)} apps, "
          f"avg {statistics.fmean(sizes):.1f}MB, "
          f"median {statistics.median(sizes):.1f}MB")
    return 0


def _parse_batch_spec(spec: str) -> list[int]:
    """Expand a ``bench:<i>`` or ``bench:<a>..<b>`` spec into indices.

    Ranges are python-style half-open: ``bench:0..20`` is apps 0-19.
    """
    if not spec.startswith("bench:"):
        raise SystemExit(
            f"bad batch app spec {spec!r}: use bench:<index> or "
            f"bench:<start>..<end> (e.g. bench:0..20)"
        )
    raw = spec.split(":", 1)[1]
    if ".." in raw:
        start_raw, _, end_raw = raw.partition("..")
        try:
            start, end = int(start_raw), int(end_raw)
        except ValueError:
            raise SystemExit(
                f"bad batch app spec {spec!r}: range bounds must be "
                f"integers, e.g. bench:0..20"
            ) from None
        if start < 0 or end <= start:
            raise SystemExit(
                f"bad batch app spec {spec!r}: need 0 <= start < end"
            )
        return list(range(start, end))
    return [_bench_index(spec)]


def _collect_specs(args) -> list[AppSpec]:
    """The app recipes a batch-shaped command line names."""
    specs: list[AppSpec] = []
    for spec in args.apps:
        specs.extend(
            benchmark_app_spec(i, scale=args.scale)
            for i in _parse_batch_spec(spec)
        )
    if args.year is not None:
        specs.extend(
            year_app_spec(args.year, i, scale=args.scale)
            for i in range(args.count)
        )
    if not specs:
        raise SystemExit(
            "nothing to analyze: pass bench:<start>..<end> specs and/or "
            "--year/--count"
        )
    return specs


def cmd_batch(args) -> int:
    specs = _collect_specs(args)
    if args.cache_max is not None and args.cache_max < 1:
        raise SystemExit("--cache-max must be a positive integer")
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    config = BackDroidConfig(
        sink_rules=_rules(args),
        search_backend=args.backend,
        search_cache_max_entries=args.cache_max,
        store_dir=args.store,
        store_mode=args.store_mode,
    )
    result = run_batch(
        specs,
        config=config,
        max_workers=args.workers,
        executor=args.executor,
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 2 if result.failures else 0


def _require_store(args) -> ArtifactStore:
    if not args.store:
        raise SystemExit("a store directory is required: pass --store DIR")
    return ArtifactStore(
        args.store, shard_format=getattr(args, "shard_format", "binary")
    )


def cmd_store(args) -> int:
    if args.action == "stats":
        inventory = _require_store(args).describe()
        if args.json:
            print(json.dumps(inventory.as_dict(), indent=2, sort_keys=True))
        else:
            print(inventory.render())
        return 0

    if args.action == "verify":
        results = _require_store(args).verify()
        failures = 0
        for entry in results:
            if entry.status == "no-index":
                print(f"{entry.key[:12]}  SKIP  no stored index")
            elif entry.status == "stale":
                print(f"{entry.key[:12]}  SKIP  {entry.detail}")
            elif entry.ok:
                print(f"{entry.key[:12]}  ok    parity with a fresh build")
            else:
                failures += 1
                print(f"{entry.key[:12]}  FAIL  {entry.status}: {entry.detail}")
        verified = sum(1 for e in results if e.status == "ok")
        print(f"verified {verified} stored index(es), {failures} failure(s), "
              f"{len(results)} entry(ies) total")
        return 1 if failures else 0

    if args.action == "gc":
        store = _require_store(args)
        if args.max_age_hours < 0:
            raise SystemExit("--max-age-hours must be >= 0")
        result = store.gc(args.max_age_hours * 3600.0)
        migrated = (
            f", migrated {result.shards_migrated} legacy shard(s)"
            if result.shards_migrated
            else ""
        )
        print(
            f"removed {result.entries_removed} entry(ies) and "
            f"{result.shards_removed} unreferenced shard(s), "
            f"reclaimed {result.bytes_reclaimed} bytes{migrated}"
        )
        return 0

    if args.action == "migrate":
        result = _require_store(args).migrate()
        print(
            f"migrated {result.shards_migrated} legacy JSON shard(s) to "
            f"the binary container, {result.shards_failed} failure(s), "
            f"reclaimed {result.bytes_reclaimed} bytes"
        )
        return 1 if result.shards_failed else 0

    # warm: prebuild artifacts so later runs start hot.  "index" mode
    # builds and persists each app's inverted index; "full" mode runs
    # the whole analysis once so outcomes are reusable too.
    store = _require_store(args)
    specs = _collect_specs(args)
    config = BackDroidConfig(
        sink_rules=_rules(args),
        search_backend="indexed",
        store_dir=args.store,
        store_mode=args.store_mode,
    )
    warmed = 0
    for spec in specs:
        if args.store_mode == "full":
            outcome = analyze_spec(spec, config)
            if outcome.ok:
                warmed += 1
            else:
                print(f"{outcome.package}: ERROR: {outcome.error}")
        else:
            apk = generate_app(spec).apk
            if store.load_index(apk.disassembly) is None:
                # save_index shards the token stream itself; building
                # an app-level index here would be folded work thrown
                # away.
                store.save_index(apk.disassembly)
            # Teach the specmap too, so store-aware dispatch (batch
            # plan_lanes, the service scheduler) can classify the
            # warmed app without generating it.
            store.save_spec_key(
                spec_fingerprint(spec), store_key(apk.disassembly)
            )
            warmed += 1
    if store.shard_format == "binary":
        # Warming an older store is the natural moment to finish its
        # v2 -> v3 conversion: everything it still holds as legacy
        # JSON becomes mmap-able.
        migrated = store.migrate()
        if migrated.shards_migrated:
            print(f"migrated {migrated.shards_migrated} legacy JSON "
                  "shard(s) to the binary container")
    print(f"warmed {warmed}/{len(specs)} app(s) into {args.store} "
          f"(mode: {args.store_mode})")
    return 0


def build_server(args):
    """The configured (but not yet started) analysis service.

    ``--cold-workers`` sizes the cold lane's worker *processes*
    (default: ``--workers``): the service runs cold analyses out of
    process so warm restores never share the GIL with disassembly and
    index folds.  ``--cold-workers 0`` keeps cold analyses in-process
    (thread pool), the embedding-style fallback.  ``--loop`` picks the
    HTTP front end: the asyncio event loop (default) or the legacy
    thread-per-connection server.
    """
    # Imported lazily: the service layer is only needed by ``serve``.
    from repro.service import (
        AnalysisServer,
        StoreAwareScheduler,
        ThreadedAnalysisServer,
    )

    if args.workers < 1:
        raise SystemExit("--workers must be a positive integer")
    if args.fast_lane_workers < 0:
        raise SystemExit("--fast-lane-workers must be >= 0")
    if args.retain_jobs < 1:
        raise SystemExit("--retain-jobs must be a positive integer")
    cold_workers = getattr(args, "cold_workers", None)
    if cold_workers is None:
        cold_workers = args.workers
    if cold_workers < 0:
        raise SystemExit("--cold-workers must be >= 0")
    # The cold lane *is* the main pool: with process isolation on, its
    # process count is the lane's concurrency.
    cold_executor = "process" if cold_workers > 0 else "thread"
    workers = cold_workers if cold_executor == "process" else args.workers
    config = BackDroidConfig(
        sink_rules=_rules(args),
        search_backend=args.backend,
        store_dir=args.store,
        store_mode=args.store_mode,
    )
    scheduler = StoreAwareScheduler(
        config,
        workers=workers,
        fast_lane_workers=args.fast_lane_workers,
        max_finished_jobs=args.retain_jobs,
        session_cache_size=getattr(args, "session_cache", 4),
        cold_executor=cold_executor,
        enable_metrics=not getattr(args, "no_metrics", False),
        node_id=getattr(args, "node_id", None),
    )
    server_cls = (
        ThreadedAnalysisServer
        if getattr(args, "loop", "asyncio") == "threaded"
        else AnalysisServer
    )
    return server_cls(scheduler, host=args.host, port=args.port)


def _serve_front_end(args) -> int:
    """``serve --peers``: the cluster front end (router, no analyses).

    Discovers nodes through the shared store's gossip directory and
    routes/forwards submissions; see :mod:`repro.service.cluster`.
    """
    import signal

    from repro.service.cluster import ClusterFrontEnd, ClusterRouter

    router = ClusterRouter(
        args.store,
        lease_ttl=args.lease_ttl,
        client_timeout=30.0,
    )
    front = ClusterFrontEnd(router, host=args.host, port=args.port)
    front.start()
    host, port = front.address
    print(f"backdroid cluster front end listening on http://{host}:{port}")
    print(f"  routing over store {args.store} "
          f"(lease ttl {args.lease_ttl:g}s); nodes register by "
          "heartbeating the same store")
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _request_stop)
        except ValueError:
            break
    try:
        while not stop.is_set():
            stop.wait(1.0)
    except KeyboardInterrupt:
        pass
    front.drain()
    front.shutdown()
    return 0


def cmd_serve(args) -> int:
    import signal

    from repro.telemetry.logs import configure_logging

    configure_logging(getattr(args, "log_format", "text"))
    node_id = getattr(args, "node_id", None)
    peers = getattr(args, "peers", None)
    if (node_id or peers) and not args.store:
        raise SystemExit("--node-id/--peers require --store (the shared "
                         "store is the coordination substrate)")
    if node_id and peers:
        raise SystemExit("--node-id (worker) and --peers (front end) are "
                         "mutually exclusive")
    if peers:
        return _serve_front_end(args)
    if node_id:
        # Installed before the scheduler is built: the cold lane's
        # worker processes fork at construction and must inherit the
        # guard so only the lease holder publishes specmap entries.
        from repro.service.cluster import install_specmap_guard

        install_specmap_guard(args.store, node_id)
    server = build_server(args)
    server.start()
    host, port = server.address
    node = None
    if node_id:
        from repro.service.cluster import ClusterNode

        node = ClusterNode(
            server.scheduler,
            args.store,
            node_id,
            (host, port),
            lease_ttl=args.lease_ttl,
            heartbeat_interval=getattr(args, "heartbeat_interval", None),
        )
        # Started (first beat synchronous) before the banner prints, so
        # anything that saw the banner can already route to this node.
        node.start()
    store_note = (
        f"store {args.store} (mode {args.store_mode}), "
        f"{args.fast_lane_workers} fast-lane worker(s)"
        if args.store
        else "no store (every submission rides the main lane)"
    )
    scheduler = server.scheduler
    cold_note = (
        f"{scheduler.lanes['main'].workers} cold worker process(es)"
        if scheduler.cold_executor == "process"
        else f"{scheduler.lanes['main'].workers} in-process cold worker(s)"
    )
    print(f"backdroid service listening on http://{host}:{port} "
          f"({args.loop} front end)")
    print(f"  {cold_note}, {store_note}")
    if node is not None:
        print(f"  cluster node {node_id} (lease ttl {args.lease_ttl:g}s, "
              f"heartbeat {node.heartbeat_interval:g}s)")
    metrics_note = (
        "GET /metrics, " if scheduler.metrics is not None else ""
    )
    print("  endpoints: POST /v1/jobs, GET /v1/jobs/<id>[?trace=1], "
          f"DELETE /v1/jobs/<id>, GET /v1/stats, {metrics_note}"
          "GET /healthz  (SIGTERM/Ctrl-C to drain and stop)")
    # SIGTERM (orchestrators) and SIGINT (Ctrl-C) both trigger the
    # graceful drain: stop accepting (503), give in-flight jobs
    # --drain-timeout seconds, then shut down — hard if they overran.
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _request_stop)
        except ValueError:  # not on the main thread (embedding, tests)
            break
    try:
        while not stop.is_set():
            stop.wait(1.0)
    except KeyboardInterrupt:
        pass
    print(f"draining in-flight jobs (up to {args.drain_timeout:g}s) ...")
    drained = server.drain(timeout=args.drain_timeout)
    if not drained:
        print("drain timeout exceeded; abandoning unfinished jobs")
    if node is not None:
        # Withdraw from the cluster after the drain: peers keep seeing
        # a live (draining) node until its jobs settle.
        node.stop()
    server.shutdown(drain=drained)
    return 0


def cmd_inventory(args) -> int:
    apk = _load_app(args.app)
    print(f"package : {apk.package}")
    print(f"size    : {apk.size_mb:.1f}MB (year {apk.year})")
    print(f"classes : {apk.class_count()}  methods: {apk.method_count()}  "
          f"code units: {apk.code_units()}")
    print("components:")
    for component in apk.manifest.components:
        print(f"  {component.kind.value:9} {component.class_name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="backdroid",
        description="Targeted inter-procedural analysis via on-the-fly "
        "bytecode search (BackDroid reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_flag(p) -> None:
        p.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default=DEFAULT_BACKEND,
            help="bytecode search backend (default: %(default)s)",
        )

    def add_store_flags(p) -> None:
        p.add_argument(
            "--store", default=None, metavar="DIR",
            help="persistent warm-start artifact store directory",
        )
        p.add_argument(
            "--store-mode", choices=STORE_MODES, default="index",
            help="what warm entries may replace: the inverted index only, "
            "or finished per-app outcomes too (default: %(default)s)",
        )

    analyze = sub.add_parser("analyze", help="run BackDroid on an app")
    analyze.add_argument("app")
    analyze.add_argument("--rules", default="",
                         help="comma-separated rule ids (default: crypto+ssl)")
    analyze.add_argument("--hierarchy-fix", action="store_true",
                         help="enable the class-hierarchy initial-search fix")
    analyze.add_argument("--dump-ssg", action="store_true")
    analyze.add_argument("--json", action="store_true",
                         help="emit the versioned ReportEnvelope JSON "
                         "instead of the text report")
    analyze.add_argument("--trace", action="store_true",
                         help="record a telemetry span tree for this run "
                         "(printed after the report, or embedded in the "
                         "--json envelope's 'trace' section)")
    add_backend_flag(analyze)
    add_store_flags(analyze)
    analyze.set_defaults(func=cmd_analyze)

    compare = sub.add_parser("compare", help="BackDroid vs whole-app baseline")
    compare.add_argument("app")
    compare.add_argument("--rules", default="")
    compare.add_argument("--timeout", type=float, default=5.0)
    add_backend_flag(compare)
    compare.set_defaults(func=cmd_compare)

    batch = sub.add_parser(
        "batch", help="analyze a whole generated corpus across a worker pool"
    )
    batch.add_argument(
        "apps", nargs="*",
        help="bench:<index> or bench:<start>..<end> specs (half-open range)",
    )
    batch.add_argument("--year", type=int, default=None,
                       help="also analyze a generated Table-I year sample")
    batch.add_argument("--count", type=int, default=20,
                       help="apps in the --year sample (default: 20)")
    batch.add_argument("--scale", type=float, default=1.0,
                       help="bulk-code scale factor (default: 1.0)")
    batch.add_argument("--rules", default="")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker pool size (default: executor's choice)")
    batch.add_argument("--executor", choices=EXECUTORS, default="thread")
    batch.add_argument("--cache-max", type=int, default=None,
                       help="LRU bound for the per-app search command cache")
    batch.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of the table")
    add_backend_flag(batch)
    add_store_flags(batch)
    batch.set_defaults(func=cmd_batch)

    serve = sub.add_parser(
        "serve", help="run the persistent analysis service (HTTP JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8099,
                       help="listen port, 0 for ephemeral (default: %(default)s)")
    serve.add_argument("--workers", type=int, default=4,
                       help="main (cold-lane) worker pool size (default: 4)")
    serve.add_argument("--fast-lane-workers", type=int, default=1,
                       help="dedicated workers for store-warm submissions "
                       "(0 disables the fast lane; default: 1)")
    serve.add_argument("--retain-jobs", type=int, default=256,
                       help="finished jobs kept for polling (default: 256)")
    serve.add_argument("--cold-workers", type=int, default=None,
                       help="cold-lane worker processes (default: --workers; "
                       "0 runs cold analyses in-process instead)")
    serve.add_argument("--session-cache", type=int, default=4,
                       help="warm per-app sessions kept resident "
                       "(default: 4; 0 disables the session cache)")
    serve.add_argument("--loop", choices=("asyncio", "threaded"),
                       default="asyncio",
                       help="HTTP front end: asyncio event loop (default) "
                       "or thread-per-connection")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to let in-flight jobs finish on "
                       "SIGTERM/SIGINT before abandoning them (default: 30)")
    serve.add_argument("--log-format", choices=("text", "json"),
                       default="text",
                       help="structured log format; 'json' emits one "
                       "object per line with trace/span ids stamped "
                       "(default: %(default)s)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable the metrics registry: /metrics "
                       "returns 404 and /v1/stats omits the snapshot")
    serve.add_argument("--node-id", default=None, metavar="ID",
                       help="join the cluster on the shared --store as "
                       "this node: heartbeat the node directory, contend "
                       "for the specmap lease, stamp node_id on "
                       "jobs/results and metrics")
    serve.add_argument("--peers", default=None, metavar="MODE",
                       choices=("auto", "store"),
                       help="run the cluster *front end* instead of a "
                       "worker: route submissions to nodes discovered "
                       "through the shared --store's gossip directory "
                       "('auto' and 'store' are synonyms)")
    serve.add_argument("--lease-ttl", type=float, default=10.0,
                       help="cluster lease/heartbeat TTL in seconds: a "
                       "node silent this long is treated as dead and its "
                       "lease and in-flight jobs are reclaimed "
                       "(default: 10)")
    serve.add_argument("--heartbeat-interval", type=float, default=None,
                       help="seconds between cluster heartbeats "
                       "(default: lease TTL / 3)")
    serve.add_argument("--rules", default="")
    add_backend_flag(serve)
    add_store_flags(serve)
    serve.set_defaults(func=cmd_serve)

    store = sub.add_parser(
        "store", help="manage the warm-start artifact store"
    )
    store_sub = store.add_subparsers(dest="action", required=True)

    warm = store_sub.add_parser(
        "warm", help="prebuild artifacts for a corpus so later runs start hot"
    )
    warm.add_argument(
        "apps", nargs="*",
        help="bench:<index> or bench:<start>..<end> specs (half-open range)",
    )
    warm.add_argument("--year", type=int, default=None,
                      help="also warm a generated Table-I year sample")
    warm.add_argument("--count", type=int, default=20,
                      help="apps in the --year sample (default: 20)")
    warm.add_argument("--scale", type=float, default=1.0,
                      help="bulk-code scale factor (default: 1.0)")
    warm.add_argument("--rules", default="")
    warm.add_argument(
        "--shard-format", choices=ArtifactStore.SHARD_FORMATS,
        default="binary",
        help="shard container to publish (json emulates a v2-era "
        "writer, e.g. to seed a migration test; default: binary)",
    )
    add_store_flags(warm)
    warm.set_defaults(func=cmd_store)

    stats = store_sub.add_parser("stats", help="describe the store contents")
    stats.add_argument("--store", default=None, metavar="DIR")
    stats.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of the table")
    stats.set_defaults(func=cmd_store)

    verify = store_sub.add_parser(
        "verify",
        help="replay the backend-parity check against every stored index",
    )
    verify.add_argument("--store", default=None, metavar="DIR")
    verify.set_defaults(func=cmd_store)

    gc = store_sub.add_parser("gc", help="drop stale store entries")
    gc.add_argument("--store", default=None, metavar="DIR")
    gc.add_argument(
        "--max-age-hours", type=float, default=0.0,
        help="keep entries newer than this many hours (default: 0, "
        "i.e. clear everything)",
    )
    gc.set_defaults(func=cmd_store)

    migrate = store_sub.add_parser(
        "migrate",
        help="convert legacy v2 JSON shards to the v3 binary container "
        "in place (content addresses are container-independent, so "
        "manifests need no rewrite)",
    )
    migrate.add_argument("--store", default=None, metavar="DIR")
    migrate.set_defaults(func=cmd_store)

    corpus = sub.add_parser("corpus", help="sample a Table-I year corpus")
    corpus.add_argument("--year", type=int, default=2018)
    corpus.add_argument("--count", type=int, default=1000)
    corpus.set_defaults(func=cmd_corpus)

    inventory = sub.add_parser("inventory", help="describe an app")
    inventory.add_argument("app")
    inventory.set_defaults(func=cmd_inventory)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
