"""Property-based tests (hypothesis) for the full analysis pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BackDroid, BackDroidConfig
from repro.core.detectors import CryptoEcbDetector
from repro.core.slicer import BackwardSlicer
from repro.dex.builder import AppBuilder
from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PATTERN_BUILDERS, PatternSpec

_PATTERNS = sorted(
    name for name in PATTERN_BUILDERS if name != "hazard_dangling"
)

_pattern_lists = st.lists(
    st.tuples(st.sampled_from(_PATTERNS), st.booleans()),
    min_size=1,
    max_size=5,
)


class TestPipelineProperties:
    @given(_pattern_lists, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_verdict_matches_ground_truth(self, pattern_list, seed):
        """For arbitrary pattern mixes, BackDroid's app-level verdict
        equals the disjunction of the per-pattern expectations."""
        spec = AppSpec(
            package="com.prop",
            seed=seed,
            patterns=tuple(PatternSpec(n, insecure=i) for n, i in pattern_list),
            filler_classes=2,
        )
        generated = generate_app(spec)
        report = BackDroid().analyze(generated.apk)
        assert report.vulnerable == generated.expected_backdroid_vulnerable()

    @given(_pattern_lists, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_analysis_is_deterministic(self, pattern_list, seed):
        spec = AppSpec(
            package="com.prop",
            seed=seed,
            patterns=tuple(PatternSpec(n, insecure=i) for n, i in pattern_list),
            filler_classes=2,
        )
        first = BackDroid().analyze(generate_app(spec).apk)
        second = BackDroid().analyze(generate_app(spec).apk)
        assert [str(f) for f in first.findings] == [str(f) for f in second.findings]
        assert first.sink_count == second.sink_count

    @given(_pattern_lists, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_ssg_well_formed(self, pattern_list, seed):
        """Every SSG's units point at real statements; entry bookkeeping
        is internally consistent."""
        spec = AppSpec(
            package="com.prop",
            seed=seed,
            patterns=tuple(PatternSpec(n, insecure=i) for n, i in pattern_list),
            filler_classes=2,
        )
        generated = generate_app(spec)
        apk = generated.apk
        driver = BackDroid()
        slicer = BackwardSlicer(apk)
        pool = apk.full_pool
        for site in driver.find_sink_call_sites(apk):
            ssg = slicer.slice_sink(site)
            for unit in ssg.units():
                method = pool.resolve_method(unit.method)
                assert method is not None
                assert 0 <= unit.stmt_index < len(method.body)
                assert method.body[unit.stmt_index] is unit.stmt
            if ssg.reached_entry:
                assert ssg.entry_points
            for tracked_method in ssg.taint_map:
                assert pool.resolve_method(tracked_method) is not None


_SUFFIXES = ["/ECB/PKCS5Padding", "/GCM/NoPadding", "/CBC/PKCS5Padding", "X", ""]
_TRANSFORMS = ["upper", "lower", "none"]


class TestStringSemanticsSoundness:
    @given(
        st.sampled_from(["AES", "DES", "RSA", "aes"]),
        st.lists(st.sampled_from(_SUFFIXES), max_size=3),
        st.sampled_from(_TRANSFORMS),
    )
    @settings(max_examples=40, deadline=None)
    def test_forward_value_matches_python_semantics(self, base, suffixes, transform):
        """Build a random StringBuilder chain feeding the cipher sink;
        the recovered value (and hence the verdict) must match what the
        same Java code would really compute."""
        expected = base + "".join(suffixes)
        if transform == "upper":
            expected = expected.upper()
        elif transform == "lower":
            expected = expected.lower()

        app = AppBuilder()
        main = app.new_class("com.s.Main", superclass="android.app.Activity")
        main.default_constructor()
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        sb = oc.new_init("java.lang.StringBuilder", args=[base],
                         ctor_params=["java.lang.String"])
        current = sb
        for suffix in suffixes:
            current = oc.invoke_virtual(
                current, "java.lang.StringBuilder", "append", args=[suffix],
                params=["java.lang.String"], returns="java.lang.StringBuilder",
            )
        text = oc.invoke_virtual(current, "java.lang.StringBuilder", "toString",
                                 returns="java.lang.String")
        if transform == "upper":
            text = oc.invoke_virtual(text, "java.lang.String", "toUpperCase",
                                     returns="java.lang.String")
        elif transform == "lower":
            text = oc.invoke_virtual(text, "java.lang.String", "toLowerCase",
                                     returns="java.lang.String")
        oc.invoke_static(
            "javax.crypto.Cipher", "getInstance", args=[text],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        oc.return_void()
        manifest = Manifest("com.s")
        manifest.register("com.s.Main", ComponentKind.ACTIVITY)
        apk = Apk(package="com.s", classes=app.build(), manifest=manifest)

        report = BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",))).analyze(apk)
        assert report.sink_count == 1
        record = report.records[0]
        assert record.reachable
        assert record.facts_repr[0] == f'"{expected}"'
        should_flag = CryptoEcbDetector.is_insecure_transformation(expected)
        assert report.vulnerable == should_flag
