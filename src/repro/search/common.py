"""Shared result types of the caller-resolution searches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dex.instructions import Local
from repro.dex.types import MethodSignature


@dataclass(frozen=True)
class CallSite:
    """A located call site: *caller method* + statement index within it.

    This is the result of the basic search's step 4 (Fig. 3): after the
    text hit is translated back into the program-analysis space, a "quick
    forward analysis" pinpoints the actual invoke statement.
    """

    caller: MethodSignature
    stmt_index: int
    #: The search signature that produced this hit (the callee's own
    #: signature, or a child-class re-homing of it — Sec. IV-A).
    matched_signature: Optional[MethodSignature] = None


@dataclass(frozen=True)
class CallChainLink:
    """One frame of an advanced-search call chain (Sec. IV-B).

    The chain is ordered from the constructor-containing method towards
    the ending method; ``site_index`` is the statement that forwards the
    tainted object in that frame.
    """

    method: MethodSignature
    site_index: int


@dataclass(frozen=True)
class ResolvedCaller:
    """One resolved caller of a callee method.

    ``kind`` records which search mechanism produced it:

    * ``"direct"`` — basic signature search; backward analysis continues
      at ``stmt_index`` inside ``method``.
    * ``"constructor"`` — advanced search; ``method`` contains the callee
      class's constructor at ``stmt_index``, ``object_local`` holds the
      allocated object and ``chain`` the maintained call chain up to the
      ending method.
    * ``"icc"`` — two-time ICC search; ``method`` contains the matched
      ICC call.
    * ``"lifecycle"`` — lifecycle-handler domain knowledge.
    """

    method: MethodSignature
    stmt_index: int
    kind: str
    chain: tuple[CallChainLink, ...] = ()
    object_local: Optional[Local] = None


@dataclass
class ResolutionResult:
    """The outcome of resolving the callers of one callee method."""

    callee: MethodSignature
    callers: list[ResolvedCaller] = field(default_factory=list)
    #: True when the callee itself is a valid entry point (a lifecycle
    #: handler of a manifest-registered component).
    is_entry: bool = False
    #: For ``<clinit>`` callees: the verdict of the recursive
    #: reachability search, plus the witness chain of classes.
    clinit_reachable: Optional[bool] = None
    clinit_chain: tuple[str, ...] = ()
    #: Diagnostics (which mechanisms ran, loop aborts, ...).
    notes: list[str] = field(default_factory=list)

    @property
    def is_dead_end(self) -> bool:
        """No callers and not an entry: the path cannot reach an entry."""
        if self.is_entry:
            return False
        if self.clinit_reachable is not None:
            return not self.clinit_reachable
        return not self.callers
