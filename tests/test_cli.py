"""Unit tests for the command-line front end."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_analyze_heyzap_vulnerable_exit_code(self, capsys):
        code = main(["analyze", "heyzap", "--rules", "ssl-verifier"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VULNERABLE" in out

    def test_analyze_palcomp3_open_port(self, capsys):
        code = main(["analyze", "palcomp3", "--rules", "open-port", "--dump-ssg"])
        out = capsys.readouterr().out
        assert "8089" in out
        assert "static track" in out

    def test_analyze_with_hierarchy_fix_flag(self, capsys):
        code = main(["analyze", "lgtv", "--hierarchy-fix"])
        assert code == 0  # no crypto/ssl findings in the LG miniature

    def test_unknown_app_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", "nonexistent"])

    def test_malformed_bench_spec_friendly_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["analyze", "bench:abc"])
        assert "bench:abc" in str(exc_info.value)
        assert "non-negative integer" in str(exc_info.value)

    def test_negative_bench_spec_friendly_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["analyze", "bench:-3"])
        assert "must be >= 0" in str(exc_info.value)

    def test_analyze_json_emits_versioned_envelope(self, capsys):
        import json

        from repro.api import SCHEMA_VERSION, ReportEnvelope

        code = main(["analyze", "heyzap", "--rules", "ssl-verifier", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1  # exit code still reflects the verdict
        assert payload["kind"] == "backdroid-report"
        assert payload["schema_version"] == SCHEMA_VERSION
        envelope = ReportEnvelope.from_dict(payload)
        assert envelope.package == "com.heyzap.demo"
        assert envelope.vulnerable
        assert envelope.request.rules == ("ssl-verifier",)

    def test_analyze_with_indexed_backend(self, capsys):
        code = main(["analyze", "heyzap", "--rules", "ssl-verifier",
                     "--backend", "indexed"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VULNERABLE" in out
        assert "search backend : indexed" in out


class TestOtherCommands:
    def test_compare(self, capsys):
        code = main(["compare", "heyzap", "--timeout", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "BackDroid" in out and "whole-app" in out

    def test_corpus(self, capsys):
        code = main(["corpus", "--year", "2016", "--count", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "year 2016" in out

    def test_inventory_bench_app(self, capsys):
        code = main(["inventory", "bench:0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "com.bench.app000" in out
        assert "components:" in out


class TestBatch:
    def test_batch_range_of_bench_apps(self, capsys):
        code = main(["batch", "bench:0..3", "--scale", "0.05",
                     "--backend", "indexed", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "com.bench.app000" in out and "com.bench.app002" in out
        assert "backend=indexed" in out
        assert "wall time" in out and "cache rates" in out and "findings" in out

    def test_batch_year_sample(self, capsys):
        code = main(["batch", "--year", "2015", "--count", "2",
                     "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "com.corpus.y2015.app00000" in out

    def test_batch_twenty_apps_one_invocation(self, capsys):
        code = main(["batch", "bench:0..20", "--scale", "0.02",
                     "--backend", "indexed"])
        out = capsys.readouterr().out
        assert code == 0
        assert "20 apps" in out
        assert out.count("com.bench.app") >= 20

    def test_batch_requires_some_apps(self):
        with pytest.raises(SystemExit, match="nothing to analyze"):
            main(["batch"])

    def test_batch_malformed_range(self):
        with pytest.raises(SystemExit, match="range bounds"):
            main(["batch", "bench:1..x"])
        with pytest.raises(SystemExit, match="start < end"):
            main(["batch", "bench:5..5"])

    def test_batch_rejects_bad_workers_and_cache_max(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["batch", "bench:0..2", "--workers", "0"])
        with pytest.raises(SystemExit, match="--cache-max"):
            main(["batch", "bench:0..2", "--cache-max", "0"])


class TestStore:
    def _batch(self, tmp_path, capsys):
        code = main(["batch", "bench:0..3", "--scale", "0.05",
                     "--backend", "indexed", "--executor", "serial",
                     "--store", str(tmp_path / "s"), "--store-mode", "full"])
        assert code == 0
        return capsys.readouterr().out

    def test_second_batch_run_is_warm(self, tmp_path, capsys):
        cold = self._batch(tmp_path, capsys)
        assert "0 hit(s) / 3 miss(es)" in cold
        warm = self._batch(tmp_path, capsys)
        assert "3 hit(s) / 0 miss(es) (100% warm)" in warm
        assert "[warm]" in warm

    def test_warm_then_stats_then_gc(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        code = main(["store", "warm", "bench:0..2", "--scale", "0.05",
                     "--store", store_dir])
        assert code == 0
        assert "warmed 2/2" in capsys.readouterr().out

        code = main(["store", "stats", "--store", store_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries     : 2" in out and "manifest" in out
        assert "shard" in out and "dedup ratio" in out

        code = main(["store", "gc", "--store", store_dir])
        assert code == 0
        assert "removed 2" in capsys.readouterr().out

        code = main(["store", "stats", "--store", store_dir])
        assert code == 0
        assert "entries     : 0" in capsys.readouterr().out

    def test_warmed_store_restores_indexes_in_batch(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        main(["store", "warm", "bench:0..3", "--scale", "0.05",
              "--store", store_dir])
        capsys.readouterr()
        code = main(["batch", "bench:0..3", "--scale", "0.05",
                     "--backend", "indexed", "--executor", "serial",
                     "--store", store_dir])
        assert code == 0
        assert "3 restored index(es)" in capsys.readouterr().out

    def test_store_actions_require_store_dir(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "stats"])
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "warm", "bench:0..2"])
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "gc"])


class TestJsonOutput:
    def test_batch_json_is_machine_readable(self, capsys):
        import json

        code = main(["batch", "bench:0..3", "--scale", "0.05",
                     "--backend", "indexed", "--executor", "serial",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["apps"]) == 3
        assert payload["apps"][0]["package"] == "com.bench.app000"
        aggregate = payload["aggregate"]
        assert aggregate["app_count"] == 3 and aggregate["failed"] == 0
        assert aggregate["backend"] == "indexed"
        assert "store" not in aggregate  # no store configured

    def test_batch_json_reports_store_and_lanes(self, tmp_path, capsys):
        import json

        argv = ["batch", "bench:0..3", "--scale", "0.05",
                "--backend", "indexed", "--executor", "serial",
                "--store", str(tmp_path / "s"), "--store-mode", "full",
                "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)["aggregate"]["store"]
        assert cold["hits"] == 0 and cold["fast_lane_apps"] == 0

        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)["aggregate"]["store"]
        assert warm["hits"] == 3
        assert warm["fast_lane_apps"] == 3 and warm["main_lane_apps"] == 0

    def test_store_stats_json(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "s")
        main(["store", "warm", "bench:0..2", "--scale", "0.05",
              "--store", store_dir])
        capsys.readouterr()
        assert main(["store", "stats", "--store", store_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["files_by_kind"]["manifest"] == 2
        assert payload["shards"] >= 2
        assert payload["shard_refs"] >= payload["shards"]
        assert payload["dedup_ratio"] >= 1.0


class TestStoreVerify:
    def test_verify_clean_store_exits_zero(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        main(["store", "warm", "bench:0..3", "--scale", "0.05",
              "--store", store_dir])
        capsys.readouterr()
        assert main(["store", "verify", "--store", store_dir]) == 0
        out = capsys.readouterr().out
        assert "verified 3 stored index(es), 0 failure(s)" in out

    def test_verify_flags_corruption_nonzero_exit(self, tmp_path, capsys):
        from repro.store import ArtifactStore
        from repro.store.binshard import decode_shard, encode_shard

        store_dir = str(tmp_path / "s")
        main(["store", "warm", "bench:0..2", "--scale", "0.05",
              "--store", store_dir])
        capsys.readouterr()
        store = ArtifactStore(store_dir)
        shard_path = next(store._shard_files())
        payload = decode_shard(shard_path.read_bytes())
        payload["postings"][0] = [n + 1 for n in payload["postings"][0]]
        shard_path.write_bytes(encode_shard(payload, payload["key"]))

        assert main(["store", "verify", "--store", store_dir]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "1 failure(s)" in out

    def test_verify_requires_store_dir(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "verify"])


class TestBatchLanes:
    def test_warm_batch_renders_lane_counts(self, tmp_path, capsys):
        argv = ["batch", "bench:0..4", "--scale", "0.05",
                "--backend", "indexed", "--executor", "serial",
                "--store", str(tmp_path / "s"), "--store-mode", "full"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "lanes          : 0 fast / 4 main" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "lanes          : 4 fast / 0 main" in warm
        # Rendered rows stay in input order regardless of dispatch order.
        rows = [line.split()[0] for line in warm.splitlines()
                if line.startswith("com.bench.app")]
        assert rows == sorted(rows)


class TestServe:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8099
        assert args.workers == 4 and args.fast_lane_workers == 1
        assert args.func.__name__ == "cmd_serve"

    def test_build_server_wires_scheduler_and_store(self, tmp_path):
        from repro.cli import build_parser, build_server

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--store", str(tmp_path / "s"),
             "--backend", "indexed", "--workers", "2",
             "--fast-lane-workers", "1"]
        )
        server = build_server(args)
        try:
            host, port = server.address
            assert host == "127.0.0.1" and port > 0
            assert server.scheduler.config.store_dir == str(tmp_path / "s")
            assert server.scheduler.config.search_backend == "indexed"
            assert server.scheduler.lanes["main"].workers == 2
            assert server.scheduler.lanes["fast"].workers == 1
        finally:
            server.shutdown(drain=True)

    def test_build_server_rejects_bad_worker_counts(self, tmp_path):
        from repro.cli import build_parser, build_server

        args = build_parser().parse_args(["serve", "--workers", "0"])
        with pytest.raises(SystemExit, match="--workers"):
            build_server(args)
        args = build_parser().parse_args(["serve", "--fast-lane-workers", "-1"])
        with pytest.raises(SystemExit, match="--fast-lane-workers"):
            build_server(args)
        args = build_parser().parse_args(["serve", "--retain-jobs", "0"])
        with pytest.raises(SystemExit, match="--retain-jobs"):
            build_server(args)
