"""Code-shape templates with ground truth.

Each pattern builds one self-contained cluster of classes inside a
generated app, exercising one of the code shapes the paper's search
mechanisms exist for.  Every builder returns a :class:`GroundTruth`
recording:

* whether the shape is *truly* vulnerable (insecure sink parameter AND
  reachable from a registered entry point), and
* which tool is mechanically expected to detect it (ignoring timeouts
  and injected analyzer errors, which are app-level effects):

========================  ==========  ============  =======================
pattern                   BackDroid   Amandroid     paper evidence
========================  ==========  ============  =======================
direct_entry              yes         yes           baseline agreement
wrapper_chain             yes         yes           Sec. IV-A
string_built              yes         yes           Sec. V-B API models
field_config              yes         yes           Sec. V-A static tracks
super_poly                yes         yes           Sec. IV-B super classes
child_invocation          yes         yes           Sec. IV-A child search
clinit_path               yes         yes           Sec. IV-C
icc_explicit              yes         yes           Sec. IV-D
icc_implicit              yes         yes           Sec. IV-D (path only)
async_executor            yes         no            "failed to connect ...
                                                    Executor.execute"
async_asynctask           yes         budgeted      "unrobust handling"
callback_onclick          yes         budgeted      "unrobust handling"
library_skipped           yes         no            liblist.txt
unregistered_component    no (TN)     yes (FP)      six Amandroid FPs
hierarchy_wrapped_sink    no (FN)     yes           BackDroid's two FNs
dead_code                 no (TN)     no (TN)       reachability check
========================  ==========  ============  =======================

Secure variants (``insecure=False``) use GCM / STRICT parameters and are
never truly vulnerable — they exercise detector precision.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.android.manifest import ComponentKind, Manifest
from repro.dex.builder import AppBuilder, ClassBuilder, MethodBuilder

ECB_TRANSFORMATION = "AES/ECB/PKCS5Padding"
GCM_TRANSFORMATION = "AES/GCM/NoPadding"

_SSL_FACTORY = "org.apache.http.conn.ssl.SSLSocketFactory"
_X509 = "org.apache.http.conn.ssl.X509HostnameVerifier"


@dataclass(frozen=True)
class GroundTruth:
    """The label attached to one built pattern instance."""

    pattern: str
    rule: Optional[str]
    sink_class: str
    truly_vulnerable: bool
    expect_backdroid: bool
    expect_amandroid: bool
    notes: str = ""


@dataclass
class PatternContext:
    """Per-app state shared by pattern builders."""

    rng: random.Random
    #: Amandroid's implicit-flow site budget (AsyncTask/onClick sites
    #: beyond it are dropped by the baseline).
    amandroid_implicit_budget: int = 4
    implicit_sites_used: int = 0

    def take_implicit_site(self) -> bool:
        """True when the baseline still wires this AsyncTask/onClick site."""
        self.implicit_sites_used += 1
        return self.implicit_sites_used <= self.amandroid_implicit_budget


PatternBuilder = Callable[
    [AppBuilder, Manifest, str, PatternContext, bool], GroundTruth
]


# ======================================================================
# Shared helpers
# ======================================================================


def _register_activity(
    app: AppBuilder, manifest: Manifest, name: str, register: bool = True
) -> ClassBuilder:
    activity = app.new_class(name, superclass="android.app.Activity")
    activity.default_constructor()
    if register:
        manifest.register(name, ComponentKind.ACTIVITY, exported=True)
    return activity


def _emit_cipher_sink(m: MethodBuilder, transformation: str) -> None:
    t = m.const_string(transformation)
    m.invoke_static(
        "javax.crypto.Cipher",
        "getInstance",
        args=[t],
        params=["java.lang.String"],
        returns="javax.crypto.Cipher",
    )


def _emit_ssl_sink(m: MethodBuilder, factory_local, insecure: bool) -> None:
    constant = "ALLOW_ALL_HOSTNAME_VERIFIER" if insecure else "STRICT_HOSTNAME_VERIFIER"
    verifier = m.get_static(_SSL_FACTORY, constant, _X509)
    m.invoke_virtual(
        factory_local,
        _SSL_FACTORY,
        "setHostnameVerifier",
        args=[verifier],
        params=[_X509],
    )


def _transformation(insecure: bool) -> str:
    return ECB_TRANSFORMATION if insecure else GCM_TRANSFORMATION


# ======================================================================
# Patterns detected by both tools
# ======================================================================


def build_direct_entry(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink directly inside a registered Activity's onCreate."""
    name = f"{ns}.DirectActivity"
    activity = _register_activity(app, manifest, name)
    on_create = activity.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    _emit_cipher_sink(on_create, _transformation(insecure))
    on_create.return_void()
    return GroundTruth(
        pattern="direct_entry",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


def build_wrapper_chain(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink at the end of a static/private wrapper chain (depth 2-4)."""
    depth = ctx.rng.randint(2, 4)
    helper_name = f"{ns}.CryptoHelper"
    helper = app.new_class(helper_name)
    for level in range(depth):
        is_last = level == depth - 1
        m = helper.method(f"step{level}", params=["java.lang.String"],
                          static=True, private=(level > 0))
        arg = m.param(0)
        if is_last:
            m.invoke_static(
                "javax.crypto.Cipher", "getInstance", args=[arg],
                params=["java.lang.String"], returns="javax.crypto.Cipher",
            )
        else:
            m.invoke_static(helper_name, f"step{level + 1}", args=[arg],
                            params=["java.lang.String"])
        m.return_void()
    name = f"{ns}.ChainActivity"
    activity = _register_activity(app, manifest, name)
    on_create = activity.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    t = on_create.const_string(_transformation(insecure))
    on_create.invoke_static(helper_name, "step0", args=[t],
                            params=["java.lang.String"])
    on_create.return_void()
    return GroundTruth(
        pattern="wrapper_chain",
        rule="crypto-ecb",
        sink_class=helper_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
        notes=f"depth={depth}",
    )


def build_string_built(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Transformation assembled with StringBuilder.append chains."""
    name = f"{ns}.BuilderActivity"
    activity = _register_activity(app, manifest, name)
    on_create = activity.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    sb = on_create.new_init("java.lang.StringBuilder", args=["AES"],
                            ctor_params=["java.lang.String"])
    suffix = "/ECB/PKCS5Padding" if insecure else "/GCM/NoPadding"
    sb2 = on_create.invoke_virtual(
        sb, "java.lang.StringBuilder", "append", args=[suffix],
        params=["java.lang.String"], returns="java.lang.StringBuilder",
    )
    text = on_create.invoke_virtual(
        sb2, "java.lang.StringBuilder", "toString", returns="java.lang.String"
    )
    on_create.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[text],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    on_create.return_void()
    return GroundTruth(
        pattern="string_built",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


def build_field_config(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Transformation kept in a static field initialised by <clinit>."""
    config_name = f"{ns}.CipherConfig"
    config = app.new_class(config_name)
    config.field("TRANSFORMATION", "java.lang.String", static=True)
    clinit = config.static_initializer()
    clinit.put_static(config_name, "TRANSFORMATION", "java.lang.String",
                      _transformation(insecure))
    clinit.return_void()
    name = f"{ns}.FieldActivity"
    activity = _register_activity(app, manifest, name)
    on_create = activity.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    t = on_create.get_static(config_name, "TRANSFORMATION", "java.lang.String")
    on_create.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[t],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    on_create.return_void()
    return GroundTruth(
        pattern="field_config",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


def build_super_poly(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink in an overriding method dispatched through the super type."""
    super_name = f"{ns}.BaseWorker"
    base = app.new_class(super_name)
    base.default_constructor()
    bw = base.method("work")
    bw.this()
    bw.return_void()
    impl_name = f"{ns}.CipherWorker"
    impl = app.new_class(impl_name, superclass=super_name)
    impl.default_constructor()
    iw = impl.method("work")
    iw.this()
    _emit_cipher_sink(iw, _transformation(insecure))
    iw.return_void()
    name = f"{ns}.PolyActivity"
    activity = _register_activity(app, manifest, name)
    on_create = activity.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    worker = on_create.new_init(impl_name)
    up = on_create.cast(super_name, worker)
    on_create.invoke_virtual(up, super_name, "work")
    on_create.return_void()
    return GroundTruth(
        pattern="super_poly",
        rule="crypto-ecb",
        sink_class=impl_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


def build_child_invocation(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Parent method (hosting the sink) invoked via a child signature."""
    parent_name = f"{ns}.CryptoBase"
    parent = app.new_class(parent_name)
    parent.default_constructor()
    pm = parent.method("encrypt", params=["java.lang.String"])
    pm.this()
    arg = pm.param(0)
    pm.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[arg],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    pm.return_void()
    child_name = f"{ns}.CryptoChild"
    child = app.new_class(child_name, superclass=parent_name)
    child.default_constructor()
    name = f"{ns}.ChildActivity"
    activity = _register_activity(app, manifest, name)
    on_create = activity.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    obj = on_create.new_init(child_name)
    t = on_create.const_string(_transformation(insecure))
    on_create.invoke_virtual(obj, child_name, "encrypt", args=[t],
                             params=["java.lang.String"])
    on_create.return_void()
    return GroundTruth(
        pattern="child_invocation",
        rule="crypto-ecb",
        sink_class=parent_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


def build_clinit_path(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink reached from a static initializer (the Heyzap shape)."""
    factory_name = f"{ns}.TlsFactory"
    factory = app.new_class(factory_name, superclass=_SSL_FACTORY)
    ctor = factory.constructor()
    f_this = ctor.this()
    _emit_ssl_sink(ctor, f_this, insecure)
    ctor.return_void()
    client_name = f"{ns}.ApiClient"
    client = app.new_class(client_name)
    client.field("factory", factory_name, static=True)
    clinit = client.static_initializer()
    built = clinit.new_init(factory_name)
    clinit.put_static(client_name, "factory", factory_name, built)
    clinit.return_void()
    fetch = client.method("fetch", static=True)
    fetch.return_void()
    # The middle hop of the paper's use-chain (AdModel between the
    # initializer's class and the entry Activity).
    model_name = f"{ns}.AdModel"
    model = app.new_class(model_name)
    model.default_constructor()
    load = model.method("load")
    load.this()
    load.invoke_static(client_name, "fetch")
    load.return_void()
    name = f"{ns}.ClinitActivity"
    activity = _register_activity(app, manifest, name)
    on_create = activity.method("onCreate", params=["android.os.Bundle"])
    on_create.this()
    on_create.param(0)
    ad_model = on_create.new_init(model_name)
    on_create.invoke_virtual(ad_model, model_name, "load")
    on_create.return_void()
    return GroundTruth(
        pattern="clinit_path",
        rule="ssl-verifier",
        sink_class=factory_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


def build_icc_explicit(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink inside a Service started with an explicit Intent."""
    service_name = f"{ns}.SyncService"
    service = app.new_class(service_name, superclass="android.app.Service")
    service.default_constructor()
    on_create = service.method("onCreate")
    on_create.this()
    _emit_cipher_sink(on_create, _transformation(insecure))
    on_create.return_void()
    manifest.register(service_name, ComponentKind.SERVICE)
    name = f"{ns}.IccActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    a_this = oc.this()
    oc.param(0)
    klass = oc.const_class(service_name)
    intent = oc.new_init(
        "android.content.Intent", args=[a_this, klass],
        ctor_params=["android.content.Context", "java.lang.Class"],
    )
    oc.invoke_virtual(
        a_this, "android.content.Context", "startService", args=[intent],
        params=["android.content.Intent"], returns="android.content.ComponentName",
    )
    oc.return_void()
    return GroundTruth(
        pattern="icc_explicit",
        rule="crypto-ecb",
        sink_class=service_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


# ======================================================================
# Patterns only BackDroid detects
# ======================================================================


def build_icc_implicit(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink inside a Receiver addressed by an implicit Intent action."""
    action = f"{ns}.ACTION_SYNC"
    receiver_name = f"{ns}.SyncReceiver"
    receiver = app.new_class(
        receiver_name, superclass="android.content.BroadcastReceiver"
    )
    receiver.default_constructor()
    on_receive = receiver.method(
        "onReceive", params=["android.content.Context", "android.content.Intent"]
    )
    on_receive.this()
    on_receive.param(0)
    on_receive.param(1)
    _emit_cipher_sink(on_receive, _transformation(insecure))
    on_receive.return_void()
    manifest.register(receiver_name, ComponentKind.RECEIVER, actions=[action])
    name = f"{ns}.BroadcastActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    a_this = oc.this()
    oc.param(0)
    act = oc.const_string(action)
    intent = oc.new_init("android.content.Intent", args=[act],
                         ctor_params=["java.lang.String"])
    oc.invoke_virtual(a_this, "android.content.Context", "sendBroadcast",
                      args=[intent], params=["android.content.Intent"])
    oc.return_void()
    # The registered receiver is itself an entry point, so whole-app
    # analysis reaches the sink without needing the implicit ICC edge;
    # the pattern differentially exercises BackDroid's two-time search
    # (the *path* through sendBroadcast), not the detection verdict.
    return GroundTruth(
        pattern="icc_implicit",
        rule="crypto-ecb",
        sink_class=receiver_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
        notes="implicit ICC path; receiver is also a registered entry",
    )


def build_async_executor(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """The Fig. 4 shape: Runnable dispatched through Executor.execute."""
    worker_name = f"{ns}.CipherRunnable"
    worker = app.new_class(worker_name, interfaces=["java.lang.Runnable"])
    worker.default_constructor()
    run = worker.method("run")
    run.this()
    _emit_cipher_sink(run, _transformation(insecure))
    run.return_void()
    util_name = f"{ns}.BgUtil"
    util = app.new_class(util_name)
    util.field("executor", "java.util.concurrent.Executor", static=True)
    clinit = util.static_initializer()
    pool_local = clinit.invoke_static(
        "java.util.concurrent.Executors", "newCachedThreadPool",
        returns="java.util.concurrent.ExecutorService",
    )
    clinit.put_static(util_name, "executor", "java.util.concurrent.Executor",
                      pool_local)
    clinit.return_void()
    rib = util.method("runInBackground", params=["java.lang.Runnable"], static=True)
    r0 = rib.param(0)
    ex = rib.get_static(util_name, "executor", "java.util.concurrent.Executor")
    rib.invoke_interface(ex, "java.util.concurrent.Executor", "execute",
                         args=[r0], params=["java.lang.Runnable"])
    rib.return_void()
    name = f"{ns}.ExecutorActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    w = oc.new_init(worker_name)
    oc.invoke_static(util_name, "runInBackground", args=[w],
                     params=["java.lang.Runnable"])
    oc.return_void()
    return GroundTruth(
        pattern="async_executor",
        rule="crypto-ecb",
        sink_class=worker_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=False,
        notes="Executor.execute missing from baseline edge map",
    )


def build_async_asynctask(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """AsyncTask.execute -> doInBackground (baseline handles budgeted)."""
    task_name = f"{ns}.FetchTask"
    task = app.new_class(task_name, superclass="android.os.AsyncTask")
    task.default_constructor()
    dib = task.method("doInBackground", params=["java.lang.Object[]"],
                      returns="java.lang.Object")
    dib.this()
    dib.param(0)
    _emit_cipher_sink(dib, _transformation(insecure))
    dib.return_value(None)
    name = f"{ns}.TaskActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    t = oc.new_init(task_name)
    oc.invoke_virtual(
        t, "android.os.AsyncTask", "execute",
        args=[oc.const_null("java.lang.Object[]")],
        params=["java.lang.Object[]"], returns="android.os.AsyncTask",
    )
    oc.return_void()
    robust = ctx.take_implicit_site()
    return GroundTruth(
        pattern="async_asynctask",
        rule="crypto-ecb",
        sink_class=task_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure and robust,
        notes="within baseline implicit budget" if robust else
        "beyond baseline implicit budget (unrobust handling)",
    )


def build_callback_onclick(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """setOnClickListener -> onClick (baseline handles budgeted)."""
    listener_name = f"{ns}.SendListener"
    listener = app.new_class(
        listener_name, interfaces=["android.view.View$OnClickListener"]
    )
    listener.default_constructor()
    on_click = listener.method("onClick", params=["android.view.View"])
    on_click.this()
    on_click.param(0)
    _emit_cipher_sink(on_click, _transformation(insecure))
    on_click.return_void()
    name = f"{ns}.ClickActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    a_this = oc.this()
    oc.param(0)
    view = oc.invoke_virtual(
        a_this, "android.app.Activity", "findViewById",
        args=[oc.const_int(ctx.rng.randint(1, 1 << 16))],
        params=["int"], returns="android.view.View",
    )
    lst = oc.new_init(listener_name)
    oc.invoke_virtual(view, "android.view.View", "setOnClickListener",
                      args=[lst], params=["android.view.View$OnClickListener"])
    oc.return_void()
    robust = ctx.take_implicit_site()
    return GroundTruth(
        pattern="callback_onclick",
        rule="crypto-ecb",
        sink_class=listener_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure and robust,
        notes="within baseline implicit budget" if robust else
        "beyond baseline implicit budget (unrobust handling)",
    )


_LIBRARY_PACKAGES = ("com.facebook.crypto", "com.amazon.identity.frc.helper",
                     "com.tencent.smtt.utils")


def build_library_skipped(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink inside a liblist package (baseline skips its analysis)."""
    package = ctx.rng.choice(_LIBRARY_PACKAGES)
    suffix = ns.rsplit(".", 1)[-1]
    helper_name = f"{package}.EncryptionHelper_{suffix}"
    helper = app.new_class(helper_name)
    enc = helper.method("protect", params=["java.lang.String"], static=True)
    arg = enc.param(0)
    enc.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[arg],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    enc.return_void()
    name = f"{ns}.LibUserActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    t = oc.const_string(_transformation(insecure))
    oc.invoke_static(helper_name, "protect", args=[t], params=["java.lang.String"])
    oc.return_void()
    return GroundTruth(
        pattern="library_skipped",
        rule="crypto-ecb",
        sink_class=helper_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=False,
        notes=f"sink in skipped library {package}",
    )


# ======================================================================
# Patterns where the tools err
# ======================================================================


def build_unregistered_component(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink flow from an Activity missing from the manifest.

    Dead to the framework; Amandroid still treats it as an entry (the
    six FPs of Sec. VI-C), BackDroid checks the manifest.
    """
    name = f"{ns}.OrphanActivation"
    activity = _register_activity(app, manifest, name, register=False)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    _emit_cipher_sink(oc, _transformation(insecure))
    oc.return_void()
    return GroundTruth(
        pattern="unregistered_component",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=False,
        expect_backdroid=False,
        expect_amandroid=insecure,
        notes="component not in manifest: baseline FP",
    )


def build_hierarchy_wrapped_sink(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink invoked via an app subclass of the sink's declaring class.

    The ``com.gta.nslm2`` shape behind BackDroid's two FNs: the
    invocation signature names the app class, so the initial sink search
    misses it unless ``check_class_hierarchy_in_initial_search`` is on.
    """
    factory_name = f"{ns}.DefaultSSLSocketFactory"
    factory = app.new_class(factory_name, superclass=_SSL_FACTORY)
    ctor = factory.constructor()
    f_this = ctor.this()
    constant = "ALLOW_ALL_HOSTNAME_VERIFIER" if insecure else "STRICT_HOSTNAME_VERIFIER"
    verifier = ctor.get_static(_SSL_FACTORY, constant, _X509)
    # The crucial detail: the invocation is written against the app
    # class's own signature, not the framework class's.
    ctor.invoke_virtual(f_this, factory_name, "setHostnameVerifier",
                        args=[verifier], params=[_X509])
    ctor.return_void()
    name = f"{ns}.WrappedActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    oc.new_init(factory_name)
    oc.return_void()
    return GroundTruth(
        pattern="hierarchy_wrapped_sink",
        rule="ssl-verifier",
        sink_class=factory_name,
        truly_vulnerable=insecure,
        expect_backdroid=False,
        expect_amandroid=insecure,
        notes="sink wrapped by app class hierarchy: BackDroid FN",
    )


def build_dead_code(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Several sinks in one method no entry point ever reaches.

    Multiple sink calls share the host method, exercising the Sec. IV-F
    sink-API-call cache: after the first call proves the method
    unreachable, the rest are served from cache.
    """
    name = f"{ns}.DeadStore"
    dead = app.new_class(name)
    m = dead.method("neverCalled", static=True)
    for _ in range(ctx.rng.randint(2, 4)):
        _emit_cipher_sink(m, _transformation(insecure))
    m.return_void()
    return GroundTruth(
        pattern="dead_code",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=False,
        expect_backdroid=False,
        expect_amandroid=False,
        notes="unreachable sinks: both tools must stay silent",
    )


def build_recursive_chain(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """A sink behind mutually recursive helpers (dead-loop detection).

    Backtracking from the sink revisits a method already on the path —
    the CrossBackward loop of Sec. IV-F, which the paper found in 60% of
    apps and names the most common loop type.
    """
    name = f"{ns}.RetryHelper"
    helper = app.new_class(name)
    ping = helper.method("ping", params=["java.lang.String"], static=True)
    p_arg = ping.param(0)
    ping.invoke_static(name, "pong", args=[p_arg], params=["java.lang.String"])
    ping.return_void()
    pong = helper.method("pong", params=["java.lang.String"], static=True)
    q_arg = pong.param(0)
    pong.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[q_arg],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    pong.invoke_static(name, "ping", args=[q_arg], params=["java.lang.String"])
    pong.return_void()
    host = f"{ns}.RecursiveActivity"
    activity = _register_activity(app, manifest, host)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    t = oc.const_string(_transformation(insecure))
    oc.invoke_static(name, "ping", args=[t], params=["java.lang.String"])
    oc.return_void()
    return GroundTruth(
        pattern="recursive_chain",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
        notes="mutual recursion on the backtracking path",
    )


def build_multi_sink_branch(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Two sink calls in one reachable method (if/else branches).

    The second call's host method is already cached by the sink-API-call
    cache (Sec. IV-F).
    """
    name = f"{ns}.BranchActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    first = oc.const_string(_transformation(insecure))
    oc.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[first],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    second = oc.const_string(GCM_TRANSFORMATION)
    oc.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[second],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    oc.return_void()
    return GroundTruth(
        pattern="multi_sink_branch",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
        notes="two sink calls share the host method",
    )


def build_icc_extra_dataflow(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink parameter carried across ICC as an Intent extra.

    The sender packs the cipher transformation with ``putExtra``; the
    receiving Service unpacks it with ``getStringExtra`` before reaching
    the sink.  BackDroid's ICC search plus the Intent API models resolve
    the value end to end; the whole-app baseline reaches the sink (the
    service is a registered entry) but cannot resolve the extra, so it
    stays silent.
    """
    service_name = f"{ns}.ExtraService"
    service = app.new_class(service_name, superclass="android.app.Service")
    service.default_constructor()
    osc = service.method(
        "onStartCommand",
        params=["android.content.Intent", "int", "int"],
        returns="int",
    )
    osc.this()
    intent = osc.param(0)
    osc.param(1)
    osc.param(2)
    key = osc.const_string("mode")
    mode = osc.invoke_virtual(
        intent, "android.content.Intent", "getStringExtra",
        args=[key], params=["java.lang.String"], returns="java.lang.String",
    )
    osc.invoke_static(
        "javax.crypto.Cipher", "getInstance", args=[mode],
        params=["java.lang.String"], returns="javax.crypto.Cipher",
    )
    osc.return_value(0)
    manifest.register(service_name, ComponentKind.SERVICE)

    name = f"{ns}.ExtraSenderActivity"
    activity = _register_activity(app, manifest, name)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    a_this = oc.this()
    oc.param(0)
    klass = oc.const_class(service_name)
    built = oc.new_init(
        "android.content.Intent", args=[a_this, klass],
        ctor_params=["android.content.Context", "java.lang.Class"],
    )
    oc.invoke_virtual(
        built, "android.content.Intent", "putExtra",
        args=["mode", _transformation(insecure)],
        params=["java.lang.String", "java.lang.String"],
        returns="android.content.Intent",
    )
    oc.invoke_virtual(
        a_this, "android.content.Context", "startService", args=[built],
        params=["android.content.Intent"],
        returns="android.content.ComponentName",
    )
    oc.return_void()
    return GroundTruth(
        pattern="icc_extra_dataflow",
        rule="crypto-ecb",
        sink_class=service_name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=False,
        notes="sink value carried as an Intent extra across ICC",
    )


def build_provider_entry(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Sink behind a ContentProvider's query() entry point.

    Exercises the fourth component kind: providers are entered by the
    framework through ``onCreate``/``query``/``insert``/... (Sec. II-A).
    """
    name = f"{ns}.CacheProvider"
    provider = app.new_class(name, superclass="android.content.ContentProvider")
    provider.default_constructor()
    on_create = provider.method("onCreate", returns="boolean")
    on_create.this()
    on_create.return_value(True)
    query = provider.method("query", params=["java.lang.String"],
                            returns="java.lang.Object")
    query.this()
    query.param(0)
    _emit_cipher_sink(query, _transformation(insecure))
    query.return_value(None)
    manifest.register(name, ComponentKind.PROVIDER)
    return GroundTruth(
        pattern="provider_entry",
        rule="crypto-ecb",
        sink_class=name,
        truly_vulnerable=insecure,
        expect_backdroid=insecure,
        expect_amandroid=insecure,
    )


def build_hazard_dangling(app, manifest, ns, ctx, insecure) -> GroundTruth:
    """Dangling references that trip the baseline's resolution errors.

    Reachable methods invoke signatures that resolve nowhere, standing in
    for the obfuscated/malformed code behind Amandroid's occasional
    "Could not find procedure" failures.
    """
    name = f"{ns}.ObfuscatedGlue"
    glue = app.new_class(name)
    m = glue.method("dispatch", static=True)
    for index in range(4):
        m.invoke_static(f"{ns}.missing.Stub{index}", "call")
    m.return_void()
    host = f"{ns}.GlueActivity"
    activity = _register_activity(app, manifest, host)
    oc = activity.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    oc.invoke_static(name, "dispatch")
    oc.return_void()
    return GroundTruth(
        pattern="hazard_dangling",
        rule=None,
        sink_class="",
        truly_vulnerable=False,
        expect_backdroid=False,
        expect_amandroid=False,
        notes="injects unresolved procedure references (baseline error)",
    )


#: name -> builder.
PATTERN_BUILDERS: dict[str, PatternBuilder] = {
    "direct_entry": build_direct_entry,
    "wrapper_chain": build_wrapper_chain,
    "string_built": build_string_built,
    "field_config": build_field_config,
    "super_poly": build_super_poly,
    "child_invocation": build_child_invocation,
    "clinit_path": build_clinit_path,
    "icc_explicit": build_icc_explicit,
    "icc_implicit": build_icc_implicit,
    "async_executor": build_async_executor,
    "async_asynctask": build_async_asynctask,
    "callback_onclick": build_callback_onclick,
    "library_skipped": build_library_skipped,
    "unregistered_component": build_unregistered_component,
    "hierarchy_wrapped_sink": build_hierarchy_wrapped_sink,
    "dead_code": build_dead_code,
    "recursive_chain": build_recursive_chain,
    "multi_sink_branch": build_multi_sink_branch,
    "provider_entry": build_provider_entry,
    "icc_extra_dataflow": build_icc_extra_dataflow,
    "hazard_dangling": build_hazard_dangling,
}


@dataclass(frozen=True)
class PatternSpec:
    """One pattern instantiation request (used by app specs)."""

    name: str
    insecure: bool = True
