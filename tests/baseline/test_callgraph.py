"""Unit tests for the whole-app call-graph builder."""

import pytest

from repro.android.apk import Apk
from repro.android.manifest import ComponentKind, Manifest
from repro.baseline.callgraph import build_whole_app_callgraph
from repro.baseline.config import AmandroidConfig, AnalysisError, AnalysisTimeout, Deadline
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.workload.paperapps import build_lg_tv_plus


def _simple_apk(register=True):
    app = AppBuilder()
    helper = app.new_class("com.a.Helper")
    hm = helper.method("help", static=True)
    hm.return_void()
    main = app.new_class("com.a.Main", superclass="android.app.Activity")
    main.default_constructor()
    oc = main.method("onCreate", params=["android.os.Bundle"])
    oc.this()
    oc.param(0)
    oc.invoke_static("com.a.Helper", "help")
    oc.return_void()
    manifest = Manifest("com.a")
    if register:
        manifest.register("com.a.Main", ComponentKind.ACTIVITY)
    return Apk(package="com.a", classes=app.build(), manifest=manifest)


class TestEntryPoints:
    def test_registered_component_is_entry(self):
        graph = build_whole_app_callgraph(_simple_apk())
        entry = MethodSignature("com.a.Main", "onCreate", ("android.os.Bundle",), "void")
        assert entry in graph.entry_points
        helper = MethodSignature("com.a.Helper", "help", (), "void")
        assert helper in graph.reachable

    def test_unregistered_component_still_entry_by_default(self):
        # The Amandroid behaviour behind its false positives.
        graph = build_whole_app_callgraph(_simple_apk(register=False))
        assert graph.entry_points

    def test_unregistered_component_excluded_when_configured(self):
        config = AmandroidConfig(treat_unregistered_components_as_entries=False)
        graph = build_whole_app_callgraph(_simple_apk(register=False), config)
        assert not graph.entry_points
        assert not graph.reachable


class TestEdgeWiring:
    def test_thread_start_edge_wired(self):
        app = AppBuilder()
        worker = app.new_class("com.a.W", superclass="java.lang.Thread")
        worker.default_constructor()
        run = worker.method("run")
        run.this()
        run.return_void()
        main = app.new_class("com.a.Main", superclass="android.app.Activity")
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        w = oc.new_init("com.a.W")
        oc.invoke_virtual(w, "java.lang.Thread", "start")
        oc.return_void()
        manifest = Manifest("com.a")
        manifest.register("com.a.Main", ComponentKind.ACTIVITY)
        apk = Apk(package="com.a", classes=app.build(), manifest=manifest)
        graph = build_whole_app_callgraph(apk)
        assert MethodSignature("com.a.W", "run", (), "void") in graph.reachable

    def test_executor_execute_edge_missing_by_design(self):
        # Sec. VI-C: Amandroid "failed to connect the flow from
        # AsyncTask.execute ... and Executor.execute" — the default edge
        # map omits Executor.execute, so the Fig. 4 run() is unreached.
        apk = build_lg_tv_plus()
        graph = build_whole_app_callgraph(apk)
        run = MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )
        assert run not in graph.reachable

    def test_explicit_icc_edge_wired(self):
        apk = build_lg_tv_plus()
        graph = build_whole_app_callgraph(apk)
        service_on_create = MethodSignature(
            "com.lge.app1.fota.HttpServerService", "onCreate", (), "void"
        )
        assert service_on_create in graph.reachable

    def test_clinit_edges_wired(self):
        apk = build_lg_tv_plus()
        graph = build_whole_app_callgraph(apk)
        clinit = MethodSignature("com.connectsdk.core.Util", "<clinit>", (), "void")
        assert clinit in graph.reachable


class TestLiblistSkipping:
    def test_library_methods_not_traversed(self):
        app = AppBuilder()
        lib = app.new_class("com.facebook.crypto.Helper")
        lm = lib.method("protect", static=True)
        lm.invoke_static(
            "javax.crypto.Cipher", "getInstance",
            args=[lm.const_string("AES/ECB/PKCS5Padding")],
            params=["java.lang.String"], returns="javax.crypto.Cipher",
        )
        lm.return_void()
        main = app.new_class("com.a.Main", superclass="android.app.Activity")
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        oc.invoke_static("com.facebook.crypto.Helper", "protect")
        oc.return_void()
        manifest = Manifest("com.a")
        manifest.register("com.a.Main", ComponentKind.ACTIVITY)
        apk = Apk(package="com.a", classes=app.build(), manifest=manifest)
        graph = build_whole_app_callgraph(apk)
        assert "com.facebook.crypto.Helper" in graph.skipped_library_classes

    def test_liblist_can_be_disabled(self):
        config = AmandroidConfig(skip_liblist=False)
        app = AppBuilder()
        lib = app.new_class("com.facebook.crypto.Helper")
        lm = lib.method("protect", static=True)
        lm.return_void()
        main = app.new_class("com.a.Main", superclass="android.app.Activity")
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        oc.invoke_static("com.facebook.crypto.Helper", "protect")
        oc.return_void()
        manifest = Manifest("com.a")
        manifest.register("com.a.Main", ComponentKind.ACTIVITY)
        apk = Apk(package="com.a", classes=app.build(), manifest=manifest)
        graph = build_whole_app_callgraph(apk, config)
        assert not graph.skipped_library_classes


class TestFailureModes:
    def test_unresolved_procedures_raise_analysis_error(self):
        app = AppBuilder()
        glue = app.new_class("com.a.Glue")
        m = glue.method("dispatch", static=True)
        for i in range(5):
            m.invoke_static(f"com.missing.Stub{i}", "call")
        m.return_void()
        main = app.new_class("com.a.Main", superclass="android.app.Activity")
        oc = main.method("onCreate", params=["android.os.Bundle"])
        oc.this()
        oc.param(0)
        oc.invoke_static("com.a.Glue", "dispatch")
        oc.return_void()
        manifest = Manifest("com.a")
        manifest.register("com.a.Main", ComponentKind.ACTIVITY)
        apk = Apk(package="com.a", classes=app.build(), manifest=manifest)
        with pytest.raises(AnalysisError, match="Could not find procedure"):
            build_whole_app_callgraph(apk)

    def test_deadline_raises_timeout(self):
        apk = build_lg_tv_plus()
        deadline = Deadline(timeout_seconds=0.0)
        with pytest.raises(AnalysisTimeout):
            build_whole_app_callgraph(apk, deadline=deadline)
