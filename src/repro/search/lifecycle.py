"""The on-demand lifecycle-handler search (Sec. IV-E).

Lifecycle handlers (``onCreate``, ``onStart``, ``onResume``, ...) are
invoked by the framework in component-specific orders.  The paper's
strategy: "first determine whether the dataflow tracking finishes when
reaching at a lifecycle handler.  If it does, we have no need to launch
further search ... Otherwise, we conduct a special search that leverages
existing domain knowledge to further track other lifecycle handlers that
invoke the callee handler."

Here that means: a handler of a *manifest-registered* component is an
entry point; when dataflow is still unresolved at a handler, its
domain-knowledge predecessors (e.g. ``onCreate`` before ``onStart``)
declared by the same class are offered as further backward targets.
"""

from __future__ import annotations

from repro.android.framework import (
    LIFECYCLE_HANDLERS,
    LIFECYCLE_PREDECESSORS,
    component_kind_of,
)
from repro.android.manifest import Manifest
from repro.dex.hierarchy import ClassPool
from repro.dex.types import MethodSignature


def lifecycle_base_of(pool: ClassPool, sig: MethodSignature) -> str | None:
    """The component base class whose lifecycle *sig* belongs to."""
    base = component_kind_of(pool, sig.class_name)
    if base is None:
        return None
    if sig.name not in LIFECYCLE_HANDLERS[base]:
        return None
    return base


def is_entry_handler(pool: ClassPool, manifest: Manifest, sig: MethodSignature) -> bool:
    """A lifecycle handler of a registered component is a valid entry.

    Unregistered components are dead code to the framework — this is
    exactly the check Amandroid misses, producing the six false positives
    of Sec. VI-C (flows from Activities "not in manifest").
    """
    if lifecycle_base_of(pool, sig) is None:
        return False
    if manifest.is_registered(sig.class_name):
        return True
    # A subclass may be registered while the handler lives in a base
    # class of the app's own hierarchy.
    for sub in pool.all_subclasses(sig.class_name):
        if manifest.is_registered(sub.name):
            return True
    return False


def lifecycle_predecessor_handlers(
    pool: ClassPool, sig: MethodSignature
) -> list[MethodSignature]:
    """Domain-knowledge predecessors of a handler, declared by the class.

    E.g. for ``onResume`` of an Activity, returns the class's own
    ``onStart`` / ``onPause`` implementations (if declared) so the
    backward slicer can keep tracking an unresolved dataflow across
    handler boundaries.
    """
    base = lifecycle_base_of(pool, sig)
    if base is None:
        return []
    predecessor_names = LIFECYCLE_PREDECESSORS.get(base, {}).get(sig.name, ())
    cls = pool.get(sig.class_name)
    if cls is None:
        return []
    found: list[MethodSignature] = []
    for name in predecessor_names:
        method = cls.find_method(name)
        if method is not None and method.has_body:
            found.append(method.signature())
    return found
