"""Cross-app shard dedup: two overlapping apps, one stored library.

Two synthetic apps embed the same vendored SDK.  The artifact store
splits each app's token stream and posting lists into per-class-group
*shards* keyed by content, so the SDK's shard is persisted exactly once:

1. app one is saved — its own group *and* the SDK group are published;
2. app two is saved — only its own group is new; the SDK shard is
   shared (``shards_shared`` counts it);
3. both apps restore to indexes **byte-identical** to fresh builds;
4. a third app that was *never saved* still warm-starts: the SDK shard
   already on disk composes in, and only the app's own group is folded
   (``patched_groups`` — the incremental re-indexing path).

Run with::

    PYTHONPATH=src python examples/store_sharding.py
"""

import tempfile

from repro.search.backends.indexed import TokenIndex
from repro.store import ArtifactStore
from repro.workload.generator import AppSpec, LibrarySpec, generate_app

SDK = LibrarySpec(package="org.vendored.sdk", seed=3, classes=20,
                  methods_per_class=6)


def _spec(package: str, seed: int) -> AppSpec:
    return AppSpec(package=package, seed=seed, filler_classes=6,
                   libraries=(SDK,))


def _assert_parity(restored: TokenIndex, fresh: TokenIndex) -> None:
    assert restored.vocab == fresh.vocab
    assert restored.postings == fresh.postings
    assert restored.exact == fresh.exact
    assert restored.containing == fresh.containing
    assert restored._string_ids == fresh._string_ids


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="bdshard-demo-") as root:
        store = ArtifactStore(root)

        # --- save two apps that share the SDK ------------------------
        one = generate_app(_spec("com.example.alpha", 1)).apk.disassembly
        two = generate_app(_spec("com.example.beta", 2)).apk.disassembly
        store.save_index(one)
        store.save_index(two)
        inventory = store.describe()
        print(f"apps saved        : 2")
        print(f"unique shards     : {inventory.shards} "
              f"({inventory.shard_refs} manifest references)")
        print(f"bytes saved       : {inventory.bytes_saved} "
              f"(dedup ratio {inventory.dedup_ratio:.2f}x)")
        assert store.stats.shards_shared >= 1, "the SDK shard must dedup"
        assert inventory.shard_refs > inventory.shards

        # --- restores are byte-identical to fresh builds -------------
        for spec in (_spec("com.example.alpha", 1), _spec("com.example.beta", 2)):
            disassembly = generate_app(spec).apk.disassembly
            restored = store.load_index(disassembly)
            assert restored is not None and restored.patched_groups == 0
            assert restored.build_seconds == 0.0
            _assert_parity(restored, TokenIndex.for_disassembly(disassembly))
        print("parity            : restored indexes == fresh builds")

        # --- a never-saved sibling app warm-starts off the SDK -------
        gamma = generate_app(_spec("com.example.gamma", 3)).apk.disassembly
        restored = store.load_index(gamma)
        assert restored is not None, "SDK shard should make this a partial hit"
        assert restored.patched_groups >= 1
        _assert_parity(restored, TokenIndex(gamma))
        print(f"cross-app warm    : gamma composed "
              f"{len(store._groups(gamma)) - restored.patched_groups} shared "
              f"shard(s), folded {restored.patched_groups} of its own")
        print("store counters    :", store.stats.as_dict())


if __name__ == "__main__":
    main()
