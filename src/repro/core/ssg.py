"""The self-contained slicing graph (SSG), Sec. V-A.

"Since our bytecode search reveals only inter-procedural relationships
and we do not have a whole-app graph, we need our own graph structure to
record all the slicing and inter-procedural information during the
backtracking."

Compared with traditional path-like slices, the SSG additionally keeps:

* a **hierarchical taint map** — one taint set per tracked method,
  organised by method signature, plus a global set for static fields;
* **inter-procedural relationships** — a cross-method edge per
  relationship the bytecode search uncovered (call edges, and paired
  calling/return edges for contained methods);
* **raw typed bytecode statements** — each node is an :class:`SSGUnit`
  wrapping the original statement in its IR form, so the forward
  analysis can recover the complete representation of sink parameters;
* a special **static-initializer track** per unresolved static field,
  added on demand after the main taint process (Sec. V-A, "Adding
  off-path static initializers into SSG on demand").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.android.framework import SinkSpec
from repro.dex.instructions import Stmt
from repro.dex.types import FieldSignature, MethodSignature


@dataclass(frozen=True, eq=False)
class SSGUnit:
    """One SSG node: a raw typed statement plus its program location.

    Units compare and hash by identity: ``SSG.add_unit`` interns one unit
    per program location, so identity equality is location equality.
    """

    uid: int
    method: MethodSignature
    stmt_index: int
    stmt: Stmt

    def __str__(self) -> str:
        return f"#{self.uid} [{self.method.to_soot()}] {self.stmt}"


@dataclass(frozen=True)
class CallBinding:
    """An inter-procedural relationship resolved by bytecode search.

    ``kind`` distinguishes the relationship flavours the SSG records:

    * ``"param"`` — the callee's parameters bind to the caller's
      arguments at the site (backward search ascended to a caller);
    * ``"return"`` — the caller consumes the callee's return value
      (backward slicing descended into a contained method);
    * ``"constructor"`` — the site constructs an object whose methods
      are analyzed (advanced-search anchor);
    * ``"this"`` — the callee's receiver binds to the site's base.
    """

    caller: MethodSignature
    site_index: int
    callee: MethodSignature
    kind: str


class SSG:
    """One self-contained slicing graph, for one sink API call."""

    def __init__(self, sink_method: MethodSignature, sink_index: int, spec: SinkSpec):
        self.sink_method = sink_method
        self.sink_index = sink_index
        self.spec = spec
        self._uids = itertools.count()
        self._units: dict[tuple[MethodSignature, int], SSGUnit] = {}
        #: forward-direction edges (producer unit -> consumer unit).
        self._succ: dict[int, set[int]] = {}
        self._pred: dict[int, set[int]] = {}
        #: hierarchical taint map: per-method local taint sets.
        self.taint_map: dict[MethodSignature, set[str]] = {}
        #: the global taint set for static (and instance) fields.
        self.field_taints: set[FieldSignature] = set()
        #: inter-procedural relationships uncovered by search.
        self.bindings: list[CallBinding] = []
        #: special static-initializer tracks (field -> its track units).
        self.static_tracks: dict[FieldSignature, list[SSGUnit]] = {}
        #: static fields left unresolved after the main taint process.
        self.unresolved_static_fields: set[FieldSignature] = set()
        #: entry information established by the backward search.
        self.reached_entry = False
        self.entry_points: set[MethodSignature] = set()
        #: diagnostics accumulated during slicing.
        self.notes: list[str] = []

    # ------------------------------------------------------------------
    # Nodes and edges
    # ------------------------------------------------------------------
    def sink_unit(self) -> Optional[SSGUnit]:
        return self._units.get((self.sink_method, self.sink_index))

    def add_unit(self, method: MethodSignature, stmt_index: int, stmt: Stmt) -> SSGUnit:
        """Record a raw typed statement (idempotent per location)."""
        key = (method, stmt_index)
        unit = self._units.get(key)
        if unit is None:
            unit = SSGUnit(uid=next(self._uids), method=method,
                           stmt_index=stmt_index, stmt=stmt)
            self._units[key] = unit
        return unit

    def unit_at(self, method: MethodSignature, stmt_index: int) -> Optional[SSGUnit]:
        return self._units.get((method, stmt_index))

    def add_flow_edge(self, producer: SSGUnit, consumer: SSGUnit) -> None:
        """A forward dataflow/control edge: *producer* feeds *consumer*."""
        if producer.uid == consumer.uid:
            return
        self._succ.setdefault(producer.uid, set()).add(consumer.uid)
        self._pred.setdefault(consumer.uid, set()).add(producer.uid)

    def add_binding(self, binding: CallBinding) -> None:
        self.bindings.append(binding)

    # ------------------------------------------------------------------
    # Taint map
    # ------------------------------------------------------------------
    def taint_local(self, method: MethodSignature, local_name: str) -> None:
        self.taint_map.setdefault(method, set()).add(local_name)

    def taint_field(self, fieldsig: FieldSignature) -> None:
        self.field_taints.add(fieldsig)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def units(self) -> Iterator[SSGUnit]:
        return iter(self._units.values())

    def units_of(self, method: MethodSignature) -> list[SSGUnit]:
        """The recorded units of one method, in statement order."""
        found = [u for (m, _), u in self._units.items() if m == method]
        return sorted(found, key=lambda u: u.stmt_index)

    def methods(self) -> set[MethodSignature]:
        return {m for m, _ in self._units}

    def tail_units(self) -> list[SSGUnit]:
        """Entry-most units (no recorded producer) — traversal starts here."""
        return [u for u in self._units.values() if not self._pred.get(u.uid)]

    def successors(self, unit: SSGUnit) -> list[SSGUnit]:
        by_uid = {u.uid: u for u in self._units.values()}
        return [by_uid[uid] for uid in sorted(self._succ.get(unit.uid, ()))]

    def bindings_into(self, callee: MethodSignature) -> list[CallBinding]:
        return [b for b in self.bindings if b.callee == callee]

    def __len__(self) -> int:
        return len(self._units)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """A human-readable dump in the spirit of Fig. 6."""
        lines = [f"SSG for sink {self.spec.description} at "
                 f"{self.sink_method.to_soot()}[{self.sink_index}]"]
        lines.append(f"  reached entry: {self.reached_entry}"
                     f" via {sorted(str(e) for e in self.entry_points)}")
        for method in sorted(self.methods(), key=str):
            lines.append(f"  {method.to_soot()}")
            for unit in self.units_of(method):
                lines.append(f"    [{unit.stmt_index:3}] {unit.stmt}")
        for fieldsig, track in sorted(self.static_tracks.items(), key=lambda i: str(i[0])):
            lines.append(f"  <static track {fieldsig.to_soot()}>")
            for unit in track:
                lines.append(f"    [{unit.stmt_index:3}] {unit.stmt}")
        return "\n".join(lines)
