"""The adjusted backward taint slicing that generates SSGs (Sec. V-A).

Starting from a sink API call located by the initial bytecode search, the
slicer walks statements *backwards*, tainting the values that feed the
tracked sink parameters.  Whenever the walk reaches a method head with
unresolved taints (or with entry reachability still unproven), the
caller-resolution engine — i.e. the on-the-fly bytecode search of
Sec. IV — supplies the callers to continue in.

The Sec. V-A specifics reproduced here:

* **fields** — tainting an instance field taints both ``obj.field`` and
  ``obj`` itself; a bytecode *field-signature search* then captures every
  method that writes the field, and only those contained methods are
  analyzed (the paper's optimisation over jumping into all contained
  methods);
* **arrays** — tainting an element taints the array object;
* **contained methods** — a tainted call result descends into the callee
  at its return statements, recording paired calling/return edges;
* **static initializer tracks** — ``<clinit>`` writers found by the field
  search are sliced *locally* into a special SSG track (they run
  implicitly at class-load time, so no caller ascent applies); leftovers
  are handled after the main pass ("off-path" initializers, on demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.android.apk import Apk
from repro.android.framework import SinkSpec, is_framework_class
from repro.dex.hierarchy import DexMethod
from repro.dex.instructions import (
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    Constant,
    IdentityStmt,
    InstanceFieldRef,
    InvokeExpr,
    Local,
    ParameterRef,
    PhiExpr,
    ReturnStmt,
    StaticFieldRef,
    Stmt,
    ThisRef,
)
from repro.dex.types import FieldSignature, MethodSignature
from repro.search.common import ResolvedCaller
from repro.search.engine import CallerResolutionEngine
from repro.core.ssg import SSG, CallBinding, SSGUnit


@dataclass(frozen=True)
class SinkCallSite:
    """One located sink API call."""

    method: MethodSignature
    stmt_index: int
    spec: SinkSpec

    @property
    def key(self) -> str:
        return f"{self.method.to_dex()}@{self.stmt_index}"


@dataclass(frozen=True)
class _Frame:
    """One backward-walk work item.

    The walk processes statements ``start-1, start-2, ..., 0`` of
    ``method``.  ``tainted`` holds the local names tainted at the walk's
    beginning; ``consumer`` is the SSG unit the frame's discoveries feed
    (for flow-edge wiring); ``path`` is the backtracking chain for
    CrossBackward loop detection.
    """

    method: MethodSignature
    start: int
    tainted: frozenset[str]
    path: tuple[MethodSignature, ...]
    consumer: Optional[SSGUnit] = None


class BackwardSlicer:
    """Generates one SSG per sink API call."""

    def __init__(
        self,
        apk: Apk,
        engine: Optional[CallerResolutionEngine] = None,
        max_frames: int = 4000,
    ) -> None:
        self.apk = apk
        self.pool = apk.full_pool
        self.engine = engine if engine is not None else CallerResolutionEngine(apk)
        self.searcher = self.engine.searcher
        self.loops = self.engine.loops
        self.max_frames = max_frames

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def slice_sink(self, site: SinkCallSite) -> SSG:
        """Backward-slice one sink call into a self-contained SSG."""
        ssg = SSG(site.method, site.stmt_index, site.spec)
        method = self.pool.resolve_method(site.method)
        if method is None or site.stmt_index >= len(method.body):
            ssg.notes.append("sink method unresolvable")
            return ssg
        stmt = method.body[site.stmt_index]
        expr = stmt.invoke_expr()
        if expr is None:
            ssg.notes.append("sink statement is not an invocation")
            return ssg
        sink_unit = ssg.add_unit(site.method, site.stmt_index, stmt)

        tainted: set[str] = set()
        for index in site.spec.tracked_params:
            if index < len(expr.args) and isinstance(expr.args[index], Local):
                tainted.add(expr.args[index].name)
                ssg.taint_local(site.method, expr.args[index].name)
        # Constructor sinks (e.g. ``new ServerSocket(port)``): the
        # receiver's allocation is part of the slice as well.
        if expr.base is not None and expr.method.is_constructor:
            tainted.add(expr.base.name)

        self._expanded_fields: set[FieldSignature] = set()
        self._visited: set[tuple[MethodSignature, int, frozenset[str]]] = set()
        self._frames: list[_Frame] = []
        self._frame_budget = self.max_frames
        self._push(
            ssg,
            _Frame(
                method=site.method,
                start=site.stmt_index,
                tainted=frozenset(tainted),
                path=(site.method,),
                consumer=sink_unit,
            ),
        )
        while self._frames and self._frame_budget > 0:
            self._frame_budget -= 1
            self._process(ssg, self._frames.pop())
        if self._frame_budget <= 0:
            ssg.notes.append("frame budget exhausted")
        self._add_offpath_clinit_tracks(ssg)
        return ssg

    # ------------------------------------------------------------------
    def _push(self, ssg: SSG, frame: _Frame) -> None:
        key = (frame.method, frame.start, frame.tainted)
        if key in self._visited:
            return
        self._visited.add(key)
        self._frames.append(frame)

    # ------------------------------------------------------------------
    # Frame processing: the backward walk
    # ------------------------------------------------------------------
    def _process(self, ssg: SSG, frame: _Frame) -> None:
        method = self.pool.resolve_method(frame.method)
        if method is None or not method.has_body:
            return
        tainted = set(frame.tainted)
        for name in tainted:
            ssg.taint_local(frame.method, name)
        tainted_params: set[int] = set()
        this_tainted = False
        last_unit = frame.consumer

        for index in range(frame.start - 1, -1, -1):
            stmt = method.body[index]

            if isinstance(stmt, IdentityStmt):
                if stmt.local.name in tainted:
                    last_unit = self._record(ssg, frame.method, index, stmt, last_unit)
                    tainted.discard(stmt.local.name)
                    if isinstance(stmt.ref, ParameterRef):
                        tainted_params.add(stmt.ref.index)
                    elif isinstance(stmt.ref, ThisRef):
                        this_tainted = True
                continue

            if isinstance(stmt, AssignStmt):
                lhs = stmt.lhs
                if isinstance(lhs, Local) and lhs.name in tainted:
                    last_unit = self._record(ssg, frame.method, index, stmt, last_unit)
                    tainted.discard(lhs.name)
                    self._taint_rhs(ssg, frame, method, index, stmt, tainted, last_unit)
                    continue
                if (
                    isinstance(lhs, (InstanceFieldRef, StaticFieldRef))
                    and lhs.fieldsig in ssg.field_taints
                ):
                    # An upstream write to an already-tainted field.
                    last_unit = self._record(ssg, frame.method, index, stmt, last_unit)
                    for local in stmt.used_locals():
                        tainted.add(local.name)
                    continue
                if isinstance(lhs, ArrayRef) and lhs.base.name in tainted:
                    # aput into a tainted array: the stored value matters.
                    last_unit = self._record(ssg, frame.method, index, stmt, last_unit)
                    for local in stmt.used_locals():
                        tainted.add(local.name)
                    continue

            expr = stmt.invoke_expr()
            if (
                expr is not None
                and expr.base is not None
                and expr.base.name in tainted
                and expr.method.is_constructor
            ):
                # The construction of a tainted object: its arguments
                # feed the object's members (NewObj capture in the
                # forward phase).
                last_unit = self._record(ssg, frame.method, index, stmt, last_unit)
                for arg in expr.args:
                    for local in arg.used_locals():
                        tainted.add(local.name)
                self._descend_constructor(ssg, frame, index, expr)
                continue
            if (
                expr is not None
                and expr.base is not None
                and expr.base.name in tainted
                and is_framework_class(expr.method.class_name)
            ):
                # A framework mutator on a tainted object (e.g.
                # ``intent.putExtra(key, value)``): record it and taint
                # its inputs so the forward API models can replay the
                # mutation.
                last_unit = self._record(ssg, frame.method, index, stmt, last_unit)
                for arg in expr.args:
                    for local in arg.used_locals():
                        tainted.add(local.name)
                continue

        self._on_method_head(ssg, frame, method, tainted_params, this_tainted, last_unit)

    # ------------------------------------------------------------------
    def _record(
        self,
        ssg: SSG,
        method: MethodSignature,
        index: int,
        stmt: Stmt,
        consumer: Optional[SSGUnit],
    ) -> SSGUnit:
        unit = ssg.add_unit(method, index, stmt)
        if consumer is not None:
            ssg.add_flow_edge(unit, consumer)
        return unit

    # ------------------------------------------------------------------
    def _taint_rhs(
        self,
        ssg: SSG,
        frame: _Frame,
        method: DexMethod,
        index: int,
        stmt: AssignStmt,
        tainted: set[str],
        unit: SSGUnit,
    ) -> None:
        rhs = stmt.rhs
        if isinstance(rhs, Constant):
            return
        if isinstance(rhs, Local):
            tainted.add(rhs.name)
            return
        if isinstance(rhs, (CastExpr, PhiExpr, BinopExpr)):
            for local in rhs.used_locals():
                tainted.add(local.name)
            return
        if isinstance(rhs, InstanceFieldRef):
            # Taint the field itself *and* its class object so the same
            # field is traced across aliases and method boundaries.
            ssg.taint_field(rhs.fieldsig)
            tainted.add(rhs.base.name)
            self._expand_field_writes(ssg, rhs.fieldsig, frame.path, unit)
            return
        if isinstance(rhs, StaticFieldRef):
            ssg.taint_field(rhs.fieldsig)
            self._expand_field_writes(ssg, rhs.fieldsig, frame.path, unit)
            return
        if isinstance(rhs, ArrayRef):
            tainted.add(rhs.base.name)
            for local in rhs.index.used_locals():
                tainted.add(local.name)
            return
        if isinstance(rhs, InvokeExpr):
            self._descend_contained(ssg, frame, index, rhs, tainted, unit)
            return
        # NewExpr / NewArrayExpr: the allocation itself, nothing upstream.

    # ------------------------------------------------------------------
    # Contained methods (descending for return values)
    # ------------------------------------------------------------------
    def _descend_contained(
        self,
        ssg: SSG,
        frame: _Frame,
        site_index: int,
        expr: InvokeExpr,
        tainted: set[str],
        unit: SSGUnit,
    ) -> None:
        target = self.pool.resolve_method(expr.method)
        if target is None or not target.has_body or is_framework_class(
            target.declaring_class
        ):
            # A framework/API call: conservatively taint its inputs; the
            # forward phase models the API's semantics (Sec. V-B).
            if expr.base is not None:
                tainted.add(expr.base.name)
            for arg in expr.args:
                for local in arg.used_locals():
                    tainted.add(local.name)
            return
        target_sig = target.signature()
        if self.loops.check_inner_backward(frame.path, target_sig):
            return
        ssg.add_binding(
            CallBinding(frame.method, site_index, target_sig, kind="return")
        )
        for return_index, stmt in enumerate(target.body):
            if not isinstance(stmt, ReturnStmt) or stmt.value is None:
                continue
            return_unit = self._record(ssg, target_sig, return_index, stmt, unit)
            new_taints = frozenset(
                local.name for local in stmt.value.used_locals()
            )
            self._push(
                ssg,
                _Frame(
                    method=target_sig,
                    start=return_index,
                    tainted=new_taints,
                    path=frame.path + (target_sig,),
                    consumer=return_unit,
                ),
            )

    def _descend_constructor(
        self, ssg: SSG, frame: _Frame, site_index: int, expr: InvokeExpr
    ) -> None:
        target = self.pool.resolve_method(expr.method)
        if target is None or not target.has_body or is_framework_class(
            target.declaring_class
        ):
            return
        ssg.add_binding(
            CallBinding(frame.method, site_index, target.signature(), kind="param")
        )

    # ------------------------------------------------------------------
    # Field-signature searches (Sec. V-A)
    # ------------------------------------------------------------------
    def _expand_field_writes(
        self,
        ssg: SSG,
        fieldsig: FieldSignature,
        path: tuple[MethodSignature, ...],
        unit: SSGUnit,
    ) -> None:
        if fieldsig in self._expanded_fields:
            return
        self._expanded_fields.add(fieldsig)
        if is_framework_class(fieldsig.class_name):
            # Framework constants (e.g. ALLOW_ALL_HOSTNAME_VERIFIER) are
            # resolved by the forward phase's constant table.
            return
        writes = self.searcher.find_field_accesses(fieldsig, writes_only=True)
        if not writes:
            resolved = self.pool.resolve_field(fieldsig)
            if resolved is not None and resolved.is_static:
                ssg.unresolved_static_fields.add(fieldsig)
            return
        for hit in writes:
            if hit.method is None or hit.stmt_index is None:
                continue
            writer = self.pool.resolve_method(hit.method)
            if writer is None or hit.stmt_index >= len(writer.body):
                continue
            if writer.is_static_initializer:
                self._build_static_track(ssg, fieldsig, writer, hit.stmt_index)
                continue
            stmt = writer.body[hit.stmt_index]
            write_unit = self._record(ssg, hit.method, hit.stmt_index, stmt, unit)
            taints = frozenset(local.name for local in stmt.used_locals())
            if hit.method in path:
                self.loops.check_backward(path, hit.method)
                continue
            self._push(
                ssg,
                _Frame(
                    method=hit.method,
                    start=hit.stmt_index,
                    tainted=taints,
                    path=path + (hit.method,),
                    consumer=write_unit,
                ),
            )

    def _build_static_track(
        self,
        ssg: SSG,
        fieldsig: FieldSignature,
        clinit: DexMethod,
        write_index: int,
    ) -> None:
        """Slice a ``<clinit>`` writer locally into the static track.

        Only the relevant statements are added (Sec. V-A); no caller
        ascent happens — static initializers run implicitly at class
        load, and their control-flow reachability is judged separately
        by the Sec. IV-C recursive search when they appear on-path.
        """
        track = ssg.static_tracks.setdefault(fieldsig, [])
        clinit_sig = clinit.signature()
        write_stmt = clinit.body[write_index]
        needed = {local.name for local in write_stmt.used_locals()}
        picked: list[tuple[int, Stmt]] = [(write_index, write_stmt)]
        for index in range(write_index - 1, -1, -1):
            stmt = clinit.body[index]
            defs = [d for d in stmt.defs() if isinstance(d, Local)]
            if any(d.name in needed for d in defs):
                picked.append((index, stmt))
                for d in defs:
                    needed.discard(d.name)
                for local in stmt.used_locals():
                    needed.add(local.name)
        for index, stmt in sorted(picked):
            track_unit = ssg.add_unit(clinit_sig, index, stmt)
            if track_unit not in track:
                track.append(track_unit)
        track.sort(key=lambda u: u.stmt_index)

    def _add_offpath_clinit_tracks(self, ssg: SSG) -> None:
        """Resolve leftover static fields from their ``<clinit>``, if any.

        After the main taint process, any still-unresolved static field
        whose class declares a static initializer gets a special track
        built from it (the paper's off-path case).
        """
        for fieldsig in sorted(ssg.unresolved_static_fields, key=str):
            if fieldsig in ssg.static_tracks:
                continue
            cls = self.pool.get(fieldsig.class_name)
            if cls is None:
                continue
            clinit = cls.static_initializer()
            if clinit is None or not clinit.has_body:
                continue
            for index, stmt in enumerate(clinit.body):
                lhs = stmt.defs()[0] if stmt.defs() else None
                if isinstance(lhs, StaticFieldRef) and lhs.fieldsig == fieldsig:
                    self._build_static_track(ssg, fieldsig, clinit, index)
        ssg.unresolved_static_fields -= set(ssg.static_tracks)

    # ------------------------------------------------------------------
    # Method heads: ascend via the on-the-fly searches
    # ------------------------------------------------------------------
    def _on_method_head(
        self,
        ssg: SSG,
        frame: _Frame,
        method: DexMethod,
        tainted_params: set[int],
        this_tainted: bool,
        last_unit: Optional[SSGUnit],
    ) -> None:
        has_dataflow = bool(tainted_params) or this_tainted
        if not has_dataflow and ssg.reached_entry:
            return  # pure-reachability frame and entry already proven

        resolution = self.engine.resolve(frame.method)
        if resolution.is_entry:
            ssg.reached_entry = True
            ssg.entry_points.add(frame.method)
        if resolution.clinit_reachable is not None:
            if resolution.clinit_reachable:
                ssg.reached_entry = True
                ssg.entry_points.add(frame.method)
                ssg.notes.append(
                    f"clinit reachable via {' <- '.join(resolution.clinit_chain)}"
                )
            return

        for caller in resolution.callers:
            if caller.kind == "lifecycle":
                if this_tainted:
                    self._ascend_lifecycle(ssg, frame, caller, last_unit)
                continue
            if self.loops.check_backward(frame.path, caller.method):
                continue
            if caller.kind == "direct":
                self._ascend_direct(
                    ssg, frame, caller, tainted_params, this_tainted, last_unit
                )
            elif caller.kind == "constructor":
                self._ascend_constructor(ssg, frame, caller, last_unit)
            elif caller.kind == "icc":
                self._ascend_icc(ssg, frame, caller, method, tainted_params, last_unit)

    def _ascend_direct(
        self,
        ssg: SSG,
        frame: _Frame,
        caller: ResolvedCaller,
        tainted_params: set[int],
        this_tainted: bool,
        last_unit: Optional[SSGUnit],
    ) -> None:
        caller_method = self.pool.resolve_method(caller.method)
        if caller_method is None or caller.stmt_index >= len(caller_method.body):
            return
        site_stmt = caller_method.body[caller.stmt_index]
        expr = site_stmt.invoke_expr()
        if expr is None:
            return
        site_unit = self._record(ssg, caller.method, caller.stmt_index, site_stmt, last_unit)
        ssg.add_binding(
            CallBinding(caller.method, caller.stmt_index, frame.method, kind="param")
        )
        new_taints: set[str] = set()
        for index in tainted_params:
            if index < len(expr.args):
                for local in expr.args[index].used_locals():
                    new_taints.add(local.name)
        if this_tainted and expr.base is not None:
            new_taints.add(expr.base.name)
            ssg.add_binding(
                CallBinding(caller.method, caller.stmt_index, frame.method, kind="this")
            )
        self._push(
            ssg,
            _Frame(
                method=caller.method,
                start=caller.stmt_index,
                tainted=frozenset(new_taints),
                path=frame.path + (caller.method,),
                consumer=site_unit,
            ),
        )

    def _ascend_constructor(
        self,
        ssg: SSG,
        frame: _Frame,
        caller: ResolvedCaller,
        last_unit: Optional[SSGUnit],
    ) -> None:
        caller_method = self.pool.resolve_method(caller.method)
        if caller_method is None or caller.stmt_index >= len(caller_method.body):
            return
        allocation = caller_method.body[caller.stmt_index]
        allocation_unit = self._record(
            ssg, caller.method, caller.stmt_index, allocation, last_unit
        )
        ssg.add_binding(
            CallBinding(caller.method, caller.stmt_index, frame.method, kind="constructor")
        )
        for link in caller.chain:
            ssg.notes.append(
                f"advanced chain: {link.method.to_soot()}[{link.site_index}]"
            )
        taints: set[str] = set()
        if caller.object_local is not None:
            taints.add(caller.object_local.name)
        self._push(
            ssg,
            _Frame(
                method=caller.method,
                start=caller.stmt_index + 1,
                tainted=frozenset(taints),
                path=frame.path + (caller.method,),
                consumer=allocation_unit,
            ),
        )

    def _ascend_icc(
        self,
        ssg: SSG,
        frame: _Frame,
        caller: ResolvedCaller,
        callee_method: DexMethod,
        tainted_params: set[int],
        last_unit: Optional[SSGUnit],
    ) -> None:
        caller_method = self.pool.resolve_method(caller.method)
        if caller_method is None or caller.stmt_index >= len(caller_method.body):
            return
        site_stmt = caller_method.body[caller.stmt_index]
        site_unit = self._record(ssg, caller.method, caller.stmt_index, site_stmt, last_unit)
        ssg.add_binding(
            CallBinding(caller.method, caller.stmt_index, frame.method, kind="icc")
        )
        # Intent-extra dataflow: when the handler's tainted parameter is
        # the Intent itself, the backward walk continues at the Intent
        # argument of the ICC call, so putExtra values resolve.
        taints: set[str] = set()
        intent_param_tainted = any(
            callee_method.param_types[index] == "android.content.Intent"
            for index in tainted_params
            if index < len(callee_method.param_types)
        )
        site_expr = site_stmt.invoke_expr()
        if intent_param_tainted and site_expr is not None:
            for arg in site_expr.args:
                if getattr(arg, "java_type", "") == "android.content.Intent":
                    taints.add(arg.name)
        self._push(
            ssg,
            _Frame(
                method=caller.method,
                start=caller.stmt_index,
                tainted=frozenset(taints),
                path=frame.path + (caller.method,),
                consumer=site_unit,
            ),
        )

    def _ascend_lifecycle(
        self,
        ssg: SSG,
        frame: _Frame,
        caller: ResolvedCaller,
        last_unit: Optional[SSGUnit],
    ) -> None:
        predecessor = self.pool.resolve_method(caller.method)
        if predecessor is None or not predecessor.has_body:
            return
        if self.loops.check_backward(frame.path, caller.method):
            return
        this_locals = {
            stmt.local.name
            for stmt in predecessor.body
            if isinstance(stmt, IdentityStmt) and isinstance(stmt.ref, ThisRef)
        }
        self._push(
            ssg,
            _Frame(
                method=caller.method,
                start=len(predecessor.body),
                tainted=frozenset(this_locals),
                path=frame.path + (caller.method,),
                consumer=last_unit,
            ),
        )
