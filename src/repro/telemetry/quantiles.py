"""The shared nearest-rank quantile helper.

One implementation serves the scheduler's lane-depth percentiles, the
async server's event-loop lag stats and the metrics histogram type, so
they agree on edge cases: a window with fewer than two samples has no
meaningful distribution and reports ``None`` (rendered as JSON
``null``), never a fabricated 0.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: The default fractions ``summarize`` reports, matching the
#: ``p50``/``p90``/``p99`` keys the service has always exposed.
DEFAULT_FRACTIONS = (0.50, 0.90, 0.99)


def quantile(samples: Iterable[float], fraction: float) -> Optional[float]:
    """Nearest-rank quantile of *samples*; ``None`` below two samples.

    *fraction* is in ``[0, 1]`` (``0.99`` for p99; ``1.0`` is the max).
    The input need not be sorted.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction!r}")
    ordered = sorted(samples)
    count = len(ordered)
    if count < 2:
        return None
    rank = max(1, min(count, math.ceil(fraction * count)))
    return float(ordered[rank - 1])


def summarize(
    samples: Iterable[float],
    fractions: Iterable[float] = DEFAULT_FRACTIONS,
) -> dict:
    """``{"p50": ..., "p90": ..., ...}`` over one sample window.

    Keys are derived from the fraction (``0.5 -> "p50"``,
    ``0.999 -> "p99.9"``); values follow :func:`quantile`'s ``None``
    semantics for degenerate windows.
    """
    ordered = sorted(samples)
    result = {}
    for fraction in fractions:
        label = f"{fraction * 100:g}"
        result[f"p{label}"] = quantile(ordered, fraction)
    return result
