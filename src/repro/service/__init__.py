"""The persistent analysis service: resident BackDroid, served over HTTP.

The batch driver amortizes work across one invocation; this package
amortizes it across *queries*, the way a market-scale vetting service
would run:

* :mod:`repro.service.jobs` — :class:`Job` records and the thread-safe
  :class:`JobQueue`: lifecycle (``queued → running →
  done|failed|cancelled``), in-flight dedup (same disassembly sha *and*
  same analysis request coalesce onto one analysis), cancellation and
  bounded retention of finished jobs;
* :mod:`repro.service.scheduler` — the :class:`StoreAwareScheduler`:
  probes the :class:`~repro.store.ArtifactStore` at submit time and
  dispatches warm submissions (stored outcome or restorable index) to a
  small in-process fast lane while cold submissions get the main pool —
  in-process threads, or (``cold_executor="process"``) worker processes
  so cold CPU work never shares the GIL with warm restores — with
  per-lane depth/wait/utilization statistics;
* :mod:`repro.service.workers` — the process-isolation substrate:
  the module-level worker entry point shared with
  ``run_batch --executor process`` and the :class:`ProcessLane` of
  long-lived worker processes (kill a running analysis, survive worker
  crashes, respawn to constant capacity);
* :mod:`repro.service.server` — the stdlib-only JSON HTTP API
  (``POST /v1/jobs`` with per-job rule/backend/budget overrides,
  ``GET /v1/jobs/<id>``, ``DELETE /v1/jobs/<id>``, ``GET /v1/stats``,
  ``GET /healthz``): the transport-agnostic :class:`ServiceAPI` router,
  the asyncio :class:`AnalysisServer` front end, the legacy
  :class:`ThreadedAnalysisServer` baseline, and the matching (retrying)
  :class:`ServiceClient`;
* :mod:`repro.service.cluster` — multi-node sharding over one shared
  store: :class:`NodeDirectory` heartbeat gossip, the fenced
  :class:`SpecmapLease`, the content-key-routing :class:`ClusterRouter`
  / :class:`ClusterFrontEnd` (failover re-dispatch under the same
  trace), and the subprocess :class:`ClusterHarness` used by tests,
  CI and the scaling benchmark.

The CLI front end is ``backdroid serve`` (``--node-id`` joins a
cluster; ``--peers store`` runs the front end).
"""

from repro.service.cluster import (
    DEFAULT_LEASE_TTL,
    SPECMAP_LEASE,
    ClusterFrontEnd,
    ClusterHarness,
    ClusterNode,
    ClusterRouter,
    NodeDirectory,
    SpecmapLease,
    install_specmap_guard,
)
from repro.service.jobs import (
    CANCELLED,
    CANCELLING,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobQueue,
)
from repro.service.scheduler import LaneStats, StoreAwareScheduler
from repro.service.server import (
    AnalysisServer,
    ServiceAPI,
    ServiceClient,
    ThreadedAnalysisServer,
)
from repro.service.workers import ColdResult, ProcessLane

__all__ = [
    "CANCELLED",
    "CANCELLING",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "AnalysisServer",
    "ClusterFrontEnd",
    "ClusterHarness",
    "ClusterNode",
    "ClusterRouter",
    "ColdResult",
    "DEFAULT_LEASE_TTL",
    "Job",
    "JobQueue",
    "LaneStats",
    "NodeDirectory",
    "ProcessLane",
    "SPECMAP_LEASE",
    "ServiceAPI",
    "ServiceClient",
    "SpecmapLease",
    "StoreAwareScheduler",
    "ThreadedAnalysisServer",
    "install_specmap_guard",
]
