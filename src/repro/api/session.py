"""The reusable per-app analysis session.

``BackDroid(config).analyze(apk)`` rebuilt everything on every call:
search backend (and, for the indexed backend, its posting lists), the
search command cache, the store handle.  An :class:`AnalysisSession`
owns that expensive per-app state once and serves many
:class:`~repro.api.request.AnalysisRequest`\\ s against it:

* backends are constructed once per backend name and shared by every
  request, so a second request performs **zero index builds**;
* the session-wide :class:`~repro.search.caching.SearchCommandCache`
  carries search results across requests (search results depend only on
  the bytecode, never on targets or budgets, so sharing is exact);
* per-request state that affects verdicts — the sink-reachability cache
  (budget-dependent) and the loop detector — stays per run.

Reports carry **per-request deltas** of the shared backend/cache
counters, so a one-shot session reports exactly what the legacy driver
did, and a warm session's second request reports
``index_build_seconds == 0.0`` with ``index_prebuilt`` set.

``session.stream(request)`` yields progress events sink-by-sink;
``session.run(request)`` drives the stream and returns the
:class:`~repro.api.envelope.ReportEnvelope`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Iterator, Optional, Union

from repro.android.apk import Apk
from repro.api.envelope import ReportEnvelope
from repro.api.events import (
    AnalysisEvent,
    AnalysisFinished,
    SinkAnalyzed,
    SinkDiscovered,
)
from repro.api.registry import TargetRegistry
from repro.api.request import AnalysisRequest
from repro.core.backdroid import BackDroidConfig, find_sink_call_sites
from repro.core.forward import ForwardPropagation
from repro.core.report import AnalysisReport, SinkRecord
from repro.core.slicer import BackwardSlicer
from repro.search.backends import DEFAULT_BACKEND, SearchBackend, create_backend
from repro.search.caching import SearchCommandCache, SinkReachabilityCache
from repro.search.engine import CallerResolutionEngine
from repro.search.loops import LoopDetector
from repro.store import ArtifactStore
from repro.telemetry import tracing


def _index_materialized(stats: dict) -> bool:
    """Whether a backend's describe() shows an already-built index."""
    return stats.get("name") == "indexed" and bool(
        stats.get("vocab_size", 0)
        or stats.get("index_restored", False)
        or stats.get("index_build_seconds", 0.0)
    )


def _delta_backend_stats(pre: dict, post: dict, prebuilt: bool) -> dict:
    """Per-request backend statistics from before/after snapshots.

    Query counters and build time are flows (post - pre); vocabulary and
    posting sizes are state (post value).  ``index_prebuilt`` records
    that the index existed before this request began — the observable
    "no rebuild happened" signal the session-reuse contract promises.
    """
    delta = {"name": post["name"]}
    for counter in (
        "literal_queries",
        "pattern_queries",
        "token_queries",
        "fallbacks",
    ):
        delta[counter] = post.get(counter, 0) - pre.get(counter, 0)
    delta["index_build_seconds"] = max(
        0.0,
        post.get("index_build_seconds", 0.0) - pre.get("index_build_seconds", 0.0),
    )
    delta["index_restored"] = bool(
        post.get("index_restored", False) and not pre.get("index_restored", False)
    )
    delta["shards_patched"] = max(
        0, post.get("shards_patched", 0) - pre.get("shards_patched", 0)
    )
    delta["vocab_size"] = post.get("vocab_size", 0)
    delta["posting_entries"] = post.get("posting_entries", 0)
    # Laziness observables: groups decoded and bytes parsed are flows
    # (what *this request* materialized); mapped bytes are state (the
    # restore maps every shard once, on the first touching request).
    for counter in ("materialized_groups", "bytes_decoded"):
        delta[counter] = max(0, post.get(counter, 0) - pre.get(counter, 0))
    delta["bytes_mapped"] = post.get("bytes_mapped", 0)
    delta["index_prebuilt"] = prebuilt
    return delta


class AnalysisSession:
    """Many targeted analyses of one app over shared per-app state."""

    def __init__(
        self,
        apk: Apk,
        *,
        default_backend: str = DEFAULT_BACKEND,
        store: Union[str, ArtifactStore, None] = None,
        search_cache_max_entries: Optional[int] = None,
        registry: Optional[TargetRegistry] = None,
    ) -> None:
        """Open a session over one app.

        ``apk`` is the app under analysis; ``default_backend`` names the
        search backend requests fall back to; ``store`` attaches a
        warm-start artifact store (a directory path or an open
        :class:`~repro.store.ArtifactStore`); ``search_cache_max_entries``
        bounds the shared search-command cache; ``registry`` supplies
        client sink specs and detectors (defaults to the built-ins).
        """
        self.apk = apk
        self.default_backend = default_backend
        self.registry = registry if registry is not None else TargetRegistry()
        self.store = ArtifactStore(store) if isinstance(store, str) else store
        self.search_cache = SearchCommandCache(
            max_entries=search_cache_max_entries
        )
        self._backends: dict[str, SearchBackend] = {}
        self._lock = threading.RLock()
        #: Requests completed by this session.
        self.requests_served = 0
        #: Inverted-index builds this session paid for (folds, not
        #: restores) — the reuse contract keeps this at <= 1 per backend.
        self.index_builds = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        apk: Apk,
        config: Optional[BackDroidConfig] = None,
        registry: Optional[TargetRegistry] = None,
    ) -> "AnalysisSession":
        """A session carrying a legacy config's session-level knobs."""
        config = config if config is not None else BackDroidConfig()
        return cls(
            apk,
            default_backend=config.search_backend,
            store=config.artifact_store(),
            search_cache_max_entries=config.search_cache_max_entries,
            registry=registry,
        )

    # ------------------------------------------------------------------
    def backend_for(self, name: Optional[str] = None) -> SearchBackend:
        """The session's shared backend instance for *name* (built once)."""
        name = name if name is not None else self.default_backend
        with self._lock:
            backend = self._backends.get(name)
            if backend is None:
                backend = create_backend(
                    name, self.apk.disassembly, store=self.store
                )
                self._backends[name] = backend
            return backend

    # ------------------------------------------------------------------
    def run(
        self,
        request: Optional[AnalysisRequest] = None,
        on_event: Optional[Callable[[AnalysisEvent], None]] = None,
    ) -> ReportEnvelope:
        """Serve one request; returns its envelope.

        Thread-safe: concurrent runs on one session serialize on the
        session lock (the shared caches are not otherwise synchronized).
        ``on_event`` observes the same stream ``stream()`` would yield.
        """
        with self._lock:
            envelope: Optional[ReportEnvelope] = None
            for event in self.stream(request):
                if on_event is not None:
                    on_event(event)
                if isinstance(event, AnalysisFinished):
                    envelope = event.envelope
            assert envelope is not None  # stream always terminates with one
            return envelope

    # ------------------------------------------------------------------
    def stream(
        self, request: Optional[AnalysisRequest] = None
    ) -> Iterator[AnalysisEvent]:
        """The Fig. 2 pipeline as an event stream (one request).

        Yields every :class:`SinkDiscovered` after the initial search,
        one :class:`SinkAnalyzed` per sink as it completes, and a final
        :class:`AnalysisFinished` carrying the envelope.
        """
        request = request if request is not None else AnalysisRequest()
        started = time.perf_counter()
        with tracing.span("index.prepare") as prepare_span:
            backend = self.backend_for(request.backend)
            pre_stats = backend.describe()
            prepare_span.set_attrs(
                backend=backend.name,
                prebuilt=_index_materialized(pre_stats),
            )
        prebuilt = _index_materialized(pre_stats)
        # A disabled search cache still gets a private per-run cache (the
        # legacy engine behaved the same); it just goes unreported and
        # carries nothing across requests.
        cache = (
            self.search_cache
            if request.enable_search_cache
            else SearchCommandCache()
        )
        cache_pre = (
            cache.stats.lookups,
            cache.stats.hits,
            cache.stats.evictions,
        )
        loops = LoopDetector()
        engine = CallerResolutionEngine(
            self.apk,
            cache=cache,
            loops=loops,
            backend=backend,
            store=self.store,
        )
        slicer = BackwardSlicer(
            self.apk, engine=engine, max_frames=request.max_frames
        )
        sink_cache = SinkReachabilityCache()
        report = AnalysisReport(package=self.apk.package)

        with tracing.span("search.sinks") as search_span:
            sites = find_sink_call_sites(
                self.apk,
                engine,
                request.sink_specs(self.registry),
                check_class_hierarchy=request.check_class_hierarchy,
            )
            search_span.set_attr("sites", len(sites))
            index_obj = getattr(backend, "_index", None)
            if index_obj is not None and getattr(index_obj, "lazy", False):
                # The search is what faults shard groups in, so the
                # laziness counters belong on this span.
                search_span.set_attrs(
                    materialized_groups=index_obj.materialized_groups,
                    bytes_mapped=index_obj.bytes_mapped,
                    bytes_decoded=index_obj.bytes_decoded,
                )
        total = len(sites)
        for index, site in enumerate(sites):
            yield SinkDiscovered(site=site, index=index, total=total)

        # The caller-resolution stage stays open across the per-sink
        # yields, so it is opened without becoming the ambient span
        # (code running between yields must not nest under it).
        resolve_span = tracing.start_span("resolve.callers")
        for index, site in enumerate(sites):
            sink_started = time.perf_counter()
            record = SinkRecord(site=site, reachable=False)
            cached_verdict = (
                sink_cache.lookup(site.method)
                if request.enable_sink_cache
                else None
            )
            if cached_verdict is False:
                # Sec. IV-F: the hosting method is known-unreachable.
                record.cached = True
                record.duration_seconds = time.perf_counter() - sink_started
                report.records.append(record)
                yield SinkAnalyzed(record=record, index=index, total=total)
                continue
            ssg = slicer.slice_sink(site)
            record.reachable = ssg.reached_entry
            record.ssg_size = len(ssg)
            record.entry_points = tuple(
                sorted(str(e) for e in ssg.entry_points)
            )
            if request.enable_sink_cache:
                sink_cache.store(site.method, ssg.reached_entry)
            if ssg.reached_entry:
                facts = ForwardPropagation(self.apk, ssg).run()
                record.facts_repr = {k: str(v) for k, v in facts.items()}
                detector = self.registry.detector_for(site.spec.rule)
                if detector is not None:
                    record.finding = detector.evaluate(
                        facts, site.method, site.stmt_index, self.apk.full_pool
                    )
            if request.collect_ssg_dumps:
                report.notes.append(ssg.render())
            record.duration_seconds = time.perf_counter() - sink_started
            report.records.append(record)
            yield SinkAnalyzed(record=record, index=index, total=total)

        resolve_span.set_attrs(
            sinks=len(sites),
            reachable=sum(1 for r in report.records if r.reachable),
            cached=sum(1 for r in report.records if r.cached),
        )
        resolve_span.end()
        report.analysis_seconds = time.perf_counter() - started
        if request.enable_search_cache:
            lookups = cache.stats.lookups - cache_pre[0]
            hits = cache.stats.hits - cache_pre[1]
            report.search_cache_rate = hits / lookups if lookups else 0.0
            report.search_cache_lookups = lookups
            report.search_cache_evictions = (
                cache.stats.evictions - cache_pre[2]
            )
        report.sink_cache_rate = sink_cache.stats.rate
        report.loop_counts = dict(loops.counts)
        report.search_backend = backend.name
        post_stats = backend.describe()
        report.backend_stats = _delta_backend_stats(
            pre_stats, post_stats, prebuilt
        )
        if (
            not prebuilt
            and _index_materialized(post_stats)
            and not report.backend_stats["index_restored"]
        ):
            self.index_builds += 1
        self.requests_served += 1
        yield AnalysisFinished(
            envelope=ReportEnvelope(report=report, request=request)
        )

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Session-level reuse statistics (monitoring, tests)."""
        with self._lock:
            return {
                "package": self.apk.package,
                "default_backend": self.default_backend,
                "requests_served": self.requests_served,
                "index_builds": self.index_builds,
                "backends": {
                    name: backend.describe()
                    for name, backend in self._backends.items()
                },
                "search_cache": {
                    "entries": len(self.search_cache),
                    "lookups": self.search_cache.stats.lookups,
                    "hits": self.search_cache.stats.hits,
                    "rate": self.search_cache.stats.rate,
                },
            }


class SessionCache:
    """A bounded LRU of live sessions, keyed by app identity.

    The scheduler (and thread/serial batch runs) keep one warm session
    per app recipe, so differently-targeted jobs against the same app
    share one generated APK, one token stream and one built index.
    Sessions hold an app's whole disassembly in memory — keep the bound
    small.
    """

    def __init__(self, max_sessions: int = 4) -> None:
        """Create a cache holding at most ``max_sessions`` live sessions."""
        if max_sessions < 1:
            raise ValueError("max_sessions must be a positive integer")
        self.max_sessions = max_sessions
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, AnalysisSession] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[AnalysisSession]:
        """The cached session for ``key`` (refreshing its LRU slot), or
        None on a miss."""
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                self.misses += 1
                return None
            self._sessions.move_to_end(key)
            self.hits += 1
            return session

    def put(self, key: str, session: AnalysisSession) -> None:
        """Insert (or refresh) ``session`` under ``key``, evicting the
        least recently used entry past the bound."""
        with self._lock:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def describe(self) -> dict:
        """Occupancy and hit/miss/eviction counters as a JSON-able dict."""
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
