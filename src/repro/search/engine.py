"""The caller-resolution orchestrator.

This is the single entry point the backward slicer calls whenever "a
caller method needs to be identified" (Fig. 2, step 2).  It dispatches to
the right search mechanism:

========================  =================================================
callee shape              mechanism
========================  =================================================
lifecycle handler         entry check + lifecycle/ICC searches (Sec. IV-D/E)
``<clinit>``              recursive reachability search (Sec. IV-C)
static/private/<init>     basic signature search (Sec. IV-A)
interface/super override  advanced constructor search (Sec. IV-B)
anything else             basic search, advanced as fallback
========================  =================================================
"""

from __future__ import annotations

from typing import Optional

from repro.android.apk import Apk
from repro.dex.types import MethodSignature
from repro.search.advanced import advanced_search, needs_advanced_search
from repro.search.backends import BackendSpec
from repro.search.basic import basic_search
from repro.search.caching import SearchCommandCache
from repro.search.clinit import clinit_reachability_search
from repro.search.common import ResolutionResult, ResolvedCaller
from repro.search.icc import icc_search
from repro.search.index import BytecodeSearcher
from repro.search.lifecycle import (
    is_entry_handler,
    lifecycle_base_of,
    lifecycle_predecessor_handlers,
)
from repro.search.loops import LoopDetector


class CallerResolutionEngine:
    """Resolves callers of callee methods for one app, with caching."""

    def __init__(
        self,
        apk: Apk,
        cache: Optional[SearchCommandCache] = None,
        loops: Optional[LoopDetector] = None,
        backend: BackendSpec = None,
        store=None,
    ) -> None:
        self.apk = apk
        self.pool = apk.full_pool
        self.manifest = apk.manifest
        self.cache = cache if cache is not None else SearchCommandCache()
        self.loops = loops if loops is not None else LoopDetector()
        self.searcher = BytecodeSearcher(
            apk.disassembly, cache=self.cache, backend=backend, store=store
        )

    # ------------------------------------------------------------------
    def resolve(self, callee: MethodSignature) -> ResolutionResult:
        """Locate the callers of *callee* with on-the-fly bytecode search."""
        result = ResolutionResult(callee=callee)

        # --- static initializers: reachability only (Sec. IV-C) --------
        if callee.is_static_initializer:
            verdict = clinit_reachability_search(
                self.searcher, self.pool, self.manifest, callee.class_name
            )
            result.clinit_reachable = verdict.reachable
            result.clinit_chain = verdict.chain
            result.notes.append("clinit-recursive-search")
            return result

        # --- lifecycle handlers: entry check first (Sec. IV-E) ---------
        if lifecycle_base_of(self.pool, callee) is not None:
            result.is_entry = is_entry_handler(self.pool, self.manifest, callee)
            result.notes.append(
                "lifecycle-entry" if result.is_entry else "lifecycle-unregistered"
            )
            for predecessor in lifecycle_predecessor_handlers(self.pool, callee):
                result.callers.append(
                    ResolvedCaller(method=predecessor, stmt_index=0, kind="lifecycle")
                )
            if result.is_entry:
                for site in icc_search(
                    self.searcher, self.pool, self.manifest, callee.class_name
                ):
                    result.callers.append(
                        ResolvedCaller(
                            method=site.caller,
                            stmt_index=site.stmt_index,
                            kind="icc",
                        )
                    )
            return result

        # --- ordinary methods: basic and/or advanced search ------------
        method = self.pool.resolve_method(callee)
        run_advanced = needs_advanced_search(self.pool, callee)
        run_basic = method is None or method.is_signature_method() or not run_advanced
        if run_basic:
            for site in basic_search(self.searcher, self.pool, callee):
                result.callers.append(
                    ResolvedCaller(
                        method=site.caller, stmt_index=site.stmt_index, kind="direct"
                    )
                )
            result.notes.append("basic-search")
        if run_advanced or (not result.callers and self._has_constructors(callee)):
            result.callers.extend(
                advanced_search(self.searcher, self.pool, callee, loops=self.loops)
            )
            result.notes.append("advanced-search")
        return result

    # ------------------------------------------------------------------
    def _has_constructors(self, callee: MethodSignature) -> bool:
        cls = self.pool.get(callee.class_name)
        return cls is not None and not cls.is_framework and bool(cls.constructors())
