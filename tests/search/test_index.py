"""Unit tests for the raw bytecode-text search engine."""

from repro.dex.types import FieldSignature, MethodSignature
from repro.search.caching import SearchCommandCache
from repro.search.index import BytecodeSearcher


def _searcher(apk, cache=None):
    return BytecodeSearcher(apk.disassembly, cache=cache)


class TestLiteralSearch:
    def test_find_invocations_of_private_method(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        hits = searcher.find_invocations(callee)
        assert len(hits) == 1
        assert hits[0].method == MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )

    def test_method_header_does_not_count_as_invocation(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.service.NetcastTVService", "connect", (), "void"
        )
        hits = searcher.find_invocations(callee)
        assert all("invoke-" in h.line for h in hits)
        # connect() is invoked exactly once, from MainActivity.onCreate.
        assert len(hits) == 1
        assert hits[0].method.class_name == "com.lge.app1.MainActivity"

    def test_no_hits_for_unknown_signature(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        ghost = MethodSignature("com.nowhere.Ghost", "boo", (), "void")
        assert searcher.find_invocations(ghost) == []

    def test_hit_carries_stmt_index(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        callee = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        hit = searcher.find_invocations(callee)[0]
        assert hit.stmt_index is not None and hit.stmt_index >= 0


class TestFieldSearch:
    def test_find_field_accesses(self, palcomp3):
        searcher = _searcher(palcomp3)
        port = FieldSignature("com.studiosol.palcomp3.MP3LocalServer", "PORT", "int")
        accesses = searcher.find_field_accesses(port)
        kinds = {("sput" in h.line, "sget" in h.line) for h in accesses}
        assert (True, False) in kinds  # the <clinit> write
        assert (False, True) in kinds  # the <init> read

    def test_writes_only_filter(self, palcomp3):
        searcher = _searcher(palcomp3)
        port = FieldSignature("com.studiosol.palcomp3.MP3LocalServer", "PORT", "int")
        writes = searcher.find_field_accesses(port, writes_only=True)
        assert len(writes) == 1
        assert writes[0].method.name == "<clinit>"


class TestIccPrimitives:
    def test_find_const_class(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        hits = searcher.find_const_class("com.lge.app1.fota.HttpServerService")
        assert len(hits) == 1
        assert hits[0].method.class_name == "com.lge.app1.MainActivity"

    def test_find_invocations_by_name(self, lg_tv_plus):
        searcher = _searcher(lg_tv_plus)
        hits = searcher.find_invocations_by_name("startService")
        assert len(hits) == 1
        assert hits[0].method.name == "onCreate"


class TestClassMentions:
    def test_classes_mentioning(self, heyzap):
        searcher = _searcher(heyzap)
        users = searcher.classes_mentioning("com.heyzap.internal.APIClient")
        assert users == {"com.heyzap.house.model.AdModel"}

    def test_mention_chain_to_entry(self, heyzap):
        searcher = _searcher(heyzap)
        users = searcher.classes_mentioning("com.heyzap.house.model.AdModel")
        assert "com.heyzap.sdk.ads.HeyzapInterstitialActivity" in users


class TestCommandCaching:
    def test_repeated_commands_hit_cache(self, lg_tv_plus):
        cache = SearchCommandCache()
        searcher = _searcher(lg_tv_plus, cache=cache)
        callee = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        first = searcher.find_invocations(callee)
        assert cache.stats.hits == 0
        second = searcher.find_invocations(callee)
        assert second == first
        assert cache.stats.hits == 1
        assert 0.0 < cache.stats.rate < 1.0

    def test_cache_rates_by_kind(self, lg_tv_plus):
        cache = SearchCommandCache()
        searcher = _searcher(lg_tv_plus, cache=cache)
        searcher.find_const_class("com.lge.app1.fota.HttpServerService")
        searcher.find_const_class("com.lge.app1.fota.HttpServerService")
        assert cache.stats_by_kind["invoked-class"].hits == 1
