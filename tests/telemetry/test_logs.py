"""Structured logging: the JSON formatter and its trace stamping."""

import json
import logging

import pytest

from repro.telemetry import Tracer
from repro.telemetry.logs import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
)


def _record(message="hello", **extra):
    record = logging.LogRecord(
        name="backdroid.scheduler",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=(),
        exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestJsonFormatter:
    def test_core_schema(self):
        data = json.loads(JsonLogFormatter().format(_record()))
        assert data["level"] == "info"
        assert data["logger"] == "backdroid.scheduler"
        assert data["message"] == "hello"
        assert isinstance(data["ts"], float)
        assert "trace_id" not in data  # no ambient span

    def test_trace_ids_stamped_from_the_active_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("job") as span:
            data = json.loads(JsonLogFormatter().format(_record()))
        assert data["trace_id"] == span.trace_id
        assert data["span_id"] == span.span_id

    def test_extra_fields_ride_along(self):
        data = json.loads(
            JsonLogFormatter().format(_record(job_id="job-7", lane="main"))
        )
        assert data["job_id"] == "job-7"
        assert data["lane"] == "main"

    def test_exception_rendered_into_exc(self):
        try:
            raise ValueError("bad")
        except ValueError:
            record = _record()
            record.exc_info = __import__("sys").exc_info()
        data = json.loads(JsonLogFormatter().format(record))
        assert "ValueError: bad" in data["exc"]

    def test_output_is_one_line(self):
        text = JsonLogFormatter().format(_record("multi\nline"))
        assert "\n" not in text


class TestConfigureLogging:
    @pytest.fixture(autouse=True)
    def _reset(self):
        yield
        logger = logging.getLogger("backdroid")
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.propagate = True

    def test_idempotent_reconfiguration(self):
        logger = configure_logging("json")
        configure_logging("json")
        assert len(logger.handlers) == 1
        assert isinstance(logger.handlers[0].formatter, JsonLogFormatter)

    def test_text_format_uses_a_plain_formatter(self):
        logger = configure_logging("text")
        assert not isinstance(logger.handlers[0].formatter, JsonLogFormatter)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("yaml")

    def test_area_loggers_inherit_the_handler(self):
        configure_logging("json")
        assert get_logger("scheduler").name == "backdroid.scheduler"
        assert get_logger().name == "backdroid"
