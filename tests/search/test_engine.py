"""Unit tests for the caller-resolution orchestrator."""

from repro.android.apk import Apk
from repro.android.manifest import Manifest
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.search.caching import SearchCommandCache, SinkReachabilityCache
from repro.search.engine import CallerResolutionEngine
from repro.search.loops import LoopDetector, LoopKind


class TestDispatch:
    def test_private_method_uses_basic_search(self, lg_tv_plus):
        engine = CallerResolutionEngine(lg_tv_plus)
        result = engine.resolve(
            MethodSignature(
                "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
            )
        )
        assert "basic-search" in result.notes
        assert len(result.callers) == 1
        assert result.callers[0].kind == "direct"

    def test_interface_method_uses_advanced_search(self, lg_tv_plus):
        engine = CallerResolutionEngine(lg_tv_plus)
        result = engine.resolve(
            MethodSignature(
                "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
            )
        )
        assert "advanced-search" in result.notes
        assert result.callers[0].kind == "constructor"

    def test_clinit_uses_recursive_search(self, heyzap):
        engine = CallerResolutionEngine(heyzap)
        result = engine.resolve(
            MethodSignature("com.heyzap.internal.APIClient", "<clinit>", (), "void")
        )
        assert result.clinit_reachable is True
        assert not result.is_dead_end

    def test_lifecycle_handler_of_registered_component_is_entry(self, lg_tv_plus):
        engine = CallerResolutionEngine(lg_tv_plus)
        result = engine.resolve(
            MethodSignature(
                "com.lge.app1.MainActivity", "onCreate",
                ("android.os.Bundle",), "void",
            )
        )
        assert result.is_entry
        assert not result.is_dead_end

    def test_service_entry_also_resolves_icc_caller(self, lg_tv_plus):
        engine = CallerResolutionEngine(lg_tv_plus)
        result = engine.resolve(
            MethodSignature("com.lge.app1.fota.HttpServerService", "onCreate", (), "void")
        )
        assert result.is_entry
        icc_callers = [c for c in result.callers if c.kind == "icc"]
        assert len(icc_callers) == 1
        assert icc_callers[0].method.class_name == "com.lge.app1.MainActivity"

    def test_dead_method_is_dead_end(self):
        app = AppBuilder()
        cls = app.new_class("com.a.Dead")
        m = cls.method("never", static=True)
        m.return_void()
        apk = Apk(package="com.a", classes=app.build(), manifest=Manifest("com.a"))
        engine = CallerResolutionEngine(apk)
        result = engine.resolve(MethodSignature("com.a.Dead", "never", (), "void"))
        assert result.is_dead_end


class TestLoopAndCacheStats:
    def test_shared_cache_across_resolutions(self, lg_tv_plus):
        cache = SearchCommandCache()
        engine = CallerResolutionEngine(lg_tv_plus, cache=cache)
        sig = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        engine.resolve(sig)
        lookups_first = cache.stats.lookups
        engine.resolve(sig)
        assert cache.stats.hits > 0
        assert cache.stats.lookups > lookups_first

    def test_loop_detector_shared(self, lg_tv_plus):
        loops = LoopDetector()
        engine = CallerResolutionEngine(lg_tv_plus, loops=loops)
        engine.resolve(
            MethodSignature(
                "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
            )
        )
        assert engine.loops is loops


class TestSinkReachabilityCache:
    def test_lookup_and_store(self):
        cache = SinkReachabilityCache()
        sig = MethodSignature("com.a.B", "m", (), "void")
        assert cache.lookup(sig) is None
        cache.store(sig, False)
        assert cache.lookup(sig) is False
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1
        assert 0.0 < cache.stats.rate <= 0.5


class TestLoopDetectorUnit:
    def test_counters_and_most_common(self):
        loops = LoopDetector()
        a = MethodSignature("com.a.A", "a", (), "void")
        b = MethodSignature("com.a.B", "b", (), "void")
        assert not loops.check_backward((a,), b)
        assert loops.check_backward((a, b), a)
        assert loops.check_inner_backward((a,), a)
        assert loops.check_forward((a,), a)
        assert not loops.detected_any or loops.total == 3
        assert loops.counts[LoopKind.CROSS_BACKWARD] == 1
        assert loops.most_common() in set(LoopKind)
