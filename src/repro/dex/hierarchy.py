"""Classes, methods, fields and class-hierarchy queries.

This is the in-memory model of an app's DEX classes, playing the role of
Soot's ``Scene``: it answers the hierarchy questions the searches need —
sub/super classes, interface implementers, whether a method is overridden
in a child class (Sec. IV-A), and which interface declares a given
sub-signature (Sec. IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Iterator, Optional

from repro.dex.instructions import Stmt, invoked_signatures, referenced_classes
from repro.dex.types import FieldSignature, MethodSignature

JAVA_LANG_OBJECT = "java.lang.Object"


class AccessFlags(enum.Flag):
    """The subset of DEX access flags the analyses care about."""

    PUBLIC = enum.auto()
    PRIVATE = enum.auto()
    PROTECTED = enum.auto()
    STATIC = enum.auto()
    FINAL = enum.auto()
    INTERFACE = enum.auto()
    ABSTRACT = enum.auto()
    CONSTRUCTOR = enum.auto()
    SYNTHETIC = enum.auto()

    def dex_render(self) -> str:
        """Render like dexdump: ``0x0001 (PUBLIC STATIC)``."""
        return _dex_render_cached(self.value)


@lru_cache(maxsize=None)
def _dex_render_cached(value: int) -> str:
    flags = AccessFlags(value)
    names = [flag.name for flag in AccessFlags if flag in flags and flag.name]
    rendered = sum(1 << i for i, flag in enumerate(AccessFlags) if flag in flags)
    return f"0x{rendered:04x} ({' '.join(names)})"


@dataclass
class DexField:
    """A field declaration inside a class."""

    name: str
    field_type: str
    flags: AccessFlags = AccessFlags.PUBLIC
    declaring_class: str = ""

    @property
    def is_static(self) -> bool:
        return bool(self.flags & AccessFlags.STATIC)

    def signature(self) -> FieldSignature:
        return FieldSignature(self.declaring_class, self.name, self.field_type)


@dataclass
class DexMethod:
    """A method declaration plus its IR body."""

    name: str
    param_types: tuple[str, ...] = ()
    return_type: str = "void"
    flags: AccessFlags = AccessFlags.PUBLIC
    declaring_class: str = ""
    body: list[Stmt] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.param_types = tuple(self.param_types)

    # ------------------------------------------------------------------
    @property
    def is_static(self) -> bool:
        return bool(self.flags & AccessFlags.STATIC)

    @property
    def is_private(self) -> bool:
        return bool(self.flags & AccessFlags.PRIVATE)

    @property
    def is_constructor(self) -> bool:
        return self.name == "<init>"

    @property
    def is_static_initializer(self) -> bool:
        return self.name == "<clinit>"

    @property
    def is_abstract(self) -> bool:
        return bool(self.flags & AccessFlags.ABSTRACT)

    @property
    def has_body(self) -> bool:
        return bool(self.body)

    def is_signature_method(self) -> bool:
        """True when the basic signature search (Sec. IV-A) applies.

        "Typical signature methods include static methods, private methods,
        and constructors" — with the exception of ``<clinit>``, which needs
        the special recursive search of Sec. IV-C.
        """
        if self.is_static_initializer:
            return False
        return self.is_static or self.is_private or self.is_constructor

    def signature(self) -> MethodSignature:
        return MethodSignature(
            self.declaring_class, self.name, self.param_types, self.return_type
        )

    def sub_signature(self) -> str:
        return self.signature().sub_signature()


@dataclass
class DexClass:
    """A class definition: hierarchy links, fields and methods."""

    name: str
    super_name: Optional[str] = JAVA_LANG_OBJECT
    interfaces: tuple[str, ...] = ()
    flags: AccessFlags = AccessFlags.PUBLIC
    fields: list[DexField] = field(default_factory=list)
    methods: list[DexMethod] = field(default_factory=list)
    #: True for framework/SDK classes modelled without bodies.
    is_framework: bool = False

    def __post_init__(self) -> None:
        self.interfaces = tuple(self.interfaces)
        for dex_field in self.fields:
            dex_field.declaring_class = self.name
        for method in self.methods:
            method.declaring_class = self.name

    @property
    def is_interface(self) -> bool:
        return bool(self.flags & AccessFlags.INTERFACE)

    @property
    def package(self) -> str:
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    # ------------------------------------------------------------------
    def add_field(self, dex_field: DexField) -> DexField:
        dex_field.declaring_class = self.name
        self.fields.append(dex_field)
        return dex_field

    def add_method(self, method: DexMethod) -> DexMethod:
        method.declaring_class = self.name
        self.methods.append(method)
        return method

    def find_method(
        self, name: str, param_types: Optional[Iterable[str]] = None
    ) -> Optional[DexMethod]:
        """Find a declared method by name (and parameter types, if given)."""
        wanted = None if param_types is None else tuple(param_types)
        for method in self.methods:
            if method.name != name:
                continue
            if wanted is None or method.param_types == wanted:
                return method
        return None

    def find_field(self, name: str) -> Optional[DexField]:
        for dex_field in self.fields:
            if dex_field.name == name:
                return dex_field
        return None

    def constructors(self) -> list[DexMethod]:
        return [m for m in self.methods if m.is_constructor]

    def static_initializer(self) -> Optional[DexMethod]:
        return self.find_method("<clinit>")

    def declares_sub_signature(self, sub_signature: str) -> bool:
        return any(m.sub_signature() == sub_signature for m in self.methods)


class ClassPool:
    """All classes of an app, with hierarchy queries.

    The pool distinguishes *application* classes (with bodies, disassembled
    and searchable) from *framework* classes (the Android/Java SDK model of
    :mod:`repro.android.framework`, bodiless and never searched — exactly as
    real dexdump output only covers the app's own DEX).
    """

    def __init__(self, classes: Iterable[DexClass] = ()) -> None:
        self._classes: dict[str, DexClass] = {}
        for cls in classes:
            self.add(cls)

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, cls: DexClass) -> DexClass:
        if cls.name in self._classes:
            raise ValueError(f"duplicate class {cls.name}")
        self._classes[cls.name] = cls
        return cls

    def merge(self, other: "ClassPool") -> None:
        """Merge another pool in (multidex merge, Sec. III step 1)."""
        for cls in other:
            self.add(cls)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[DexClass]:
        return iter(self._classes.values())

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def get(self, name: str) -> Optional[DexClass]:
        return self._classes.get(name)

    def application_classes(self) -> Iterator[DexClass]:
        return (c for c in self._classes.values() if not c.is_framework)

    def class_names(self) -> list[str]:
        return list(self._classes)

    def method_count(self) -> int:
        return sum(len(c.methods) for c in self.application_classes())

    def resolve_method(self, sig: MethodSignature) -> Optional[DexMethod]:
        """Resolve a signature to a declared method, walking up supers.

        Mirrors JVM resolution: if ``sig.class_name`` does not declare the
        method, its superclass chain is consulted.
        """
        for class_name in self.superclass_chain(sig.class_name, include_self=True):
            cls = self.get(class_name)
            if cls is None:
                continue
            method = cls.find_method(sig.name, sig.param_types)
            if method is not None:
                return method
        return None

    def resolve_field(self, sig: FieldSignature) -> Optional[DexField]:
        for class_name in self.superclass_chain(sig.class_name, include_self=True):
            cls = self.get(class_name)
            if cls is None:
                continue
            dex_field = cls.find_field(sig.name)
            if dex_field is not None:
                return dex_field
        return None

    # ------------------------------------------------------------------
    # Hierarchy queries
    # ------------------------------------------------------------------
    def superclass_chain(self, class_name: str, include_self: bool = False) -> list[str]:
        """The superclass chain, nearest first, ending at java.lang.Object."""
        chain: list[str] = [class_name] if include_self else []
        seen = {class_name}
        current = self.get(class_name)
        while current is not None and current.super_name:
            super_name = current.super_name
            if super_name in seen:
                break  # defensive: cyclic hierarchy in malformed input
            chain.append(super_name)
            seen.add(super_name)
            current = self.get(super_name)
        return chain

    def direct_subclasses(self, class_name: str) -> list[DexClass]:
        return [c for c in self._classes.values() if c.super_name == class_name]

    def all_subclasses(self, class_name: str) -> list[DexClass]:
        """Every transitive subclass (excluding the class itself)."""
        found: list[DexClass] = []
        worklist = [class_name]
        seen: set[str] = set()
        while worklist:
            current = worklist.pop()
            for sub in self.direct_subclasses(current):
                if sub.name in seen:
                    continue
                seen.add(sub.name)
                found.append(sub)
                worklist.append(sub.name)
        return found

    def is_subtype_of(self, candidate: str, ancestor: str) -> bool:
        """True when *candidate* is *ancestor* or extends/implements it."""
        if candidate == ancestor:
            return True
        if ancestor in self.superclass_chain(candidate):
            return True
        return ancestor in self.all_interfaces_of(candidate)

    def all_interfaces_of(self, class_name: str) -> set[str]:
        """All interfaces implemented by a class, directly or transitively."""
        result: set[str] = set()
        for name in self.superclass_chain(class_name, include_self=True):
            cls = self.get(name)
            if cls is None:
                continue
            worklist = list(cls.interfaces)
            while worklist:
                iface = worklist.pop()
                if iface in result:
                    continue
                result.add(iface)
                iface_cls = self.get(iface)
                if iface_cls is not None:
                    worklist.extend(iface_cls.interfaces)
                    if iface_cls.super_name and iface_cls.super_name != JAVA_LANG_OBJECT:
                        worklist.append(iface_cls.super_name)
        return result

    def implementers_of(self, interface_name: str) -> list[DexClass]:
        """Application classes that implement *interface_name*."""
        return [
            c
            for c in self._classes.values()
            if not c.is_interface and interface_name in self.all_interfaces_of(c.name)
        ]

    def interface_declaring(self, class_name: str, sub_signature: str) -> Optional[str]:
        """Which implemented interface declares *sub_signature*, if any.

        The advanced search (Sec. IV-B) "leverages interface's class type as
        an indicator": when the callee class implements ``Runnable`` and the
        callee method is ``void run()``, the indicator type is
        ``java.lang.Runnable``.
        """
        for iface in sorted(self.all_interfaces_of(class_name)):
            iface_cls = self.get(iface)
            if iface_cls is not None and iface_cls.declares_sub_signature(sub_signature):
                return iface
        return None

    def super_declaring(self, class_name: str, sub_signature: str) -> Optional[str]:
        """The nearest superclass declaring *sub_signature*, if any."""
        for super_name in self.superclass_chain(class_name):
            super_cls = self.get(super_name)
            if super_cls is not None and super_cls.declares_sub_signature(sub_signature):
                return super_name
        return None

    def overrides_in_children(self, sig: MethodSignature) -> dict[str, bool]:
        """For each subclass of the callee class: does it override *sig*?

        Drives the child-class signature construction of Sec. IV-A: a
        non-overriding child contributes an extra search signature, while an
        overriding child must *not* be searched under the parent's analysis.
        """
        sub_signature = sig.sub_signature()
        return {
            sub.name: sub.declares_sub_signature(sub_signature)
            for sub in self.all_subclasses(sig.class_name)
        }

    # ------------------------------------------------------------------
    # Whole-pool relations (used by baselines and the clinit search)
    # ------------------------------------------------------------------
    def classes_using(self, class_name: str) -> list[str]:
        """Application classes whose bytecode mentions *class_name*.

        This is one recursive step of the Sec. IV-C static-initializer
        search (implemented there via bytecode text search; this is the
        model-level equivalent used by tests to cross-validate).
        """
        users: set[str] = set()
        for cls in self.application_classes():
            if cls.name == class_name:
                continue
            for method in cls.methods:
                if class_name in referenced_classes(method.body):
                    users.add(cls.name)
                    break
        return sorted(users)

    def all_invoked_signatures(self) -> Iterator[tuple[DexMethod, MethodSignature]]:
        """Yield (containing method, invoked signature) for the whole app."""
        for cls in self.application_classes():
            for method in cls.methods:
                for sig in invoked_signatures(method.body):
                    yield method, sig
