"""Shared fixtures: the paper's three running-example apps."""

import pytest

from repro.workload.paperapps import build_heyzap, build_lg_tv_plus, build_palcomp3


@pytest.fixture(scope="module")
def lg_tv_plus():
    return build_lg_tv_plus()


@pytest.fixture(scope="module")
def heyzap():
    return build_heyzap()


@pytest.fixture(scope="module")
def palcomp3():
    return build_palcomp3()
