"""Pluggable search backends over the disassembly plaintext.

* :mod:`repro.search.backends.base`    — the :class:`SearchBackend`
  protocol, per-backend stats and the shared joined-text helper;
* :mod:`repro.search.backends.linear`  — the original O(text) scan;
* :mod:`repro.search.backends.indexed` — the prebuilt inverted index
  (posting lists keyed by dex tokens).

``create_backend`` resolves a backend by registry name, an instance, or
a backend class, so callers can thread a plain string knob
(``BackDroidConfig.search_backend``, ``--backend``) all the way down.
"""

from __future__ import annotations

from typing import Type, Union

from repro.dex.disassembler import Disassembly
from repro.search.backends.base import BackendStats, JoinedText, SearchBackend
from repro.search.backends.indexed import InvertedIndexBackend, TokenIndex
from repro.search.backends.linear import LinearScanBackend

#: Registry of selectable backends, keyed by their CLI/config name.
BACKENDS: dict[str, Type[SearchBackend]] = {
    LinearScanBackend.name: LinearScanBackend,
    InvertedIndexBackend.name: InvertedIndexBackend,
}

DEFAULT_BACKEND = LinearScanBackend.name

BackendSpec = Union[str, SearchBackend, Type[SearchBackend], None]


def create_backend(
    spec: BackendSpec, disassembly: Disassembly, store=None
) -> SearchBackend:
    """Resolve a backend spec (name, instance, class or None) for an app.

    ``store`` is an optional warm-start artifact store handed to freshly
    constructed backends (pre-built instances keep their own).
    """
    if spec is None:
        spec = DEFAULT_BACKEND
    if isinstance(spec, SearchBackend):
        if spec.disassembly is not disassembly:
            raise ValueError(
                "backend instance is bound to a different disassembly"
            )
        return spec
    if isinstance(spec, type) and issubclass(spec, SearchBackend):
        return spec(disassembly, store=store)
    if isinstance(spec, str):
        try:
            return BACKENDS[spec](disassembly, store=store)
        except KeyError:
            raise ValueError(
                f"unknown search backend {spec!r}: "
                f"choose from {sorted(BACKENDS)}"
            ) from None
    raise TypeError(f"bad backend spec: {spec!r}")


__all__ = [
    "BACKENDS",
    "BackendSpec",
    "BackendStats",
    "DEFAULT_BACKEND",
    "InvertedIndexBackend",
    "JoinedText",
    "LinearScanBackend",
    "SearchBackend",
    "TokenIndex",
    "create_backend",
]
