"""Property-based tests (hypothesis) for the dex substrate.

Two core invariants of the reproduction:

1. signature format translation is a bijection between the Soot and
   dexdump universes (otherwise searches would silently miss callers);
2. the disassembler and the IR agree — every invocation present in the IR
   appears in the plaintext with its exact dexdump signature (otherwise
   the on-the-fly search would be unsound).
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dex.builder import AppBuilder
from repro.dex.disassembler import disassemble
from repro.dex.types import (
    FieldSignature,
    MethodSignature,
    dex_to_java_type,
    java_to_dex_type,
)

_LETTERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
_IDENT = st.builds(
    lambda head, tail: head + tail,
    st.sampled_from(_LETTERS),
    st.text(alphabet=_LETTERS + "0123456789_", max_size=8),
)
_PRIMS = st.sampled_from(
    ["void", "boolean", "byte", "short", "char", "int", "long", "float", "double"]
)


@st.composite
def class_names(draw):
    parts = draw(st.lists(_IDENT, min_size=1, max_size=4))
    name = ".".join(parts)
    if draw(st.booleans()):
        name += "$" + str(draw(st.integers(min_value=1, max_value=9)))
    return name


@st.composite
def java_types(draw, allow_void=False):
    base = draw(st.one_of(_PRIMS if allow_void else _PRIMS.filter(lambda t: t != "void"),
                          class_names()))
    depth = draw(st.integers(min_value=0, max_value=2))
    return base + "[]" * depth


@st.composite
def method_signatures(draw):
    return MethodSignature(
        class_name=draw(class_names()),
        name=draw(_IDENT),
        param_types=tuple(draw(st.lists(java_types(), max_size=4))),
        return_type=draw(st.one_of(st.just("void"), java_types())),
    )


@st.composite
def field_signatures(draw):
    return FieldSignature(
        class_name=draw(class_names()),
        name=draw(_IDENT),
        field_type=draw(java_types()),
    )


class TestTypeRoundTrips:
    @given(java_types(allow_void=True))
    def test_type_translation_roundtrip(self, java_type):
        assert dex_to_java_type(java_to_dex_type(java_type)) == java_type

    @given(method_signatures())
    def test_method_soot_roundtrip(self, sig):
        assert MethodSignature.parse_soot(sig.to_soot()) == sig

    @given(method_signatures())
    def test_method_dex_roundtrip(self, sig):
        assert MethodSignature.parse_dex(sig.to_dex()) == sig

    @given(field_signatures())
    def test_field_roundtrips(self, sig):
        assert FieldSignature.parse_soot(sig.to_soot()) == sig
        assert FieldSignature.parse_dex(sig.to_dex()) == sig

    @given(method_signatures(), class_names())
    def test_with_class_preserves_sub_signature(self, sig, other):
        assert sig.with_class(other).sub_signature() == sig.sub_signature()


class TestDisassemblerSearchConsistency:
    @given(
        st.lists(
            st.tuples(class_names(), _IDENT, st.lists(java_types(), max_size=2)),
            min_size=1,
            max_size=6,
            unique_by=lambda t: (t[0], t[1]),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_ir_invoke_is_searchable_in_plaintext(self, callees):
        """Soundness anchor: IR invokes always surface in the dump text."""
        app = AppBuilder()
        caller = app.new_class("com.gen.Caller")
        m = caller.method("go")
        expected = []
        for cls_name, method_name, params in callees:
            if cls_name == "com.gen.Caller":
                continue
            sig = MethodSignature(cls_name, method_name, tuple(params), "void")
            args = [m.const_null(p) for p in params]
            m.invoke_static(sig, args=args)
            expected.append(sig)
        m.return_void()
        text = disassemble(app.build()).text
        for sig in expected:
            pattern = re.escape(sig.to_dex())
            assert re.search(pattern, text), sig.to_dex()

    @given(st.lists(field_signatures(), min_size=1, max_size=5,
                    unique_by=lambda f: (f.class_name, f.name)))
    @settings(max_examples=40, deadline=None)
    def test_every_static_field_access_is_searchable(self, fields):
        app = AppBuilder()
        cls = app.new_class("com.gen.FieldUser")
        m = cls.method("go")
        kept = []
        for f in fields:
            if f.class_name == "com.gen.FieldUser":
                continue
            m.get_static(f.class_name, f.name, f.field_type)
            kept.append(f)
        m.return_void()
        text = disassemble(app.build()).text
        for f in kept:
            assert re.search(re.escape(f.to_dex()), text), f.to_dex()
