"""Unit tests for the advanced search (Sec. IV-B)."""

from repro.android.apk import Apk
from repro.dex.builder import AppBuilder
from repro.dex.types import MethodSignature
from repro.search.advanced import advanced_search, needs_advanced_search
from repro.search.index import BytecodeSearcher
from repro.search.loops import LoopDetector, LoopKind


def _parts(apk):
    return BytecodeSearcher(apk.disassembly), apk.full_pool


class TestNeedsAdvancedSearch:
    def test_interface_method_needs_advanced(self, lg_tv_plus):
        _, pool = _parts(lg_tv_plus)
        run = MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )
        assert needs_advanced_search(pool, run)

    def test_private_method_does_not(self, lg_tv_plus):
        _, pool = _parts(lg_tv_plus)
        start = MethodSignature(
            "com.connectsdk.service.netcast.NetcastHttpServer", "start", (), "void"
        )
        assert not needs_advanced_search(pool, start)

    def test_plain_public_method_does_not(self, lg_tv_plus):
        _, pool = _parts(lg_tv_plus)
        connect = MethodSignature(
            "com.connectsdk.service.NetcastTVService", "connect", (), "void"
        )
        assert not needs_advanced_search(pool, connect)


class TestFig4RunnableChain:
    """The paper's flagship advanced-search example, end to end."""

    def test_uncovers_caller_chain_of_run(self, lg_tv_plus):
        searcher, pool = _parts(lg_tv_plus)
        run = MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )
        resolved = advanced_search(searcher, pool, run)
        assert len(resolved) == 1
        caller = resolved[0]
        # Step 1: constructor located in NetcastTVService.connect().
        assert caller.method == MethodSignature(
            "com.connectsdk.service.NetcastTVService", "connect", (), "void"
        )
        assert caller.kind == "constructor"
        assert caller.object_local is not None

    def test_chain_spans_wrapper_methods_to_executor(self, lg_tv_plus):
        searcher, pool = _parts(lg_tv_plus)
        run = MethodSignature(
            "com.connectsdk.service.NetcastTVService$1", "run", (), "void"
        )
        resolved = advanced_search(searcher, pool, run)
        chain_methods = [link.method for link in resolved[0].chain]
        # connect -> runInBackground(R) -> runInBackground(R, boolean),
        # ending at the Executor.execute(r0) call site.
        assert chain_methods[0].name == "connect"
        assert chain_methods[1].name == "runInBackground"
        assert len(chain_methods[1].param_types) == 1
        assert chain_methods[2].name == "runInBackground"
        assert len(chain_methods[2].param_types) == 2
        # The last link is the ending method's call site.
        ending = resolved[0].chain[-1]
        body = pool.resolve_method(ending.method).body
        expr = body[ending.site_index].invoke_expr()
        assert expr.method.class_name == "java.util.concurrent.Executor"
        assert expr.method.name == "execute"


class TestEndingDetermination:
    def test_super_class_dispatch(self):
        """SuperServer server = new NetcastHttpServer(); server.start();"""
        app = AppBuilder()
        sup = app.new_class("com.x.SuperServer")
        sup.default_constructor()
        sm = sup.method("start")
        sm.return_void()
        sub = app.new_class("com.x.HttpServer", superclass="com.x.SuperServer")
        sub.default_constructor()
        sb = sub.method("start")
        sb.return_void()
        user = app.new_class("com.x.User")
        go = user.method("go")
        obj = go.new_init("com.x.HttpServer")
        up = go.cast("com.x.SuperServer", obj)
        go.invoke_virtual(up, "com.x.SuperServer", "start")
        go.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        callee = MethodSignature("com.x.HttpServer", "start", (), "void")
        assert needs_advanced_search(pool, callee)
        resolved = advanced_search(searcher, pool, callee)
        assert len(resolved) == 1
        assert resolved[0].method.class_name == "com.x.User"

    def test_asynctask_receiver_ending(self):
        """task.execute() resolves through the framework supertype."""
        app = AppBuilder()
        task = app.new_class("com.x.FetchTask", superclass="android.os.AsyncTask")
        task.default_constructor()
        dib = task.method(
            "doInBackground", params=["java.lang.Object[]"],
            returns="java.lang.Object",
        )
        dib.this()
        dib.param(0)
        dib.return_value(None)
        user = app.new_class("com.x.Screen", superclass="android.app.Activity")
        go = user.method("onCreate", params=["android.os.Bundle"])
        go.this()
        go.param(0)
        obj = go.new_init("com.x.FetchTask")
        go.invoke_virtual(
            obj, "android.os.AsyncTask", "execute",
            args=[go.const_null("java.lang.Object[]")],
            params=["java.lang.Object[]"],
            returns="android.os.AsyncTask",
        )
        go.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        callee = MethodSignature(
            "com.x.FetchTask", "doInBackground", ("java.lang.Object[]",),
            "java.lang.Object",
        )
        assert needs_advanced_search(pool, callee)
        resolved = advanced_search(searcher, pool, callee)
        assert len(resolved) == 1
        assert resolved[0].method.name == "onCreate"

    def test_onclick_listener_arg_ending(self):
        app = AppBuilder()
        listener = app.new_class(
            "com.x.SendListener", interfaces=["android.view.View$OnClickListener"]
        )
        listener.default_constructor()
        oc = listener.method("onClick", params=["android.view.View"])
        oc.this()
        oc.param(0)
        oc.return_void()
        screen = app.new_class("com.x.Main", superclass="android.app.Activity")
        go = screen.method("onCreate", params=["android.os.Bundle"])
        this = go.this()
        go.param(0)
        view = go.invoke_virtual(
            this, "android.app.Activity", "findViewById",
            args=[go.const_int(7)], params=["int"], returns="android.view.View",
        )
        lst = go.new_init("com.x.SendListener")
        go.invoke_virtual(
            view, "android.view.View", "setOnClickListener",
            args=[lst], params=["android.view.View$OnClickListener"],
        )
        go.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        callee = MethodSignature(
            "com.x.SendListener", "onClick", ("android.view.View",), "void"
        )
        resolved = advanced_search(searcher, pool, callee)
        assert len(resolved) == 1
        ending = resolved[0].chain[-1]
        body = pool.resolve_method(ending.method).body
        assert body[ending.site_index].invoke_expr().method.name == (
            "setOnClickListener"
        )

    def test_thread_constructor_arg_ending(self):
        app = AppBuilder()
        worker = app.new_class("com.x.Worker", interfaces=["java.lang.Runnable"])
        worker.default_constructor()
        run = worker.method("run")
        run.this()
        run.return_void()
        user = app.new_class("com.x.Boss")
        go = user.method("go")
        w = go.new_init("com.x.Worker")
        t = go.new_init("java.lang.Thread", args=[w],
                        ctor_params=["java.lang.Runnable"])
        go.invoke_virtual(t, "java.lang.Thread", "start")
        go.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        callee = MethodSignature("com.x.Worker", "run", (), "void")
        resolved = advanced_search(searcher, pool, callee)
        assert len(resolved) >= 1
        assert all(r.method.name == "go" for r in resolved)


class TestTaintMechanics:
    def test_strong_update_kills_taint(self):
        app = AppBuilder()
        worker = app.new_class("com.x.W", interfaces=["java.lang.Runnable"])
        worker.default_constructor()
        r = worker.method("run")
        r.this()
        r.return_void()
        user = app.new_class("com.x.U")
        go = user.method("go")
        w = go.new_init("com.x.W")
        alias = go.move(w)
        # Overwrite the alias before it escapes: no ending via alias.
        go.assign("java.lang.Object", None)
        go.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        callee = MethodSignature("com.x.W", "run", (), "void")
        assert advanced_search(searcher, pool, callee) == []

    def test_field_bridge_propagates_across_methods(self, lg_tv_plus):
        """In Fig. 3, run() stores the server into a field then reloads it.

        The advanced search of start()'s own class is not needed there
        (basic search applies), but the same app exercises the field
        bridge when resolving run() — already covered by the Fig. 4
        test.  Here we check the bridge directly on a two-method shape.
        """
        app = AppBuilder()
        worker = app.new_class("com.x.W", interfaces=["java.lang.Runnable"])
        worker.default_constructor()
        r = worker.method("run")
        r.this()
        r.return_void()
        holder = app.new_class("com.x.Holder")
        holder.field("w", "com.x.W", static=True)
        setm = holder.method("set", static=True)
        w = setm.new_init("com.x.W")
        setm.put_static("com.x.Holder", "w", "com.x.W", w)
        setm.return_void()
        runm = holder.method("dispatch", static=True)
        loaded = runm.get_static("com.x.Holder", "w", "com.x.W")
        ex = runm.get_static("com.x.Holder", "ex", "java.util.concurrent.Executor")
        runm.invoke_interface(
            ex, "java.util.concurrent.Executor", "execute",
            args=[loaded], params=["java.lang.Runnable"],
        )
        runm.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        callee = MethodSignature("com.x.W", "run", (), "void")
        resolved = advanced_search(searcher, pool, callee)
        assert len(resolved) == 1
        assert resolved[0].method.name == "set"
        chain_methods = [link.method.name for link in resolved[0].chain]
        assert chain_methods[-1] == "dispatch"

    def test_return_value_taint_flows_to_caller(self):
        app = AppBuilder()
        worker = app.new_class("com.x.W", interfaces=["java.lang.Runnable"])
        worker.default_constructor()
        r = worker.method("run")
        r.this()
        r.return_void()
        fac = app.new_class("com.x.Factory")
        make = fac.method("make", returns="com.x.W", static=True)
        obj = make.new_init("com.x.W")
        make.return_value(obj)
        user = app.new_class("com.x.U")
        go = user.method("go", static=True)
        got = go.invoke_static("com.x.Factory", "make", returns="com.x.W")
        ex = go.get_static("com.x.U", "ex", "java.util.concurrent.Executor")
        go.invoke_interface(
            ex, "java.util.concurrent.Executor", "execute",
            args=[got], params=["java.lang.Runnable"],
        )
        go.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        callee = MethodSignature("com.x.W", "run", (), "void")
        resolved = advanced_search(searcher, pool, callee)
        # The constructor lives in Factory.make; the chain must reach
        # U.go where the returned object is dispatched.
        assert len(resolved) >= 1
        assert resolved[0].method.name == "make"


class TestForwardLoopDetection:
    def test_mutual_recursion_detected_as_cross_forward(self):
        app = AppBuilder()
        worker = app.new_class("com.x.W", interfaces=["java.lang.Runnable"])
        worker.default_constructor()
        r = worker.method("run")
        r.this()
        r.return_void()
        ping = app.new_class("com.x.Ping")
        pm = ping.method("ping", params=["com.x.W"], static=True)
        arg = pm.param(0)
        pm.invoke_static("com.x.Pong", "pong", args=[arg], params=["com.x.W"])
        pm.return_void()
        pong = app.new_class("com.x.Pong")
        gm = pong.method("pong", params=["com.x.W"], static=True)
        arg2 = gm.param(0)
        gm.invoke_static("com.x.Ping", "ping", args=[arg2], params=["com.x.W"])
        gm.return_void()
        user = app.new_class("com.x.U")
        go = user.method("go", static=True)
        w = go.new_init("com.x.W")
        go.invoke_static("com.x.Ping", "ping", args=[w], params=["com.x.W"])
        go.return_void()
        apk = Apk(package="com.x", classes=app.build())
        searcher, pool = _parts(apk)
        loops = LoopDetector()
        callee = MethodSignature("com.x.W", "run", (), "void")
        advanced_search(searcher, pool, callee, loops=loops)
        assert loops.counts[LoopKind.CROSS_FORWARD] >= 1
