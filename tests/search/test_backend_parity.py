"""Backend parity: linear scan and inverted index must agree, byte for byte.

The inverted index is only a faster way to answer the same queries; any
divergence from the linear scan is a correctness bug.  These tests drive
randomized apps through every signature/field/class/literal query and
assert identical :class:`SearchHit` lists, then run the full
``BackDroid.analyze`` pipeline under both backends and compare reports.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.apk import Apk
from repro.core import BackDroid, BackDroidConfig
from repro.dex.builder import AppBuilder
from repro.dex.types import FieldSignature
from repro.search.index import BytecodeSearcher
from repro.store import ArtifactStore
from repro.workload.corpus import benchmark_app_spec
from repro.workload.generator import generate_app
from repro.workload.paperapps import build_heyzap, build_palcomp3

#: Deliberately adversarial class names: descriptors that embed each
#: other (``La;`` is a substring of ``Lcom/La;``), inner classes, and
#: plain nested prefixes — the cases where a naive token index diverges
#: from raw substring search.
_CLASS_NAMES = [
    "com.par.Base",
    "com.par.Base2",
    "com.par.Child",
    "com.par.Child$1",
    "com.La",
    "a",
    "com.other.Helper",
]

_STRING_VALUES = [
    "com.app.ACTION_SYNC",
    "MARKER_PLAIN",
    "regex.meta*chars+(really)?",
    "[brackets] and {braces}",
    "a",
    # Values embedding descriptor/signature/header-quoted shapes: a raw
    # text search matches these const-string lines, so the index must too.
    "see 'Lcom/par/Base;' here",
    "call Lcom/par/Base;.m0:()V now",
    "array [La; blob",
]


@st.composite
def woven_apps(draw):
    """An app whose classes mention each other in every searchable way."""
    names = draw(
        st.lists(st.sampled_from(_CLASS_NAMES), min_size=2, max_size=5,
                 unique=True)
    )
    app = AppBuilder()
    builders = {}
    for i, name in enumerate(names):
        superclass = "java.lang.Object"
        if i > 0 and draw(st.booleans()):
            superclass = names[draw(st.integers(0, i - 1))]
        builders[name] = app.new_class(name, superclass=superclass)

    placed_strings = []
    for name, cls in builders.items():
        if draw(st.booleans()):
            cls.field("conf", "java.lang.String", static=True)
        n_methods = draw(st.integers(min_value=1, max_value=3))
        for m in range(n_methods):
            method = cls.method(f"m{m}", static=True)
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                action = draw(st.integers(0, 4))
                other = names[draw(st.integers(0, len(names) - 1))]
                if action == 0:
                    value = draw(st.sampled_from(_STRING_VALUES))
                    method.const_string(value)
                    placed_strings.append(value)
                elif action == 1:
                    method.const_class(other)
                elif action == 2:
                    method.invoke_static(other, "m0")
                elif action == 3:
                    method.put_static(other, "conf", "java.lang.String",
                                      "written")
                else:
                    local = method.new(other)
                    method.cast(other, local)
            method.return_void()
    return Apk(package="com.parity", classes=app.build()), names, placed_strings


def _both(apk):
    return (
        BytecodeSearcher(apk.disassembly, backend="linear"),
        BytecodeSearcher(apk.disassembly, backend="indexed"),
    )


class TestQueryParity:
    @given(woven_apps())
    @settings(max_examples=30, deadline=None)
    def test_all_query_kinds_identical(self, case):
        apk, names, strings = case
        linear, indexed = _both(apk)
        for cls in apk.classes.application_classes():
            for method in cls.methods:
                sig = method.signature()
                assert linear.find_invocations(sig) == indexed.find_invocations(sig)
            for dex_field in cls.fields:
                fsig = FieldSignature(cls.name, dex_field.name,
                                      dex_field.field_type)
                assert linear.find_field_accesses(fsig) == \
                    indexed.find_field_accesses(fsig)
                assert linear.find_field_accesses(fsig, writes_only=True) == \
                    indexed.find_field_accesses(fsig, writes_only=True)
        for name in names:
            assert linear.classes_mentioning(name) == \
                indexed.classes_mentioning(name)
            assert linear.subclass_header_mentions(name) == \
                indexed.subclass_header_mentions(name)
            assert linear.find_const_class(name) == indexed.find_const_class(name)
        for value in strings + ["NEVER_PRESENT"]:
            assert linear.find_const_string(value) == \
                indexed.find_const_string(value)

    @given(woven_apps())
    @settings(max_examples=15, deadline=None)
    def test_pattern_queries_identical(self, case):
        apk, names, _ = case
        linear, indexed = _both(apk)
        assert linear.find_invocations_by_name("m0") == \
            indexed.find_invocations_by_name("m0")
        assert linear.find_invocations_by_name("m0", param_blob="") == \
            indexed.find_invocations_by_name("m0", param_blob="")

    @given(woven_apps())
    @settings(max_examples=15, deadline=None)
    def test_absent_needles_empty_on_both(self, case):
        apk, _, _ = case
        linear, indexed = _both(apk)
        assert linear.find_const_string("NOPE") == []
        assert indexed.find_const_string("NOPE") == []
        assert indexed.classes_mentioning("com.ghost.Nope") == set()
        assert linear.classes_mentioning("com.ghost.Nope") == set()


def _assert_searchers_agree(reference, candidate, apk, names, strings):
    """The full query matrix must agree hit-for-hit between searchers."""
    for cls in apk.classes.application_classes():
        for method in cls.methods:
            sig = method.signature()
            assert reference.find_invocations(sig) == \
                candidate.find_invocations(sig)
        for dex_field in cls.fields:
            fsig = FieldSignature(cls.name, dex_field.name,
                                  dex_field.field_type)
            assert reference.find_field_accesses(fsig) == \
                candidate.find_field_accesses(fsig)
    for name in names:
        assert reference.classes_mentioning(name) == \
            candidate.classes_mentioning(name)
        assert reference.subclass_header_mentions(name) == \
            candidate.subclass_header_mentions(name)
        assert reference.find_const_class(name) == \
            candidate.find_const_class(name)
    for value in strings + ["NEVER_PRESENT"]:
        assert reference.find_const_string(value) == \
            candidate.find_const_string(value)


class TestRestoredIndexParity:
    """An index restored from the artifact store is the same index.

    Byte-identical hits, same vocabulary, zero build time — the store is
    a cache, never a behaviour change.
    """

    @given(woven_apps())
    @settings(max_examples=15, deadline=None)
    def test_restored_hits_identical(self, case):
        apk, names, strings = case
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            cold = BytecodeSearcher(
                apk.disassembly, backend="indexed", store=store
            )
            cold.backend.index  # build once, publishing the artifacts
            assert not cold.backend.stats.index_restored

            # Drop the in-memory memo so the next searcher must go to disk.
            del apk.disassembly._token_index_cache
            warm = BytecodeSearcher(
                apk.disassembly, backend="indexed", store=store
            )
            linear = BytecodeSearcher(apk.disassembly, backend="linear")
            _assert_searchers_agree(linear, warm, apk, names, strings)
            assert warm.backend.stats.index_restored
            assert warm.backend.stats.index_build_seconds == 0.0

    def test_paper_apps_restored_reports_equal(self):
        with tempfile.TemporaryDirectory() as root:
            config = BackDroidConfig(
                search_backend="indexed", store_dir=root, store_mode="index"
            )
            cold = BackDroid(config).analyze(build_heyzap())
            warm = BackDroid(config).analyze(build_heyzap())
            assert _report_key(cold) == _report_key(warm)
            assert not cold.backend_stats["index_restored"]
            assert warm.backend_stats["index_restored"]
            assert warm.backend_stats["index_build_seconds"] == 0.0
            assert warm.backend_stats["vocab_size"] == \
                cold.backend_stats["vocab_size"]
            assert warm.backend_stats["posting_entries"] == \
                cold.backend_stats["posting_entries"]


def _report_key(report):
    """Everything observable about a report, modulo wall-clock noise."""
    return (
        report.package,
        report.search_cache_rate,
        report.search_cache_lookups,
        report.sink_cache_rate,
        [
            (
                str(record.site.method),
                record.site.stmt_index,
                record.site.spec.rule,
                record.reachable,
                record.cached,
                record.ssg_size,
                record.entry_points,
                str(record.finding),
            )
            for record in report.records
        ],
    )


class TestEndToEndParity:
    def _assert_equal_reports(self, make_apk):
        linear = BackDroid(
            BackDroidConfig(search_backend="linear")
        ).analyze(make_apk())
        indexed = BackDroid(
            BackDroidConfig(search_backend="indexed")
        ).analyze(make_apk())
        assert _report_key(linear) == _report_key(indexed)
        assert linear.search_backend == "linear"
        assert indexed.search_backend == "indexed"

    def test_paper_apps_equal_reports(self):
        self._assert_equal_reports(build_heyzap)
        self._assert_equal_reports(build_palcomp3)

    def test_benchmark_apps_equal_reports(self):
        for index in range(4):
            self._assert_equal_reports(
                lambda index=index: generate_app(
                    benchmark_app_spec(index, scale=0.08)
                ).apk
            )
