"""Unit tests for the modeled Java/Android API semantics."""

from repro.core.api_models import (
    ALLOW_ALL_VERIFIER,
    ApiCall,
    framework_constant,
    lookup_model,
)
from repro.core.values import ConstFact, NewObjFact, UnknownFact
from repro.dex.types import FieldSignature, MethodSignature


def _call(cls, name, base=None, args=(), params=None):
    sig = MethodSignature(
        cls, name,
        tuple(params or ["java.lang.Object"] * len(args)),
        "java.lang.Object",
    )
    model = lookup_model(sig)
    assert model is not None, f"no model for {sig}"
    return model(ApiCall(sig, base_fact=base, arg_facts=list(args)))


class TestStringBuilderModel:
    def test_init_empty(self):
        outcome = _call("java.lang.StringBuilder", "<init>")
        assert isinstance(outcome.base_update, NewObjFact)

    def test_init_seeded_append_tostring(self):
        seeded = _call(
            "java.lang.StringBuilder", "<init>", args=[ConstFact("AES")]
        ).base_update
        appended = _call(
            "java.lang.StringBuilder", "append",
            base=seeded, args=[ConstFact("/ECB/PKCS5Padding")],
        )
        final = _call("java.lang.StringBuilder", "toString",
                      base=appended.base_update)
        assert final.result == ConstFact("AES/ECB/PKCS5Padding")

    def test_append_int(self):
        seeded = _call("java.lang.StringBuilder", "<init>",
                       args=[ConstFact("port:")]).base_update
        appended = _call("java.lang.StringBuilder", "append",
                         base=seeded, args=[ConstFact(8089)])
        final = _call("java.lang.StringBuilder", "toString",
                      base=appended.base_update)
        assert final.result == ConstFact("port:8089")

    def test_append_unknown_degrades(self):
        seeded = _call("java.lang.StringBuilder", "<init>",
                       args=[ConstFact("AES")]).base_update
        appended = _call("java.lang.StringBuilder", "append",
                         base=seeded, args=[UnknownFact("user input")])
        final = _call("java.lang.StringBuilder", "toString",
                      base=appended.base_update)
        assert isinstance(final.result, UnknownFact)


class TestStringAndIntegerModels:
    def test_value_of(self):
        assert _call("java.lang.String", "valueOf",
                     args=[ConstFact(7)]).result == ConstFact("7")

    def test_concat(self):
        outcome = _call("java.lang.String", "concat",
                        base=ConstFact("AES/"), args=[ConstFact("ECB")])
        assert outcome.result == ConstFact("AES/ECB")

    def test_case_transforms(self):
        assert _call("java.lang.String", "toUpperCase",
                     base=ConstFact("aes")).result == ConstFact("AES")
        assert _call("java.lang.String", "toLowerCase",
                     base=ConstFact("AES")).result == ConstFact("aes")
        assert _call("java.lang.String", "trim",
                     base=ConstFact(" x ")).result == ConstFact("x")

    def test_format_passthrough_without_specifiers(self):
        assert _call("java.lang.String", "format",
                     args=[ConstFact("AES/GCM/NoPadding")]).result == ConstFact(
            "AES/GCM/NoPadding"
        )

    def test_format_with_specifiers_unknown(self):
        outcome = _call("java.lang.String", "format", args=[ConstFact("%s/ECB")])
        assert isinstance(outcome.result, UnknownFact)

    def test_parse_int(self):
        assert _call("java.lang.Integer", "parseInt",
                     args=[ConstFact("8089")]).result == ConstFact(8089)

    def test_parse_int_garbage(self):
        outcome = _call("java.lang.Integer", "parseInt", args=[ConstFact("x")])
        assert isinstance(outcome.result, UnknownFact)

    def test_integer_to_string(self):
        assert _call("java.lang.Integer", "toString",
                     args=[ConstFact(42)]).result == ConstFact("42")

    def test_substring_one_arg(self):
        assert _call("java.lang.String", "substring",
                     base=ConstFact("AES/ECB"),
                     args=[ConstFact(4)]).result == ConstFact("ECB")

    def test_substring_two_args(self):
        assert _call("java.lang.String", "substring",
                     base=ConstFact("AES/ECB"),
                     args=[ConstFact(0), ConstFact(3)]).result == ConstFact("AES")

    def test_substring_out_of_bounds_unknown(self):
        outcome = _call("java.lang.String", "substring",
                        base=ConstFact("AES"), args=[ConstFact(9)])
        assert isinstance(outcome.result, UnknownFact)

    def test_replace(self):
        assert _call(
            "java.lang.String", "replace",
            base=ConstFact("AES/GCM/NoPadding"),
            args=[ConstFact("GCM"), ConstFact("ECB")],
        ).result == ConstFact("AES/ECB/NoPadding")

    def test_text_utils_is_empty(self):
        assert _call("android.text.TextUtils", "isEmpty",
                     args=[ConstFact("")]).result == ConstFact(True)
        assert _call("android.text.TextUtils", "isEmpty",
                     args=[ConstFact("x")]).result == ConstFact(False)
        assert _call("android.text.TextUtils", "isEmpty",
                     args=[ConstFact(None)]).result == ConstFact(True)


class TestFrameworkConstants:
    def test_allow_all_constant(self):
        sig = FieldSignature(
            "org.apache.http.conn.ssl.SSLSocketFactory",
            "ALLOW_ALL_HOSTNAME_VERIFIER",
            "org.apache.http.conn.ssl.X509HostnameVerifier",
        )
        assert framework_constant(sig) == ConstFact(ALLOW_ALL_VERIFIER)

    def test_unknown_field_is_none(self):
        sig = FieldSignature("com.a.B", "f", "int")
        assert framework_constant(sig) is None

    def test_executor_factory_model(self):
        outcome = _call("java.util.concurrent.Executors", "newCachedThreadPool")
        assert isinstance(outcome.result, NewObjFact)
        assert "ExecutorService" in outcome.result.class_name
