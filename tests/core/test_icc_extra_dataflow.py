"""Dedicated tests for Intent-extra dataflow across ICC.

An extension beyond the paper's per-sink evaluation: the transformation
string travels ``putExtra("mode", v)`` → ``startService`` →
``onStartCommand(intent, ...)`` → ``getStringExtra("mode")`` → sink.
"""

from repro.core import BackDroid, BackDroidConfig
from repro.core.api_models import ApiCall, lookup_model
from repro.core.values import ConstFact, NewObjFact, UnknownFact
from repro.dex.types import MethodSignature
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PatternSpec


def _analyze(insecure: bool):
    spec = AppSpec(
        package="com.ie", seed=9,
        patterns=(PatternSpec("icc_extra_dataflow", insecure=insecure),),
        filler_classes=2,
    )
    generated = generate_app(spec)
    return BackDroid(BackDroidConfig(sink_rules=("crypto-ecb",))).analyze(
        generated.apk
    )


class TestEndToEnd:
    def test_insecure_extra_resolved_and_flagged(self):
        report = _analyze(insecure=True)
        assert report.sink_count == 1
        record = report.records[0]
        assert record.reachable
        assert record.facts_repr[0] == '"AES/ECB/PKCS5Padding"'
        assert report.vulnerable

    def test_secure_extra_resolved_and_clean(self):
        report = _analyze(insecure=False)
        record = report.records[0]
        assert record.facts_repr[0] == '"AES/GCM/NoPadding"'
        assert not report.vulnerable


class TestIntentModels:
    def _model(self, name):
        sig = MethodSignature("android.content.Intent", name,
                              ("java.lang.String",), "java.lang.Object")
        model = lookup_model(sig)
        assert model is not None
        return model, sig

    def test_put_then_get_extra(self):
        put, put_sig = self._model("putExtra")
        outcome = put(ApiCall(put_sig,
                              base_fact=NewObjFact.make("android.content.Intent"),
                              arg_facts=[ConstFact("mode"), ConstFact("DES")]))
        get, get_sig = self._model("getStringExtra")
        got = get(ApiCall(get_sig, base_fact=outcome.base_update,
                          arg_facts=[ConstFact("mode")]))
        assert got.result == ConstFact("DES")

    def test_get_missing_extra_unknown(self):
        get, get_sig = self._model("getStringExtra")
        got = get(ApiCall(get_sig,
                          base_fact=NewObjFact.make("android.content.Intent"),
                          arg_facts=[ConstFact("absent")]))
        assert isinstance(got.result, UnknownFact)

    def test_set_then_get_action(self):
        set_, set_sig = self._model("setAction")
        outcome = set_(ApiCall(set_sig,
                               base_fact=NewObjFact.make("android.content.Intent"),
                               arg_facts=[ConstFact("com.ie.ACTION_GO")]))
        get, get_sig = self._model("getAction")
        got = get(ApiCall(get_sig, base_fact=outcome.base_update, arg_facts=[]))
        assert got.result == ConstFact("com.ie.ACTION_GO")

    def test_put_extra_on_unknown_base_starts_fresh(self):
        put, put_sig = self._model("putExtra")
        outcome = put(ApiCall(put_sig, base_fact=UnknownFact("?"),
                              arg_facts=[ConstFact("k"), ConstFact("v")]))
        assert isinstance(outcome.base_update, NewObjFact)
        assert outcome.base_update.member("extra:k") == ConstFact("v")
