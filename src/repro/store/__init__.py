"""Persistent warm-start artifacts for corpus batch runs.

* :mod:`repro.store.artifacts` — the content-addressed on-disk
  :class:`ArtifactStore`: per-class-group *shards* (token streams plus
  prefolded posting lists, shared across every app that embeds the same
  library code), per-app manifests composing shards back into
  byte-identical indexes, and finished batch outcomes — all keyed by
  content hashes plus a format version, with atomic (rename-published)
  writes safe under the process-pool batch executor.
* :mod:`repro.store.sharding` — the class-group partitioner, shard
  content addressing, and the exact composition of shard mini-indexes
  back into one app-level :class:`~repro.search.backends.indexed.TokenIndex`.
* :mod:`repro.store.binshard` — the v3 mmap-friendly binary shard
  container (struct-packed sections + offset table) and the zero-copy
  :class:`LazyShardView` over one mapped shard file.
* :mod:`repro.store.lazy` — :class:`LazyTokenIndex`, the drop-in index
  a fully binary warm entry restores to: groups materialize on first
  query and are LRU-bounded.

The on-disk format is specified in ``docs/STORE_FORMAT.md``.
"""

from repro.store.artifacts import (
    COMPAT_VERSIONS,
    FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
    PROBE_LEVELS,
    WARM_LEVELS,
    ArtifactStore,
    GcResult,
    MigrateResult,
    StoreInventory,
    StoreProbe,
    StoreStats,
    VerifyEntry,
    set_specmap_guard,
    store_key,
)
from repro.store.binshard import (
    BIN_FORMAT_VERSION,
    LazyShardView,
    ShardCorrupt,
    ShardStale,
    decode_shard,
    encode_shard,
)
from repro.store.lazy import DEFAULT_GROUP_CACHE, LazyTokenIndex
from repro.store.sharding import (
    KEY_VERSION,
    ShardGroup,
    group_label,
    partition_disassembly,
    shard_key,
)

__all__ = [
    "BIN_FORMAT_VERSION",
    "COMPAT_VERSIONS",
    "DEFAULT_GROUP_CACHE",
    "FORMAT_VERSION",
    "KEY_VERSION",
    "LEGACY_FORMAT_VERSION",
    "PROBE_LEVELS",
    "WARM_LEVELS",
    "ArtifactStore",
    "GcResult",
    "LazyShardView",
    "LazyTokenIndex",
    "MigrateResult",
    "ShardCorrupt",
    "ShardGroup",
    "ShardStale",
    "StoreInventory",
    "StoreProbe",
    "StoreStats",
    "VerifyEntry",
    "decode_shard",
    "encode_shard",
    "group_label",
    "partition_disassembly",
    "set_specmap_guard",
    "shard_key",
    "store_key",
]
