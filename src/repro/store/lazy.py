"""The mmap-backed lazy index: groups materialize on first query.

An eager restore pays for every shard group an app embeds, but a
targeted analysis (the paper's whole pitch) usually queries a handful
of sinks in a handful of libraries.  :class:`LazyTokenIndex` is the
drop-in :class:`~repro.search.backends.indexed.TokenIndex` the store
returns for an all-binary warm entry: it holds one
:class:`~repro.store.binshard.LazyShardView` per manifest group and
answers ``token_lines`` by

1. classifying the needle shape exactly as ``TokenIndex`` does;
2. testing each *unmaterialized* group for candidacy with zero-copy
   reads (the CRC filter for exact/containment lookups, an
   ``mmap.find`` over the vocabulary blob for substring scans) — a
   non-candidate group contributes nothing and decodes nothing;
3. materializing candidate groups into per-group ``TokenIndex``
   objects (one mini-index decode each) and unioning their re-based
   answers.

The union is exact, not approximate: every needle shape the index
serves decomposes per group — composed posting lists, containment
buckets and string/vocabulary scans are each the union of the per-group
results re-based by the group's start line — so a lazily answered query
equals the composed index's answer (the parity suite enforces this).

Materialized groups live in a bounded LRU; eviction only costs a
re-decode on the next fault.  Accessing a whole-index structure
(``vocab``, ``postings``, ``exact``, ``containing``) materializes the
index fully via :func:`~repro.store.sharding.compose_index`, keeping
structure-identity with a fresh fold.

Corruption discovered at any point — candidacy probe, mini-index
decode, full decode — triggers the ``heal`` callback, which re-folds
the damaged group from the live disassembly and republishes its shard
(surfacing as ``patched_groups``/``shards_patched``).
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Callable, Optional

from repro.search.backends.indexed import _DESCRIPTOR_RE, TokenIndex
from repro.store.binshard import LazyShardView, ShardCorrupt
from repro.store.sharding import compose_index

#: Materialized per-group indexes a lazy index keeps at once.  Eviction
#: is safe (a re-fault re-decodes), so the bound trades resident memory
#: for decode work on adversarial query patterns.
DEFAULT_GROUP_CACHE = 16


class LazyTokenIndex:
    """A query-compatible ``TokenIndex`` over mmapped binary shards."""

    #: Marks this index as lazily materialized (backends branch on it
    #: instead of touching structures whose access would materialize).
    lazy = True

    def __init__(
        self,
        parts: list[tuple[int, LazyShardView]],
        heal: Callable[[int], dict],
        group_cache: int = DEFAULT_GROUP_CACHE,
        stats=None,
    ) -> None:
        """``parts`` is ``(start_line, view)`` per manifest group, in
        render order; ``heal`` re-folds group *i* from the live
        disassembly, republishes its shard, and returns the repaired
        payload; ``stats`` (a ``StoreStats``) receives materialization
        counters."""
        self._parts = parts
        self._heal = heal
        self._cache: OrderedDict[int, TokenIndex] = OrderedDict()
        self._cache_size = max(1, group_cache)
        self._touched: set[int] = set()
        self._full: Optional[TokenIndex] = None
        self._stats = stats
        self._lock = threading.Lock()
        self.restored = True
        self.build_seconds = 0.0
        #: Groups healed from the live disassembly (mirrors the eager
        #: restore's patch counter).
        self.patched_groups = 0
        #: Decoded groups dropped by the LRU bound on this index (also
        #: aggregated into ``StoreStats.group_cache_evictions``).
        self.evictions = 0

    # ------------------------------------------------------------------
    # Laziness observables
    # ------------------------------------------------------------------
    @property
    def groups_total(self) -> int:
        return len(self._parts)

    @property
    def materialized_groups(self) -> int:
        """Distinct groups ever decoded (eviction does not un-count)."""
        return len(self._touched)

    @property
    def bytes_mapped(self) -> int:
        return sum(view.bytes_mapped for _, view in self._parts)

    @property
    def bytes_decoded(self) -> int:
        return sum(view.bytes_decoded for _, view in self._parts)

    def _view_counter(self, index: int, attr: str) -> int:
        """A header counter off one view, healing a corrupt file.

        The restore only stat-checked the file, so the first header
        read is where a torn or truncated shard surfaces — repair it
        exactly like a query would.
        """
        _, view = self._parts[index]
        try:
            return getattr(view, attr)
        except ShardCorrupt:
            self._repair(index)
            return getattr(view, attr)

    @property
    def posting_entries(self) -> int:
        """Exact: group line ranges are disjoint, so composition never
        merges two groups' posting entries."""
        if self._full is not None:
            return self._full.posting_entries
        with self._lock:
            return sum(
                self._view_counter(index, "posting_entries")
                for index in range(len(self._parts))
            )

    @property
    def vocab_size(self) -> int:
        """Exact once materialized; a per-group-sum upper bound before
        (shared library tokens dedup only at composition)."""
        if self._full is not None:
            return len(self._full.vocab)
        with self._lock:
            return sum(
                self._view_counter(index, "vocab_count")
                for index in range(len(self._parts))
            )

    # ------------------------------------------------------------------
    # Group materialization
    # ------------------------------------------------------------------
    def _repair(self, index: int) -> dict:
        payload = self._heal(index)
        self.patched_groups += 1
        _, view = self._parts[index]
        view.reset()  # the file was republished; drop the stale mapping
        return payload

    def _group_payload(self, index: int) -> dict:
        _, view = self._parts[index]
        try:
            return view.mini_index()
        except ShardCorrupt:
            return self._repair(index)

    def _group_index(self, index: int) -> TokenIndex:
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        payload = self._group_payload(index)
        try:
            group = TokenIndex.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            # CRC-clean but structurally inconsistent (a foreign or
            # buggy writer): heal exactly like bit rot.
            group = TokenIndex.from_payload(self._repair(index))
        self._cache[index] = group
        self._touched.add(index)
        if self._stats is not None:
            self._stats.groups_materialized += 1
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self.evictions += 1
            if self._stats is not None:
                self._stats.group_cache_evictions += 1
        return group

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def token_lines(self, needle: str) -> list[int]:
        """Every line whose tokens contain *needle* as a substring."""
        if self._full is not None:
            return self._full.token_lines(needle)
        needle_bytes = needle.encode("utf-8", "surrogatepass")
        crc = zlib.crc32(needle_bytes)
        # A descriptor-shaped needle is answered purely from exact and
        # containment lookups, both of whose keys are in the filter —
        # the blob scan would only add false-positive candidacies.
        # Every other shape may also substring-scan token texts, which
        # the raw vocabulary blob witnesses conservatively.
        filter_only = bool(_DESCRIPTOR_RE.fullmatch(needle))
        lines: list[int] = []
        with self._lock:
            for index, (start, view) in enumerate(self._parts):
                if index in self._cache:
                    candidate = True  # already paid for
                else:
                    try:
                        candidate = view.may_contain(crc) or (
                            not filter_only
                            and view.blob_contains(needle_bytes)
                        )
                    except ShardCorrupt:
                        candidate = True  # materialize (and heal) below
                if not candidate:
                    continue
                group = self._group_index(index)
                # Group answers are sorted and group line ranges are
                # disjoint ascending, so appending keeps global order.
                lines.extend(
                    start + rel for rel in group.token_lines(needle)
                )
        return lines

    # ------------------------------------------------------------------
    # Full materialization (structure access, parity checks)
    # ------------------------------------------------------------------
    def materialize(self) -> TokenIndex:
        """Compose every group; structure-identical to a fresh fold."""
        with self._lock:
            return self._materialize_locked()

    def _materialize_locked(self) -> TokenIndex:
        if self._full is None:
            parts = [
                (start, self._group_payload(index))
                for index, (start, _) in enumerate(self._parts)
            ]
            full = compose_index(parts)
            full.patched_groups = self.patched_groups
            self._full = full
        return self._full

    @property
    def vocab(self) -> list[str]:
        return self.materialize().vocab

    @property
    def postings(self) -> list[list[int]]:
        return self.materialize().postings

    @property
    def exact(self) -> dict[str, int]:
        return self.materialize().exact

    @property
    def containing(self) -> dict[str, list[int]]:
        return self.materialize().containing

    @property
    def _string_ids(self) -> list[int]:
        return self.materialize()._string_ids

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every mapping (tests, explicit teardown)."""
        with self._lock:
            for _, view in self._parts:
                view.close()
            self._cache.clear()
