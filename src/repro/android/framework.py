"""The Android framework + JDK model.

Android static analysis differs from classical program analysis in that
entry points are *lifecycle handlers* invoked implicitly by the framework
(Sec. II-A).  This module captures all the framework knowledge BackDroid
and the baselines rely on:

* a bodiless :class:`~repro.dex.hierarchy.ClassPool` of the framework/JDK
  classes apps extend and call (so hierarchy queries such as "which
  interface declares ``void run()``" resolve);
* the lifecycle-handler tables (Sec. IV-E domain knowledge);
* the callback-registration and asynchronous-dispatch edge maps that
  *whole-app* tools hardwire (and that BackDroid's advanced search
  deliberately avoids needing);
* the ICC call APIs for the two-time ICC search (Sec. IV-D);
* the security-sensitive **sink API catalogue** for the crypto and SSL
  misconfiguration problems evaluated in Sec. VI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dex.builder import AppBuilder, ClassBuilder
from repro.dex.hierarchy import ClassPool
from repro.dex.types import MethodSignature

#: Packages treated as framework/SDK space.  Classes under these prefixes
#: are not part of the app's DEX, are never disassembled or searched, and
#: mark the boundary where the advanced search's forward taint analysis
#: stops (the "ending method" of Sec. IV-B).
FRAMEWORK_PACKAGE_PREFIXES = (
    "android.",
    "androidx.",
    "java.",
    "javax.",
    "dalvik.",
    "org.apache.http.",
    "org.json.",
    "org.w3c.",
    "org.xml.",
)


def is_framework_class(class_name: str) -> bool:
    """True when *class_name* belongs to the modelled framework/JDK."""
    return class_name.startswith(FRAMEWORK_PACKAGE_PREFIXES)


# ======================================================================
# Lifecycle domain knowledge (Sec. IV-E)
# ======================================================================

#: Component base class -> its lifecycle handler names.
LIFECYCLE_HANDLERS: dict[str, tuple[str, ...]] = {
    "android.app.Activity": (
        "onCreate",
        "onStart",
        "onRestart",
        "onResume",
        "onPause",
        "onStop",
        "onDestroy",
        "onNewIntent",
        "onActivityResult",
    ),
    "android.app.Service": (
        "onCreate",
        "onStartCommand",
        "onStart",
        "onBind",
        "onUnbind",
        "onDestroy",
    ),
    "android.content.BroadcastReceiver": ("onReceive",),
    "android.content.ContentProvider": (
        "onCreate",
        "query",
        "insert",
        "update",
        "delete",
    ),
    "android.app.Application": ("onCreate", "onTerminate", "attachBaseContext"),
}

#: handler -> handlers that can run immediately before it, per component
#: kind ("they can be executed in multiple orders" — Sec. IV-E).  Used by
#: the on-demand lifecycle search to keep walking towards ``onCreate``.
LIFECYCLE_PREDECESSORS: dict[str, dict[str, tuple[str, ...]]] = {
    "android.app.Activity": {
        "onStart": ("onCreate", "onRestart"),
        "onRestart": ("onStop",),
        "onResume": ("onStart", "onPause"),
        "onPause": ("onResume",),
        "onStop": ("onPause",),
        "onDestroy": ("onStop", "onPause"),
        "onNewIntent": ("onPause",),
        "onActivityResult": ("onPause",),
    },
    "android.app.Service": {
        "onStartCommand": ("onCreate",),
        "onStart": ("onCreate",),
        "onBind": ("onCreate",),
        "onUnbind": ("onBind",),
        "onDestroy": ("onCreate",),
    },
    "android.content.BroadcastReceiver": {},
    "android.content.ContentProvider": {
        "query": ("onCreate",),
        "insert": ("onCreate",),
        "update": ("onCreate",),
        "delete": ("onCreate",),
    },
    "android.app.Application": {"onTerminate": ("onCreate",)},
}


# ======================================================================
# Callback / asynchronous domain knowledge (used by the *baseline*)
# ======================================================================

#: registration API -> (callback interface, callback method name).
#: Whole-app tools hardwire these pairs; BackDroid instead discovers the
#: flow with constructor search + forward object taint (Sec. IV-B).
CALLBACK_REGISTRATIONS: dict[str, tuple[str, str]] = {
    "setOnClickListener": ("android.view.View$OnClickListener", "onClick"),
    "setOnLongClickListener": ("android.view.View$OnLongClickListener", "onLongClick"),
    "setOnTouchListener": ("android.view.View$OnTouchListener", "onTouch"),
    "setOnItemClickListener": (
        "android.widget.AdapterView$OnItemClickListener",
        "onItemClick",
    ),
    "addTextChangedListener": ("android.text.TextWatcher", "onTextChanged"),
}

#: asynchronous dispatch API (class, method) -> callee method it reaches.
#: The paper (Sec. IV-B) notes prior work hardwired e.g.
#: ``Thread.start() -> run()`` but missed ``Executor.execute()``.
ASYNC_EDGE_MAP: dict[tuple[str, str], str] = {
    ("java.lang.Thread", "start"): "run",
    ("android.os.AsyncTask", "execute"): "doInBackground",
    ("android.os.Handler", "post"): "run",
    ("android.os.Handler", "postDelayed"): "run",
    ("java.util.concurrent.Executor", "execute"): "run",
    ("java.util.concurrent.ExecutorService", "submit"): "run",
    ("java.util.Timer", "schedule"): "run",
}


# ======================================================================
# ICC domain knowledge (Sec. IV-D)
# ======================================================================

#: ICC-launch APIs: method name -> component base class it targets.
ICC_CALL_APIS: dict[str, str] = {
    "startActivity": "android.app.Activity",
    "startActivityForResult": "android.app.Activity",
    "startService": "android.app.Service",
    "bindService": "android.app.Service",
    "stopService": "android.app.Service",
    "sendBroadcast": "android.content.BroadcastReceiver",
    "sendOrderedBroadcast": "android.content.BroadcastReceiver",
}

INTENT_CLASS = "android.content.Intent"


# ======================================================================
# Sink API catalogue (Sec. VI-A)
# ======================================================================


@dataclass(frozen=True)
class SinkSpec:
    """One security-sensitive sink API and which parameters to track."""

    signature: MethodSignature
    tracked_params: tuple[int, ...]
    rule: str
    description: str

    @property
    def key(self) -> str:
        return self.signature.to_dex()


def _sig(cls: str, ret: str, name: str, *params: str) -> MethodSignature:
    return MethodSignature(cls, name, tuple(params), ret)


#: The three sink APIs of the paper's evaluation, plus the "uncommon"
#: sinks it name-checks in Sec. VI-D (sendTextMessage, ServerSocket,
#: LocalServerSocket) so other studies can be replayed on this substrate.
SINK_CATALOGUE: tuple[SinkSpec, ...] = (
    SinkSpec(
        _sig("javax.crypto.Cipher", "javax.crypto.Cipher", "getInstance", "java.lang.String"),
        (0,),
        "crypto-ecb",
        "Cipher.getInstance(transformation)",
    ),
    SinkSpec(
        _sig(
            "javax.crypto.Cipher",
            "javax.crypto.Cipher",
            "getInstance",
            "java.lang.String",
            "java.lang.String",
        ),
        (0,),
        "crypto-ecb",
        "Cipher.getInstance(transformation, provider)",
    ),
    SinkSpec(
        _sig(
            "org.apache.http.conn.ssl.SSLSocketFactory",
            "void",
            "setHostnameVerifier",
            "org.apache.http.conn.ssl.X509HostnameVerifier",
        ),
        (0,),
        "ssl-verifier",
        "SSLSocketFactory.setHostnameVerifier(verifier)",
    ),
    SinkSpec(
        _sig(
            "javax.net.ssl.HttpsURLConnection",
            "void",
            "setHostnameVerifier",
            "javax.net.ssl.HostnameVerifier",
        ),
        (0,),
        "ssl-verifier",
        "HttpsURLConnection.setHostnameVerifier(verifier)",
    ),
    SinkSpec(
        _sig(
            "javax.net.ssl.HttpsURLConnection",
            "void",
            "setDefaultHostnameVerifier",
            "javax.net.ssl.HostnameVerifier",
        ),
        (0,),
        "ssl-verifier",
        "HttpsURLConnection.setDefaultHostnameVerifier(verifier)",
    ),
    SinkSpec(
        _sig(
            "android.telephony.SmsManager",
            "void",
            "sendTextMessage",
            "java.lang.String",
            "java.lang.String",
            "java.lang.String",
            "android.app.PendingIntent",
            "android.app.PendingIntent",
        ),
        (0, 2),
        "sms-send",
        "SmsManager.sendTextMessage(dest, sc, text, sent, delivered)",
    ),
    SinkSpec(
        _sig("java.net.ServerSocket", "void", "<init>", "int"),
        (0,),
        "open-port",
        "new ServerSocket(port)",
    ),
    SinkSpec(
        _sig("java.net.ServerSocket", "void", "bind", "java.net.SocketAddress"),
        (0,),
        "open-port",
        "ServerSocket.bind(address)",
    ),
    SinkSpec(
        _sig("android.net.LocalServerSocket", "void", "<init>", "java.lang.String"),
        (0,),
        "open-port",
        "new LocalServerSocket(name)",
    ),
)

#: The three sinks used for the paper's 144-app pre-search (Sec. VI-A).
PAPER_SINK_RULES = ("crypto-ecb", "ssl-verifier")

def sinks_for_rules(rules: tuple[str, ...] = PAPER_SINK_RULES) -> tuple[SinkSpec, ...]:
    """The sink specs belonging to the given rule families."""
    return tuple(s for s in SINK_CATALOGUE if s.rule in rules)


# ======================================================================
# Framework class pool
# ======================================================================


def _abstract(cls: ClassBuilder, name: str, params=(), returns: str = "void") -> None:
    cls.method(name, params=params, returns=returns, abstract=True)


def build_framework_pool() -> ClassPool:
    """Build the bodiless framework/JDK class pool.

    Every class is flagged ``is_framework`` so the disassembler and the
    searches skip it, exactly as real dexdump output contains only app DEX.
    """
    app = AppBuilder()

    # --- java.lang ----------------------------------------------------
    obj = app.new_class("java.lang.Object", superclass="")
    obj.dex_class.super_name = None
    obj.method("<init>", abstract=True)
    obj.method("toString", returns="java.lang.String", abstract=True)
    obj.method("hashCode", returns="int", abstract=True)
    obj.method("equals", params=["java.lang.Object"], returns="boolean", abstract=True)

    runnable = app.new_interface("java.lang.Runnable")
    _abstract(runnable, "run")

    callable_iface = app.new_interface("java.util.concurrent.Callable")
    _abstract(callable_iface, "call", returns="java.lang.Object")

    thread = app.new_class("java.lang.Thread", interfaces=["java.lang.Runnable"])
    thread.method("<init>", abstract=True)
    thread.method("<init>", params=["java.lang.Runnable"], abstract=True)
    thread.method("<init>", params=["java.lang.Runnable", "java.lang.String"], abstract=True)
    _abstract(thread, "start")
    _abstract(thread, "run")
    _abstract(thread, "interrupt")

    string = app.new_class("java.lang.String")
    string.method("valueOf", params=["java.lang.Object"], returns="java.lang.String",
                  static=True, abstract=True)
    string.method("valueOf", params=["int"], returns="java.lang.String",
                  static=True, abstract=True)
    string.method("format", params=["java.lang.String", "java.lang.Object[]"],
                  returns="java.lang.String", static=True, abstract=True)
    _abstract(string, "concat", params=["java.lang.String"], returns="java.lang.String")
    _abstract(string, "toLowerCase", returns="java.lang.String")
    _abstract(string, "toUpperCase", returns="java.lang.String")
    _abstract(string, "trim", returns="java.lang.String")
    _abstract(string, "substring", params=["int"], returns="java.lang.String")
    _abstract(string, "length", returns="int")
    _abstract(string, "equals", params=["java.lang.Object"], returns="boolean")

    sb = app.new_class("java.lang.StringBuilder")
    sb.method("<init>", abstract=True)
    sb.method("<init>", params=["java.lang.String"], abstract=True)
    _abstract(sb, "append", params=["java.lang.String"], returns="java.lang.StringBuilder")
    _abstract(sb, "append", params=["int"], returns="java.lang.StringBuilder")
    _abstract(sb, "append", params=["java.lang.Object"], returns="java.lang.StringBuilder")
    _abstract(sb, "toString", returns="java.lang.String")

    integer = app.new_class("java.lang.Integer")
    integer.method("parseInt", params=["java.lang.String"], returns="int",
                   static=True, abstract=True)
    integer.method("valueOf", params=["int"], returns="java.lang.Integer",
                   static=True, abstract=True)
    integer.method("toString", params=["int"], returns="java.lang.String",
                   static=True, abstract=True)

    klass = app.new_class("java.lang.Class")
    klass.method("forName", params=["java.lang.String"], returns="java.lang.Class",
                 static=True, abstract=True)
    _abstract(klass, "getMethod", params=["java.lang.String", "java.lang.Class[]"],
              returns="java.lang.reflect.Method")
    _abstract(klass, "newInstance", returns="java.lang.Object")
    reflect_method = app.new_class("java.lang.reflect.Method")
    _abstract(reflect_method, "invoke",
              params=["java.lang.Object", "java.lang.Object[]"],
              returns="java.lang.Object")

    system = app.new_class("java.lang.System")
    system.method("currentTimeMillis", returns="long", static=True, abstract=True)
    system.method("arraycopy",
                  params=["java.lang.Object", "int", "java.lang.Object", "int", "int"],
                  static=True, abstract=True)

    # --- java.util.concurrent ------------------------------------------
    executor = app.new_interface("java.util.concurrent.Executor")
    _abstract(executor, "execute", params=["java.lang.Runnable"])

    executor_service = app.new_interface(
        "java.util.concurrent.ExecutorService", interfaces=["java.util.concurrent.Executor"]
    )
    _abstract(executor_service, "submit", params=["java.lang.Runnable"],
              returns="java.util.concurrent.Future")
    _abstract(executor_service, "shutdown")

    executors = app.new_class("java.util.concurrent.Executors")
    executors.method("newFixedThreadPool", params=["int"],
                     returns="java.util.concurrent.ExecutorService", static=True, abstract=True)
    executors.method("newSingleThreadExecutor",
                     returns="java.util.concurrent.ExecutorService", static=True, abstract=True)
    executors.method("newCachedThreadPool",
                     returns="java.util.concurrent.ExecutorService", static=True, abstract=True)

    app.new_class("java.util.concurrent.Future")
    timer = app.new_class("java.util.Timer")
    timer.method("<init>", abstract=True)
    _abstract(timer, "schedule", params=["java.util.TimerTask", "long"])
    timer_task = app.new_class("java.util.TimerTask", interfaces=["java.lang.Runnable"])
    timer_task.method("<init>", abstract=True)
    _abstract(timer_task, "run")

    # --- java.net / sockets ---------------------------------------------
    server_socket = app.new_class("java.net.ServerSocket")
    server_socket.method("<init>", abstract=True)
    server_socket.method("<init>", params=["int"], abstract=True)
    _abstract(server_socket, "bind", params=["java.net.SocketAddress"])
    _abstract(server_socket, "accept", returns="java.net.Socket")
    app.new_class("java.net.Socket")
    app.new_class("java.net.SocketAddress")
    inet = app.new_class("java.net.InetSocketAddress", superclass="java.net.SocketAddress")
    inet.method("<init>", params=["java.lang.String", "int"], abstract=True)
    inet.method("<init>", params=["int"], abstract=True)
    local_server = app.new_class("android.net.LocalServerSocket")
    local_server.method("<init>", params=["java.lang.String"], abstract=True)

    # --- crypto / SSL sinks ----------------------------------------------
    cipher = app.new_class("javax.crypto.Cipher")
    cipher.method("getInstance", params=["java.lang.String"], returns="javax.crypto.Cipher",
                  static=True, abstract=True)
    cipher.method("getInstance", params=["java.lang.String", "java.lang.String"],
                  returns="javax.crypto.Cipher", static=True, abstract=True)
    _abstract(cipher, "init", params=["int", "java.security.Key"])
    _abstract(cipher, "doFinal", params=["byte[]"], returns="byte[]")
    app.new_class("java.security.Key")

    hostname_verifier = app.new_interface("javax.net.ssl.HostnameVerifier")
    _abstract(hostname_verifier, "verify",
              params=["java.lang.String", "javax.net.ssl.SSLSession"], returns="boolean")
    app.new_class("javax.net.ssl.SSLSession")

    x509_verifier = app.new_interface(
        "org.apache.http.conn.ssl.X509HostnameVerifier",
        interfaces=["javax.net.ssl.HostnameVerifier"],
    )
    _abstract(x509_verifier, "verify",
              params=["java.lang.String", "javax.net.ssl.SSLSession"], returns="boolean")

    allow_all = app.new_class(
        "org.apache.http.conn.ssl.AllowAllHostnameVerifier",
        interfaces=["org.apache.http.conn.ssl.X509HostnameVerifier"],
    )
    allow_all.method("<init>", abstract=True)

    browser_compat = app.new_class(
        "org.apache.http.conn.ssl.BrowserCompatHostnameVerifier",
        interfaces=["org.apache.http.conn.ssl.X509HostnameVerifier"],
    )
    browser_compat.method("<init>", abstract=True)

    strict = app.new_class(
        "org.apache.http.conn.ssl.StrictHostnameVerifier",
        interfaces=["org.apache.http.conn.ssl.X509HostnameVerifier"],
    )
    strict.method("<init>", abstract=True)

    ssl_factory = app.new_class("org.apache.http.conn.ssl.SSLSocketFactory")
    ssl_factory.field("ALLOW_ALL_HOSTNAME_VERIFIER",
                      "org.apache.http.conn.ssl.X509HostnameVerifier", static=True)
    ssl_factory.field("BROWSER_COMPATIBLE_HOSTNAME_VERIFIER",
                      "org.apache.http.conn.ssl.X509HostnameVerifier", static=True)
    ssl_factory.field("STRICT_HOSTNAME_VERIFIER",
                      "org.apache.http.conn.ssl.X509HostnameVerifier", static=True)
    ssl_factory.method("<init>", abstract=True)
    _abstract(ssl_factory, "setHostnameVerifier",
              params=["org.apache.http.conn.ssl.X509HostnameVerifier"])

    https_conn = app.new_class("javax.net.ssl.HttpsURLConnection")
    _abstract(https_conn, "setHostnameVerifier", params=["javax.net.ssl.HostnameVerifier"])
    https_conn.method("setDefaultHostnameVerifier",
                      params=["javax.net.ssl.HostnameVerifier"], static=True, abstract=True)

    # --- telephony -------------------------------------------------------
    sms = app.new_class("android.telephony.SmsManager")
    sms.method("getDefault", returns="android.telephony.SmsManager",
               static=True, abstract=True)
    _abstract(sms, "sendTextMessage",
              params=["java.lang.String", "java.lang.String", "java.lang.String",
                      "android.app.PendingIntent", "android.app.PendingIntent"])
    app.new_class("android.app.PendingIntent")

    # --- android core ------------------------------------------------------
    context = app.new_class("android.content.Context")
    _abstract(context, "startActivity", params=["android.content.Intent"])
    _abstract(context, "startService", params=["android.content.Intent"],
              returns="android.content.ComponentName")
    _abstract(context, "stopService", params=["android.content.Intent"], returns="boolean")
    _abstract(context, "bindService",
              params=["android.content.Intent", "android.content.ServiceConnection", "int"],
              returns="boolean")
    _abstract(context, "sendBroadcast", params=["android.content.Intent"])
    _abstract(context, "sendOrderedBroadcast",
              params=["android.content.Intent", "java.lang.String"])
    _abstract(context, "getApplicationContext", returns="android.content.Context")
    app.new_class("android.content.ComponentName")
    app.new_interface("android.content.ServiceConnection")

    wrapper = app.new_class("android.content.ContextWrapper",
                            superclass="android.content.Context")
    wrapper.method("<init>", params=["android.content.Context"], abstract=True)

    intent = app.new_class(INTENT_CLASS)
    intent.method("<init>", abstract=True)
    intent.method("<init>", params=["java.lang.String"], abstract=True)
    intent.method("<init>", params=["android.content.Context", "java.lang.Class"],
                  abstract=True)
    _abstract(intent, "setAction", params=["java.lang.String"],
              returns="android.content.Intent")
    _abstract(intent, "setClass", params=["android.content.Context", "java.lang.Class"],
              returns="android.content.Intent")
    _abstract(intent, "setClassName", params=["java.lang.String", "java.lang.String"],
              returns="android.content.Intent")
    _abstract(intent, "putExtra", params=["java.lang.String", "java.lang.String"],
              returns="android.content.Intent")
    _abstract(intent, "getStringExtra", params=["java.lang.String"],
              returns="java.lang.String")
    _abstract(intent, "getAction", returns="java.lang.String")
    app.new_class("android.os.Bundle")

    activity = app.new_class("android.app.Activity",
                             superclass="android.content.ContextWrapper")
    for handler in LIFECYCLE_HANDLERS["android.app.Activity"]:
        params = ["android.os.Bundle"] if handler == "onCreate" else []
        if handler == "onNewIntent":
            params = ["android.content.Intent"]
        if handler == "onActivityResult":
            params = ["int", "int", "android.content.Intent"]
        activity.method(handler, params=params, abstract=True)
    _abstract(activity, "findViewById", params=["int"], returns="android.view.View")
    _abstract(activity, "setContentView", params=["int"])
    _abstract(activity, "getIntent", returns="android.content.Intent")

    service = app.new_class("android.app.Service",
                            superclass="android.content.ContextWrapper")
    service.method("onCreate", abstract=True)
    service.method("onStartCommand",
                   params=["android.content.Intent", "int", "int"], returns="int",
                   abstract=True)
    service.method("onStart", params=["android.content.Intent", "int"], abstract=True)
    service.method("onBind", params=["android.content.Intent"],
                   returns="android.os.IBinder", abstract=True)
    service.method("onUnbind", params=["android.content.Intent"], returns="boolean",
                   abstract=True)
    service.method("onDestroy", abstract=True)
    app.new_class("android.os.IBinder")

    receiver = app.new_class("android.content.BroadcastReceiver")
    receiver.method("<init>", abstract=True)
    receiver.method("onReceive",
                    params=["android.content.Context", "android.content.Intent"],
                    abstract=True)

    provider = app.new_class("android.content.ContentProvider")
    provider.method("<init>", abstract=True)
    provider.method("onCreate", returns="boolean", abstract=True)

    application = app.new_class("android.app.Application",
                                superclass="android.content.ContextWrapper")
    application.method("onCreate", abstract=True)
    application.method("onTerminate", abstract=True)

    # --- android.os async ---------------------------------------------------
    async_task = app.new_class("android.os.AsyncTask")
    async_task.method("<init>", abstract=True)
    _abstract(async_task, "execute", params=["java.lang.Object[]"],
              returns="android.os.AsyncTask")
    _abstract(async_task, "doInBackground", params=["java.lang.Object[]"],
              returns="java.lang.Object")
    _abstract(async_task, "onPostExecute", params=["java.lang.Object"])
    _abstract(async_task, "onPreExecute")

    handler_cls = app.new_class("android.os.Handler")
    handler_cls.method("<init>", abstract=True)
    _abstract(handler_cls, "post", params=["java.lang.Runnable"], returns="boolean")
    _abstract(handler_cls, "postDelayed", params=["java.lang.Runnable", "long"],
              returns="boolean")

    # --- android.view / widgets ----------------------------------------------
    view = app.new_class("android.view.View")
    view.method("<init>", params=["android.content.Context"], abstract=True)
    _abstract(view, "setOnClickListener", params=["android.view.View$OnClickListener"])
    _abstract(view, "setOnLongClickListener",
              params=["android.view.View$OnLongClickListener"])
    _abstract(view, "setOnTouchListener", params=["android.view.View$OnTouchListener"])

    onclick = app.new_interface("android.view.View$OnClickListener")
    _abstract(onclick, "onClick", params=["android.view.View"])
    onlongclick = app.new_interface("android.view.View$OnLongClickListener")
    _abstract(onlongclick, "onLongClick", params=["android.view.View"], returns="boolean")
    ontouch = app.new_interface("android.view.View$OnTouchListener")
    _abstract(ontouch, "onTouch",
              params=["android.view.View", "android.view.MotionEvent"], returns="boolean")
    app.new_class("android.view.MotionEvent")
    button = app.new_class("android.widget.Button", superclass="android.view.View")
    button.method("<init>", params=["android.content.Context"], abstract=True)

    text_utils = app.new_class("android.text.TextUtils")
    text_utils.method("isEmpty", params=["java.lang.CharSequence"], returns="boolean",
                      static=True, abstract=True)
    app.new_class("java.lang.CharSequence")

    log = app.new_class("android.util.Log")
    for level in ("v", "d", "i", "w", "e"):
        log.method(level, params=["java.lang.String", "java.lang.String"], returns="int",
                   static=True, abstract=True)

    pool = app.build()
    for cls in pool:
        cls.is_framework = True
    return pool


#: A module-level singleton: the framework never changes between apps.
_FRAMEWORK_POOL: ClassPool | None = None


def framework_pool() -> ClassPool:
    """The shared framework pool (built once, reused by every Apk)."""
    global _FRAMEWORK_POOL
    if _FRAMEWORK_POOL is None:
        _FRAMEWORK_POOL = build_framework_pool()
    return _FRAMEWORK_POOL


def component_kind_of(pool: ClassPool, class_name: str) -> str | None:
    """Which component base class (if any) *class_name* descends from."""
    for base in LIFECYCLE_HANDLERS:
        if base == class_name or base in pool.superclass_chain(class_name):
            return base
    return None


def is_lifecycle_handler(pool: ClassPool, sig: MethodSignature) -> bool:
    """True when *sig* is a lifecycle handler of a component subclass."""
    base = component_kind_of(pool, sig.class_name)
    if base is None:
        return False
    return sig.name in LIFECYCLE_HANDLERS[base]
