"""Unit tests for the service job queue: lifecycle, dedup, retention."""

import threading

import pytest

from repro.service.jobs import (
    CANCEL_CONFLICT,
    CANCEL_DONE,
    CANCEL_PENDING,
    CANCEL_TERMINAL,
    CANCELLED,
    CANCELLING,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
)
from repro.workload.generator import AppSpec


def _spec(name="com.svc.app"):
    return AppSpec(package=name)


class TestLifecycle:
    def test_submit_queues_with_timestamps(self):
        queue = JobQueue()
        job, is_primary = queue.submit(_spec(), key="k1", lane="main")
        assert is_primary
        assert job.state == QUEUED
        assert job.submitted_at > 0
        assert job.started_at is None and job.finished_at is None
        assert job.wait_seconds is None
        assert not job.terminal

    def test_running_then_done_with_result(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1")
        queue.mark_running(job.id)
        assert queue.get(job.id).state == RUNNING
        assert queue.get(job.id).started_at is not None

        queue.finish(job.id, result={"package": "com.svc.app"})
        done = queue.get(job.id)
        assert done.state == DONE and done.terminal
        assert done.result == {"package": "com.svc.app"}
        assert done.finished_at >= done.started_at
        assert done.wait_seconds >= 0.0

    def test_failure_records_error(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1")
        queue.finish(job.id, result=None, error="ValueError: boom")
        failed = queue.get(job.id)
        assert failed.state == FAILED
        assert failed.error == "ValueError: boom"

    def test_wait_blocks_until_terminal(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1")
        finisher = threading.Timer(0.02, queue.finish, args=(job.id, {"ok": 1}))
        finisher.start()
        done = queue.wait(job.id, timeout=5.0)
        assert done.state == DONE

    def test_wait_times_out_and_rejects_unknown(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1")
        with pytest.raises(TimeoutError):
            queue.wait(job.id, timeout=0.01)
        with pytest.raises(KeyError):
            queue.wait("job-999999", timeout=0.01)

    def test_snapshot_is_json_shaped(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1", lane="fast", warm=True)
        snapshot = queue.snapshot(job.id)
        assert snapshot["id"] == job.id
        assert snapshot["lane"] == "fast" and snapshot["warm"] is True
        assert snapshot["state"] == QUEUED
        assert queue.snapshot("nope") is None


class TestDedup:
    def test_same_key_coalesces_while_in_flight(self):
        queue = JobQueue()
        primary, is_primary = queue.submit(_spec(), key="sha1")
        follower, follower_primary = queue.submit(_spec(), key="sha1")
        assert is_primary and not follower_primary
        assert follower.coalesced_into == primary.id
        assert queue.dedup_hits == 1

        queue.mark_running(primary.id)
        assert queue.get(follower.id).state == RUNNING

        queue.finish(primary.id, result={"payload": 7})
        assert queue.get(primary.id).result == {"payload": 7}
        assert queue.get(follower.id).result == {"payload": 7}
        assert queue.get(follower.id).state == DONE

    def test_follower_submitted_mid_run_mirrors_running(self):
        queue = JobQueue()
        primary, _ = queue.submit(_spec(), key="sha1")
        queue.mark_running(primary.id)
        follower, is_primary = queue.submit(_spec(), key="sha1")
        assert not is_primary
        assert follower.state == RUNNING and follower.started_at is not None

    def test_follower_inherits_primary_lane(self):
        queue = JobQueue()
        queue.submit(_spec(), key="sha1", lane="fast", warm=True)
        follower, _ = queue.submit(_spec(), key="sha1", lane="main")
        assert follower.lane == "fast" and follower.warm

    def test_distinct_keys_do_not_coalesce(self):
        queue = JobQueue()
        _, first_primary = queue.submit(_spec(), key="sha1")
        _, second_primary = queue.submit(_spec(), key="sha2")
        assert first_primary and second_primary
        assert queue.dedup_hits == 0

    def test_resubmit_after_completion_starts_fresh(self):
        queue = JobQueue()
        first, _ = queue.submit(_spec(), key="sha1")
        queue.finish(first.id, result={"run": 1})
        second, is_primary = queue.submit(_spec(), key="sha1")
        assert is_primary
        assert second.coalesced_into is None

    def test_alias_keys_coalesce_across_key_flip(self):
        # Cold-start race: the first submission runs under the
        # spec-fingerprint surrogate; a duplicate that resolves to the
        # learned disassembly sha must still find it via the alias.
        queue = JobQueue()
        primary, _ = queue.submit(_spec(), key="spec:fp1",
                                  aliases=("spec:fp1",))
        follower, is_primary = queue.submit(
            _spec(), key="sha1", aliases=("sha1", "spec:fp1")
        )
        assert not is_primary
        assert follower.coalesced_into == primary.id

        queue.finish(primary.id, result={"ok": 1})
        assert queue.get(follower.id).state == DONE
        # Every alias was released: fresh submissions are primaries again.
        _, sha_primary = queue.submit(_spec(), key="sha1",
                                      aliases=("sha1", "spec:fp1"))
        assert sha_primary

    def test_finish_returns_all_members(self):
        queue = JobQueue()
        primary, _ = queue.submit(_spec(), key="k1")
        follower, _ = queue.submit(_spec(), key="k1")
        members = queue.finish(primary.id, result={})
        assert {m.id for m in members} == {primary.id, follower.id}
        assert queue.finish(primary.id, result={}) == []  # already terminal

    def test_failure_propagates_to_followers(self):
        queue = JobQueue()
        primary, _ = queue.submit(_spec(), key="sha1")
        follower, _ = queue.submit(_spec(), key="sha1")
        queue.finish(primary.id, error="RuntimeError: died")
        assert queue.get(follower.id).state == FAILED
        assert queue.get(follower.id).error == "RuntimeError: died"


class TestRetention:
    def test_finished_jobs_evicted_oldest_first(self):
        queue = JobQueue(max_finished=2)
        ids = []
        for i in range(4):
            job, _ = queue.submit(_spec(f"com.svc.app{i}"), key=f"k{i}")
            queue.finish(job.id, result={"i": i})
            ids.append(job.id)
        assert queue.get(ids[0]) is None and queue.get(ids[1]) is None
        assert queue.get(ids[2]) is not None and queue.get(ids[3]) is not None

    def test_active_jobs_never_evicted(self):
        queue = JobQueue(max_finished=1)
        active, _ = queue.submit(_spec("com.svc.active"), key="ka")
        for i in range(3):
            job, _ = queue.submit(_spec(f"com.svc.app{i}"), key=f"k{i}")
            queue.finish(job.id, result={})
        assert queue.get(active.id) is not None
        assert queue.counts()["by_state"][QUEUED] == 1

    def test_counts_shape(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1")
        queue.submit(_spec(), key="k1")
        counts = queue.counts()
        assert counts["by_state"][QUEUED] == 2
        assert counts["in_flight_keys"] == 1
        assert counts["dedup_hits"] == 1
        queue.finish(job.id, result={})
        counts = queue.counts()
        assert counts["by_state"][DONE] == 2
        assert counts["in_flight_keys"] == 0

    def test_rejects_nonpositive_retention(self):
        with pytest.raises(ValueError):
            JobQueue(max_finished=0)


class TestCancellation:
    def test_queued_primary_cancels_immediately(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1")
        cancelled, disposition = queue.cancel(job.id)
        assert disposition == CANCEL_DONE
        assert cancelled.state == CANCELLED and cancelled.terminal
        assert cancelled.error == "cancelled by client"
        assert cancelled.result is None
        assert queue.counts()["in_flight_keys"] == 0
        # wait() wakes immediately on the terminal state.
        assert queue.wait(job.id, timeout=1).state == CANCELLED

    def test_unknown_and_terminal_dispositions(self):
        queue = JobQueue()
        assert queue.cancel("job-999999") == (None, "unknown")
        job, _ = queue.submit(_spec(), key="k1")
        queue.finish(job.id, result={})
        done, disposition = queue.cancel(job.id)
        assert disposition == CANCEL_TERMINAL
        assert done.state == DONE  # untouched

    def test_running_primary_becomes_cancelling_then_cancelled(self):
        queue = JobQueue()
        job, _ = queue.submit(_spec(), key="k1")
        queue.mark_running(job.id)
        pending, disposition = queue.cancel(job.id)
        assert disposition == CANCEL_PENDING
        assert pending.state == CANCELLING and not pending.terminal
        # The key is released: a duplicate becomes a fresh primary.
        fresh, is_primary = queue.submit(_spec(), key="k1")
        assert is_primary and fresh.coalesced_into is None
        # Worker completes: the result is discarded, state is cancelled.
        members = queue.finish(job.id, result={"x": 1})
        assert [m.id for m in members] == [job.id]
        final = queue.get(job.id)
        assert final.state == CANCELLED and final.terminal
        assert final.result is None
        assert final.error == "cancelled by client"
        # Re-cancelling a cancelling job stays idempotent.
        assert queue.cancel(fresh.id)[1] == CANCEL_DONE

    def test_primary_with_followers_refuses_cancel(self):
        queue = JobQueue()
        primary, _ = queue.submit(_spec(), key="k1")
        follower, is_primary = queue.submit(_spec(), key="k1")
        assert not is_primary
        job, disposition = queue.cancel(primary.id)
        assert disposition == CANCEL_CONFLICT
        assert job.state == QUEUED  # untouched
        # The shared analysis still completes everyone.
        members = queue.finish(primary.id, result={"ok": True})
        assert {m.id for m in members} == {primary.id, follower.id}
        assert all(m.state == DONE for m in members)

    def test_follower_detaches_and_cancels_alone(self):
        queue = JobQueue()
        primary, _ = queue.submit(_spec(), key="k1")
        follower, _ = queue.submit(_spec(), key="k1")
        cancelled, disposition = queue.cancel(follower.id)
        assert disposition == CANCEL_DONE
        assert cancelled.state == CANCELLED
        # After detaching, the primary cancels cleanly too (no conflict).
        job, disposition = queue.cancel(primary.id)
        assert disposition == CANCEL_DONE and job.state == CANCELLED

    def test_cancelled_jobs_count_and_are_retained(self):
        queue = JobQueue(max_finished=2)
        cancelled_ids = []
        for i in range(3):
            job, _ = queue.submit(_spec(f"com.svc.app{i}"), key=f"k{i}")
            queue.cancel(job.id)
            cancelled_ids.append(job.id)
        assert queue.get(cancelled_ids[0]) is None  # evicted by retention
        counts = queue.counts()["by_state"]
        assert counts[CANCELLED] == 2
