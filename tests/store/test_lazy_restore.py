"""Tests for zero-copy lazy restores (the v3 binary shard path).

Covers the laziness contract end to end: a fully binary warm entry
restores as a :class:`LazyTokenIndex` that (1) answers every needle
shape identically to a fresh fold, (2) decodes only the groups a query
touches — strictly fewer bytes than full materialization, (3) survives
LRU eviction and re-faults correctly, (4) self-heals corrupt shard
sections from the live disassembly, and (5) interoperates with legacy
v2 JSON stores through in-place migration, with ``store verify``
passing on v2, v3 and mixed stores throughout.
"""

import pytest

from repro.search.backends.indexed import TokenIndex, _DESCRIPTOR_RE
from repro.search.index import BytecodeSearcher
from repro.store import ArtifactStore, store_key
from repro.store.lazy import LazyTokenIndex
from repro.workload.generator import AppSpec, LibrarySpec, generate_app

#: Shared library specs: each package prefix becomes its own shard
#: group, so the generated app restores as a genuinely multi-group
#: manifest.
_LIBS = tuple(
    LibrarySpec(package=f"org.lazylib{i}.sdk", seed=40 + i, classes=3)
    for i in range(5)
)


def _build_apk(seed=1):
    return generate_app(
        AppSpec(package="com.lazyhost.app", seed=seed, libraries=_LIBS)
    ).apk


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _warm_lazy(store, seed=1):
    """Publish the app and return a lazily restored index."""
    apk = _build_apk(seed)
    store.save_index(
        apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
    )
    restored = store.load_index(_build_apk(seed).disassembly)
    assert isinstance(restored, LazyTokenIndex)
    return restored


def _sample_needles(fresh):
    """One needle per shape class the index serves, from live vocab."""
    descriptor = next(
        t for t in fresh.vocab if _DESCRIPTOR_RE.fullmatch(t)
    )
    signature = next(t for t in fresh.vocab if ";." in t and ":" in t)
    return [
        fresh.vocab[0],              # exact token lookup
        descriptor,                  # containment-map lookup
        signature,                   # containment + string scan
        signature[2:-2],             # mid-token substring: blob scan
        "lazylib2",                  # unknown shape: full vocab scan
        "Lcom/definitely/absent;",   # no group can answer
    ]


def _single_group_needle(fresh):
    """A descriptor only one library group's classes can answer."""
    return next(
        t for t in fresh.vocab
        if _DESCRIPTOR_RE.fullmatch(t) and "lazylib3" in t
    )


class TestLazyRestoreShape:
    def test_full_binary_entry_restores_lazily(self, store):
        restored = _warm_lazy(store)
        assert restored.lazy and restored.restored
        assert restored.build_seconds == 0.0
        assert restored.groups_total >= len(_LIBS)
        assert restored.materialized_groups == 0
        assert store.stats.lazy_restores == 1

    def test_json_store_never_serves_lazy(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", shard_format="json")
        apk = _build_apk()
        store.save_index(
            apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
        )
        restored = store.load_index(_build_apk().disassembly)
        assert restored is not None
        assert not getattr(restored, "lazy", False)
        assert store.stats.lazy_restores == 0

    def test_unknown_shard_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shard format"):
            ArtifactStore(tmp_path / "store", shard_format="msgpack")


class TestQueryParity:
    def test_every_needle_shape_matches_fresh_fold(self, store):
        restored = _warm_lazy(store)
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        for needle in _sample_needles(fresh):
            assert restored.token_lines(needle) == \
                fresh.token_lines(needle), needle

    def test_partial_then_full_materialization_parity(self, store):
        # Query one group first, then materialize everything: the full
        # structures must equal a fresh fold structure for structure.
        restored = _warm_lazy(store)
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        needle = _single_group_needle(fresh)
        assert restored.token_lines(needle) == fresh.token_lines(needle)
        assert 0 < restored.materialized_groups < restored.groups_total

        full = restored.materialize()
        assert full.vocab == fresh.vocab
        assert full.postings == fresh.postings
        assert full.exact == fresh.exact
        assert full.containing == fresh.containing
        assert full._string_ids == fresh._string_ids
        assert full.posting_entries == fresh.posting_entries
        # Structure access keeps answering through the composed index.
        assert restored.token_lines(needle) == fresh.token_lines(needle)

    def test_subset_query_decodes_strictly_fewer_bytes(self, store):
        # The acceptance bar: a warm session touching a strict subset
        # of groups decodes strictly fewer bytes than a full restore.
        restored = _warm_lazy(store)
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        restored.token_lines(_single_group_needle(fresh))
        subset_bytes = restored.bytes_decoded
        assert 0 < subset_bytes < restored.bytes_mapped

        restored.materialize()
        assert subset_bytes < restored.bytes_decoded

    def test_counters_stay_exact_without_materializing(self, store):
        restored = _warm_lazy(store)
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        # posting_entries is exact from headers (disjoint line ranges);
        # vocab_size is an upper bound until composition dedups.
        assert restored.posting_entries == fresh.posting_entries
        assert restored.vocab_size >= len(fresh.vocab)
        assert restored.materialized_groups == 0


class TestLruEviction:
    def test_eviction_and_refault_stay_correct(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", group_cache=1)
        restored = _warm_lazy(store)
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        one = next(t for t in fresh.vocab
                   if _DESCRIPTOR_RE.fullmatch(t) and "lazylib1" in t)
        two = next(t for t in fresh.vocab
                   if _DESCRIPTOR_RE.fullmatch(t) and "lazylib4" in t)
        for needle in (one, two, one, two):
            assert restored.token_lines(needle) == \
                fresh.token_lines(needle), needle
        # Two distinct groups were touched; with a single cache slot
        # the alternation re-faulted at least one of them.
        assert restored.materialized_groups == 2
        assert store.stats.groups_materialized > 2


class TestSelfHeal:
    def test_corrupt_shard_heals_from_live_disassembly(self, store):
        apk = _build_apk()
        store.save_index(
            apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
        )
        # Flip bytes in the middle of one shard file: the header may
        # still parse, but a section CRC cannot.
        victim = store._shard_path_bin(store._groups(apk.disassembly)[2][1])
        blob = bytearray(victim.read_bytes())
        mid = len(blob) // 2
        for i in range(mid, mid + 16):
            blob[i] ^= 0xFF
        victim.write_bytes(bytes(blob))

        restored = store.load_index(_build_apk().disassembly)
        assert isinstance(restored, LazyTokenIndex)  # stat-only check
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        for needle in _sample_needles(fresh):
            assert restored.token_lines(needle) == \
                fresh.token_lines(needle), needle
        assert restored.patched_groups >= 1
        assert store.stats.shards_patched >= 1
        # The heal republished the shard: the store verifies clean and
        # the next restore is an untouched lazy hit.
        assert all(entry.ok for entry in store.verify())
        again = store.load_index(_build_apk().disassembly)
        again.materialize()
        assert again.patched_groups == 0

    def test_backend_surfaces_lazy_stats(self, store):
        apk = _build_apk()
        store.save_index(
            apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
        )
        searcher = BytecodeSearcher(
            _build_apk().disassembly, backend="indexed", store=store
        )
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        searcher.backend.token_lines(_single_group_needle(fresh))
        described = searcher.backend.describe()
        assert described["index_restored"]
        assert described["index_build_seconds"] == 0.0
        assert 0 < described["materialized_groups"]
        assert 0 < described["bytes_decoded"] < described["bytes_mapped"]


class TestMigration:
    def _seed_v2(self, root, seed=1):
        legacy = ArtifactStore(root, shard_format="json")
        apk = _build_apk(seed)
        legacy.save_index(
            apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
        )
        return legacy

    def test_v2_round_trip_through_migration(self, tmp_path):
        root = tmp_path / "store"
        legacy = self._seed_v2(root)
        assert legacy.describe().legacy_json_shards > 0

        store = ArtifactStore(root)
        result = store.migrate()
        assert result.shards_migrated > 0 and result.shards_failed == 0
        inventory = store.describe()
        assert inventory.legacy_json_shards == 0
        # Same content addresses: the old manifest still resolves, and
        # the restored index now rides the lazy path.
        restored = store.load_index(_build_apk().disassembly)
        assert isinstance(restored, LazyTokenIndex)
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        full = restored.materialize()
        assert full.vocab == fresh.vocab
        assert full.postings == fresh.postings
        assert full.containing == fresh.containing
        assert all(entry.ok for entry in store.verify())

    def test_migrate_is_idempotent(self, tmp_path):
        root = tmp_path / "store"
        self._seed_v2(root)
        store = ArtifactStore(root)
        first = store.migrate()
        second = store.migrate()
        assert first.shards_migrated > 0
        assert second.shards_migrated == 0 and second.shards_failed == 0

    def test_gc_migrates_surviving_legacy_shards(self, tmp_path):
        root = tmp_path / "store"
        self._seed_v2(root)
        store = ArtifactStore(root)
        result = store.gc(max_age_seconds=3600.0)  # nothing is old yet
        assert result.entries_removed == 0
        assert result.shards_migrated > 0
        assert store.describe().legacy_json_shards == 0

    def test_verify_passes_on_v2_v3_and_mixed_stores(self, tmp_path):
        # v2-only store.
        v2_root = tmp_path / "v2"
        self._seed_v2(v2_root)
        assert all(e.ok for e in ArtifactStore(v2_root).verify())
        # Mixed store: a second app published binary alongside.
        mixed = ArtifactStore(v2_root)
        other = generate_app(
            AppSpec(package="com.mixed.app", seed=7, libraries=_LIBS[:2])
        ).apk
        mixed.save_index(
            other.disassembly, TokenIndex.for_disassembly(other.disassembly)
        )
        inventory = mixed.describe()
        assert 0 < inventory.legacy_json_shards < inventory.shards
        assert all(e.ok for e in mixed.verify())
        # v3-only store.
        v3 = ArtifactStore(tmp_path / "v3")
        apk = _build_apk()
        v3.save_index(
            apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
        )
        assert all(e.ok for e in v3.verify())

    def test_mixed_entry_restores_eagerly_not_lazily(self, tmp_path):
        # An entry with any legacy-JSON group falls back to the eager
        # composed restore — correct, just not zero-copy.
        root = tmp_path / "store"
        self._seed_v2(root)
        store = ArtifactStore(root)
        sha = store._groups(_build_apk().disassembly)[0][1]
        store._migrate_shard(store._shard_path_json(sha))
        restored = store.load_index(_build_apk().disassembly)
        assert restored is not None
        assert not getattr(restored, "lazy", False)
        fresh = TokenIndex.for_disassembly(_build_apk().disassembly)
        assert restored.vocab == fresh.vocab


class TestProbeNeverParses:
    def test_probe_is_stat_only_even_on_garbage(self, store):
        # Satellite fix: the advisory probe must never decode shard
        # payloads — a same-size garbage shard still probes "index"
        # (the real load heals it; probes are advisory by contract).
        apk = _build_apk()
        key = store_key(apk.disassembly)
        store.save_index(
            apk.disassembly, TokenIndex.for_disassembly(apk.disassembly)
        )
        victim = store._shard_path_bin(store._groups(apk.disassembly)[0][1])
        victim.write_bytes(b"\x00" * victim.stat().st_size)
        probe = store.probe(key)
        assert probe.level == "index"
        assert probe.shards_present == probe.shards_total


class TestCanonicalBytesCache:
    def test_save_then_verify_serializes_once_per_group(self, store):
        # Satellite fix: shard_key reuses the canonical token bytes
        # cached on the group object instead of re-dumping JSON.
        apk = _build_apk()
        groups = store._groups(apk.disassembly)
        for group, _ in groups:
            assert group.canonical_bytes() is group.canonical_bytes()
        # Hashing again (as verify's replay does) reuses the cache and
        # stays stable.
        from repro.store import shard_key

        for group, sha in groups:
            assert shard_key(group) == sha
