"""Per-app SSG: the paper's stated evolution of the per-sink SSG.

Sec. V-A: "We currently design each SSG corresponding to one unique sink
API call, and we will also provide the per-app SSG in the future";
Sec. VI-D: "we will evolve the current per-sink SSG to per-app SSG ...
no matter how many sinks there are, BackDroid only requires to generate a
partial-app graph once".

This module implements that evolution: one :class:`PerAppSSG` merges the
per-sink graphs, sharing every unit, binding and static track that
overlapping backtracking paths produce.  The merge is a union keyed by
program location (units are interned per ``(method, stmt_index)``), so
the shared partial-app graph is never larger than the sum of the slices
and typically much smaller when sinks share paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.android.apk import Apk
from repro.core.slicer import BackwardSlicer, SinkCallSite
from repro.core.ssg import SSG, SSGUnit
from repro.dex.types import FieldSignature, MethodSignature
from repro.search.engine import CallerResolutionEngine


@dataclass
class PerAppSSG:
    """The merged partial-app slicing graph of one app."""

    package: str
    #: per-sink views (kept: detectors still judge sinks individually).
    slices: dict[str, SSG] = field(default_factory=dict)
    #: interned unit locations shared across slices.
    _locations: set[tuple[MethodSignature, int]] = field(default_factory=set)
    #: methods appearing in any slice.
    methods: set[MethodSignature] = field(default_factory=set)
    #: static tracks shared across slices.
    static_tracks: dict[FieldSignature, list[SSGUnit]] = field(default_factory=dict)
    entry_points: set[MethodSignature] = field(default_factory=set)

    # ------------------------------------------------------------------
    def add_slice(self, site: SinkCallSite, ssg: SSG) -> None:
        self.slices[site.key] = ssg
        for unit in ssg.units():
            self._locations.add((unit.method, unit.stmt_index))
            self.methods.add(unit.method)
        for fieldsig, track in ssg.static_tracks.items():
            self.static_tracks.setdefault(fieldsig, track)
        self.entry_points |= ssg.entry_points

    def slice_for(self, site: SinkCallSite) -> Optional[SSG]:
        return self.slices.get(site.key)

    # ------------------------------------------------------------------
    @property
    def unit_count(self) -> int:
        """Distinct program locations in the merged graph."""
        return len(self._locations)

    @property
    def summed_slice_units(self) -> int:
        """What the per-sink design materialises in total."""
        return sum(len(ssg) for ssg in self.slices.values())

    @property
    def sharing_ratio(self) -> float:
        """How much the merge saves: merged size / summed slice sizes.

        1.0 means no path sharing between sinks; lower is better.
        """
        summed = self.summed_slice_units
        return self.unit_count / summed if summed else 1.0

    def coverage_fraction(self, apk: Apk) -> float:
        """Merged-graph methods as a fraction of all app methods.

        The partial-app graph should stay far below 1.0 — that is the
        whole point versus whole-app graphs.
        """
        total = apk.method_count()
        return len(self.methods) / total if total else 0.0


def build_per_app_ssg(
    apk: Apk,
    sites: list[SinkCallSite],
    engine: Optional[CallerResolutionEngine] = None,
    backend: Optional[str] = None,
) -> PerAppSSG:
    """Slice every sink once and merge into the per-app graph.

    The shared :class:`CallerResolutionEngine` (and thus the search
    command cache) is reused across sinks, so repeated path exploration
    is already amortised at the search layer; the merged graph amortises
    the *storage* as well.  ``backend`` selects the search backend when
    no engine is supplied.
    """
    if engine is None:
        engine = CallerResolutionEngine(apk, backend=backend)
    slicer = BackwardSlicer(apk, engine=engine)
    merged = PerAppSSG(package=apk.package)
    for site in sites:
        merged.add_slice(site, slicer.slice_sink(site))
    return merged
