"""Unit tests for the command-line front end."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_analyze_heyzap_vulnerable_exit_code(self, capsys):
        code = main(["analyze", "heyzap", "--rules", "ssl-verifier"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VULNERABLE" in out

    def test_analyze_palcomp3_open_port(self, capsys):
        code = main(["analyze", "palcomp3", "--rules", "open-port", "--dump-ssg"])
        out = capsys.readouterr().out
        assert "8089" in out
        assert "static track" in out

    def test_analyze_with_hierarchy_fix_flag(self, capsys):
        code = main(["analyze", "lgtv", "--hierarchy-fix"])
        assert code == 0  # no crypto/ssl findings in the LG miniature

    def test_unknown_app_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", "nonexistent"])

    def test_malformed_bench_spec_friendly_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["analyze", "bench:abc"])
        assert "bench:abc" in str(exc_info.value)
        assert "non-negative integer" in str(exc_info.value)

    def test_negative_bench_spec_friendly_error(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["analyze", "bench:-3"])
        assert "must be >= 0" in str(exc_info.value)

    def test_analyze_with_indexed_backend(self, capsys):
        code = main(["analyze", "heyzap", "--rules", "ssl-verifier",
                     "--backend", "indexed"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VULNERABLE" in out
        assert "search backend : indexed" in out


class TestOtherCommands:
    def test_compare(self, capsys):
        code = main(["compare", "heyzap", "--timeout", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "BackDroid" in out and "whole-app" in out

    def test_corpus(self, capsys):
        code = main(["corpus", "--year", "2016", "--count", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "year 2016" in out

    def test_inventory_bench_app(self, capsys):
        code = main(["inventory", "bench:0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "com.bench.app000" in out
        assert "components:" in out


class TestBatch:
    def test_batch_range_of_bench_apps(self, capsys):
        code = main(["batch", "bench:0..3", "--scale", "0.05",
                     "--backend", "indexed", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "com.bench.app000" in out and "com.bench.app002" in out
        assert "backend=indexed" in out
        assert "wall time" in out and "cache rates" in out and "findings" in out

    def test_batch_year_sample(self, capsys):
        code = main(["batch", "--year", "2015", "--count", "2",
                     "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "com.corpus.y2015.app00000" in out

    def test_batch_twenty_apps_one_invocation(self, capsys):
        code = main(["batch", "bench:0..20", "--scale", "0.02",
                     "--backend", "indexed"])
        out = capsys.readouterr().out
        assert code == 0
        assert "20 apps" in out
        assert out.count("com.bench.app") >= 20

    def test_batch_requires_some_apps(self):
        with pytest.raises(SystemExit, match="nothing to analyze"):
            main(["batch"])

    def test_batch_malformed_range(self):
        with pytest.raises(SystemExit, match="range bounds"):
            main(["batch", "bench:1..x"])
        with pytest.raises(SystemExit, match="start < end"):
            main(["batch", "bench:5..5"])

    def test_batch_rejects_bad_workers_and_cache_max(self):
        with pytest.raises(SystemExit, match="--workers"):
            main(["batch", "bench:0..2", "--workers", "0"])
        with pytest.raises(SystemExit, match="--cache-max"):
            main(["batch", "bench:0..2", "--cache-max", "0"])


class TestStore:
    def _batch(self, tmp_path, capsys):
        code = main(["batch", "bench:0..3", "--scale", "0.05",
                     "--backend", "indexed", "--executor", "serial",
                     "--store", str(tmp_path / "s"), "--store-mode", "full"])
        assert code == 0
        return capsys.readouterr().out

    def test_second_batch_run_is_warm(self, tmp_path, capsys):
        cold = self._batch(tmp_path, capsys)
        assert "0 hit(s) / 3 miss(es)" in cold
        warm = self._batch(tmp_path, capsys)
        assert "3 hit(s) / 0 miss(es) (100% warm)" in warm
        assert "[warm]" in warm

    def test_warm_then_stats_then_gc(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        code = main(["store", "warm", "bench:0..2", "--scale", "0.05",
                     "--store", store_dir])
        assert code == 0
        assert "warmed 2/2" in capsys.readouterr().out

        code = main(["store", "stats", "--store", store_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "entries     : 2" in out and "index" in out

        code = main(["store", "gc", "--store", store_dir])
        assert code == 0
        assert "removed 2" in capsys.readouterr().out

        code = main(["store", "stats", "--store", store_dir])
        assert code == 0
        assert "entries     : 0" in capsys.readouterr().out

    def test_warmed_store_restores_indexes_in_batch(self, tmp_path, capsys):
        store_dir = str(tmp_path / "s")
        main(["store", "warm", "bench:0..3", "--scale", "0.05",
              "--store", store_dir])
        capsys.readouterr()
        code = main(["batch", "bench:0..3", "--scale", "0.05",
                     "--backend", "indexed", "--executor", "serial",
                     "--store", store_dir])
        assert code == 0
        assert "3 restored index(es)" in capsys.readouterr().out

    def test_store_actions_require_store_dir(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "stats"])
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "warm", "bench:0..2"])
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "gc"])
