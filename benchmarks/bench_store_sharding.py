"""Cross-app shard dedup — store size and restore cost vs. private stores.

Real corpora embed the same SDKs everywhere (the paper's Table I apps
are dominated by shared library code), so the artifact store shards
every app's token stream and posting lists per class group and keys
each shard by content.  This benchmark generates a corpus of apps that
all embed one large shared library, persists them two ways, and
compares:

* **private stores** — every app saved into its own store root, the
  pre-sharding cost model (no cross-app sharing possible);
* **shared store**  — all apps saved into one root, library shards
  published once and referenced by every manifest.

Acceptance bars (the ISSUE/CI gate):

* on the two-app corpus the shared store is at least **30% smaller**
  than the summed private stores;
* every restored index is **byte-identical** to a fresh build (vocab,
  postings, exact, containment, string ids);
* composing an index from shards is **no slower than folding it from
  the token stream** — warm restores must stay cheaper than cold
  builds (the no-regression bar).

Knobs: ``REPRO_BENCH_SHARD_APPS`` sizes the full corpus (default 6;
the 30% bar is always measured on the first two apps).
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time

from benchmarks.conftest import emit_table, render_table
from repro.search.backends.indexed import TokenIndex
from repro.store import ArtifactStore
from repro.workload.generator import AppSpec, LibrarySpec, generate_app

SHARD_APPS = max(2, int(os.environ.get("REPRO_BENCH_SHARD_APPS", "6")))

#: One big vendored SDK, identical in every app of the corpus — sized
#: like the connectivity/ad SDKs that dominate the paper's Table I
#: apps (the library outweighs each app's own code).
SHARED_LIB = LibrarySpec(
    package="org.megasdk", seed=11, classes=120, methods_per_class=8
)


def _corpus_specs() -> list[AppSpec]:
    return [
        AppSpec(
            package=f"com.dedup.app{index}",
            seed=index,
            filler_classes=12,
            libraries=(SHARED_LIB,),
        )
        for index in range(SHARD_APPS)
    ]


def _fresh_disassembly(spec: AppSpec):
    return generate_app(spec).apk.disassembly


def _store_bytes(store: ArtifactStore) -> int:
    return store.describe().total_bytes


def run_sharding(root: str):
    specs = _corpus_specs()
    disassemblies = [_fresh_disassembly(spec) for spec in specs]

    private_bytes = []
    for index, disassembly in enumerate(disassemblies):
        private = ArtifactStore(os.path.join(root, f"private-{index}"))
        private.save_index(disassembly)
        private_bytes.append(_store_bytes(private))

    shared = ArtifactStore(os.path.join(root, "shared"))
    shared_sizes = []
    for disassembly in disassemblies:
        shared.save_index(disassembly)
        shared_sizes.append(_store_bytes(shared))

    # Restore timing vs. fresh fold, on clean (unmemoized) disassemblies.
    build_times, restore_times = [], []
    for spec in specs:
        cold = _fresh_disassembly(spec)
        started = time.perf_counter()
        TokenIndex(cold)
        build_times.append(time.perf_counter() - started)
        warm = _fresh_disassembly(spec)
        started = time.perf_counter()
        restored = shared.load_index(warm)
        restore_times.append(time.perf_counter() - started)
        fresh = TokenIndex.for_disassembly(warm)
        assert restored is not None and restored.patched_groups == 0
        assert restored.vocab == fresh.vocab
        assert restored.postings == fresh.postings
        assert restored.exact == fresh.exact
        assert restored.containing == fresh.containing
        assert restored._string_ids == fresh._string_ids

    return {
        "private_bytes": private_bytes,
        "shared_sizes": shared_sizes,
        "inventory": shared.describe(),
        "build_times": build_times,
        "restore_times": restore_times,
    }


def test_store_sharding(benchmark):
    with tempfile.TemporaryDirectory(prefix="bdshard-bench-") as root:
        result = benchmark.pedantic(
            run_sharding, args=(root,), rounds=1, iterations=1
        )

    private = result["private_bytes"]
    shared = result["shared_sizes"]
    inventory = result["inventory"]

    # The ISSUE bar: >=30% smaller on a two-app corpus with one shared
    # library, measured against per-app private stores.
    two_app_private = private[0] + private[1]
    two_app_shared = shared[1]
    two_app_reduction = 1.0 - two_app_shared / two_app_private
    assert two_app_reduction >= 0.30, (
        f"two-app store shrank only {two_app_reduction:.1%} "
        f"({two_app_shared} vs {two_app_private} bytes)"
    )

    full_private = sum(private)
    full_shared = shared[-1]
    full_reduction = 1.0 - full_shared / full_private
    assert inventory.dedup_ratio > 1.0
    assert inventory.bytes_saved > 0

    # No warm-restore regression: composing shards must not cost more
    # than folding the index from scratch.
    build_median = statistics.median(result["build_times"])
    restore_median = statistics.median(result["restore_times"])
    assert restore_median <= build_median, (
        f"shard-composed restore ({restore_median * 1e3:.2f} ms) slower "
        f"than a fresh fold ({build_median * 1e3:.2f} ms)"
    )

    rows = [
        [
            "2 apps",
            f"{two_app_private}",
            f"{two_app_shared}",
            f"{two_app_reduction:.1%}",
        ],
        [
            f"{SHARD_APPS} apps",
            f"{full_private}",
            f"{full_shared}",
            f"{full_reduction:.1%}",
        ],
    ]
    table = render_table(
        "Store bytes: private per-app roots vs one shared (deduped) root",
        ["corpus", "private B", "shared B", "reduction"],
        rows,
    )
    summary = [
        table,
        "",
        f"unique shards      : {inventory.shards} "
        f"({inventory.shard_refs} references)",
        f"dedup ratio        : {inventory.dedup_ratio:.2f}x "
        f"({inventory.bytes_saved} bytes saved)",
        f"fresh fold median  : {build_median * 1e3:.2f} ms",
        f"shard restore      : {restore_median * 1e3:.2f} ms "
        "(byte-identical to the fresh build)",
    ]
    emit_table("store_sharding", "\n".join(summary))
