"""Sink-parameter security rules (the Sec. VI evaluation problems).

Two common and serious sink-based problems, exactly as evaluated in the
paper, plus the additional sink families of Sec. VI-D:

* ``crypto-ecb`` — ``Cipher.getInstance(transformation)`` with the ECB
  mode, either explicitly (``"AES/ECB/PKCS5Padding"``) or implicitly
  (bare ``"AES"``/``"DES"`` default to ECB on Android);
* ``ssl-verifier`` — ``setHostnameVerifier`` with the insecure
  ``ALLOW_ALL_HOSTNAME_VERIFIER`` (or an allow-all verifier object,
  including app-defined verifiers whose ``verify`` returns ``true``);
* ``open-port`` / ``sms-send`` — informational findings used by the
  extended benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.api_models import ALLOW_ALL_VERIFIER
from repro.core.values import ConstFact, Fact, MultiFact, NewObjFact
from repro.dex.hierarchy import ClassPool
from repro.dex.instructions import IntConstant, ReturnStmt
from repro.dex.types import MethodSignature

#: Ciphers whose bare names default to ECB mode on Android.
_ECB_DEFAULT_ALGORITHMS = {"AES", "DES", "DESEDE", "BLOWFISH", "RC2"}

#: Weak algorithms flagged regardless of mode.
_WEAK_ALGORITHMS = {"DES", "DESEDE", "RC2", "RC4"}


@dataclass(frozen=True)
class Finding:
    """One confirmed security finding at a sink call."""

    rule: str
    method: MethodSignature
    stmt_index: int
    value_repr: str
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.rule}] {self.method.to_soot()}[{self.stmt_index}] "
            f"value={self.value_repr}: {self.detail}"
        )


class Detector:
    """Base class: judges the resolved facts of one sink call."""

    rule: str = ""

    def evaluate(
        self,
        facts: dict[int, Fact],
        method: MethodSignature,
        stmt_index: int,
        pool: ClassPool,
    ) -> Optional[Finding]:
        raise NotImplementedError


def _fact_options(fact: Fact) -> list[Fact]:
    return list(fact.options) if isinstance(fact, MultiFact) else [fact]


class CryptoEcbDetector(Detector):
    """Flags ECB-mode (and weak-algorithm) cipher transformations."""

    rule = "crypto-ecb"

    @staticmethod
    def is_insecure_transformation(transformation: str) -> bool:
        text = transformation.strip().upper()
        if not text:
            return False
        parts = text.split("/")
        algorithm = parts[0]
        if len(parts) >= 2:
            return parts[1] == "ECB" or algorithm in _WEAK_ALGORITHMS
        # Bare algorithm: Android defaults the mode to ECB.
        return algorithm in _ECB_DEFAULT_ALGORITHMS or algorithm in _WEAK_ALGORITHMS

    def evaluate(self, facts, method, stmt_index, pool):
        fact = facts.get(0)
        if fact is None:
            return None
        insecure = [
            s for s in fact.possible_strings() if self.is_insecure_transformation(s)
        ]
        if not insecure:
            return None
        return Finding(
            rule=self.rule,
            method=method,
            stmt_index=stmt_index,
            value_repr=str(fact),
            detail=f"ECB/weak cipher transformation {insecure!r}",
        )


class SslVerifierDetector(Detector):
    """Flags allow-all hostname verification."""

    rule = "ssl-verifier"

    @staticmethod
    def _is_allow_all_class(pool: ClassPool, class_name: str) -> bool:
        if class_name == "org.apache.http.conn.ssl.AllowAllHostnameVerifier":
            return True
        cls = pool.get(class_name)
        if cls is None or cls.is_framework:
            return False
        if not pool.is_subtype_of(class_name, "javax.net.ssl.HostnameVerifier"):
            return False
        verify = cls.find_method("verify")
        if verify is None or not verify.has_body:
            return False
        # An app verifier that always returns true is allow-all.
        returns = [s for s in verify.body if isinstance(s, ReturnStmt)]
        return bool(returns) and all(
            isinstance(r.value, IntConstant) and r.value.value == 1 for r in returns
        )

    def evaluate(self, facts, method, stmt_index, pool):
        fact = facts.get(0)
        if fact is None:
            return None
        for option in _fact_options(fact):
            if isinstance(option, ConstFact) and option.value == ALLOW_ALL_VERIFIER:
                return Finding(
                    rule=self.rule,
                    method=method,
                    stmt_index=stmt_index,
                    value_repr=str(fact),
                    detail="ALLOW_ALL_HOSTNAME_VERIFIER passed to setHostnameVerifier",
                )
            if isinstance(option, NewObjFact) and self._is_allow_all_class(
                pool, option.class_name
            ):
                return Finding(
                    rule=self.rule,
                    method=method,
                    stmt_index=stmt_index,
                    value_repr=str(fact),
                    detail=f"allow-all verifier object {option.class_name}",
                )
        return None


class OpenPortDetector(Detector):
    """Reports open-port sinks with their resolved addresses (Sec. VI-D)."""

    rule = "open-port"

    def evaluate(self, facts, method, stmt_index, pool):
        fact = facts.get(0)
        if fact is None:
            return None
        return Finding(
            rule=self.rule,
            method=method,
            stmt_index=stmt_index,
            value_repr=str(fact),
            detail="server socket opened (reachable from entry points)",
        )


class SmsSendDetector(Detector):
    """Reports reachable SMS-send sinks with resolved destinations."""

    rule = "sms-send"

    def evaluate(self, facts, method, stmt_index, pool):
        if not facts:
            return None
        rendered = ", ".join(f"arg{k}={v}" for k, v in sorted(facts.items()))
        return Finding(
            rule=self.rule,
            method=method,
            stmt_index=stmt_index,
            value_repr=rendered,
            detail="sendTextMessage reachable from entry points",
        )


#: rule id -> detector instance.
DETECTORS: dict[str, Detector] = {
    detector.rule: detector
    for detector in (
        CryptoEcbDetector(),
        SslVerifierDetector(),
        OpenPortDetector(),
        SmsSendDetector(),
    )
}
