"""Fault injection: SIGKILL a node mid-cold-job; the cluster recovers.

Real processes, real signals: the harness runs ``backdroid serve``
subprocesses over one shared store, the stall knob
(``BACKDROID_COLD_STALL_SECONDS``) pins a cold job on the victim long
enough to die with it, and the assertions check the full recovery
story — lease reclaim with a bumped fencing token, job re-dispatch to
a peer under the *same* trace, and result parity with an undisturbed
run.
"""

import time

import pytest

from repro.core import BackDroidConfig, analyze_spec
from repro.service import ServiceClient
from repro.store import ArtifactStore
from repro.workload.corpus import benchmark_app_spec

SCALE = 0.05
LEASE_TTL = 1.5

#: Result fields legitimately differing between runs/nodes/lanes.
VOLATILE = {
    "seconds",
    "index_build_seconds",
    "store_hit",
    "index_restored",
    "shards_patched",
    "materialized_groups",
    "bytes_mapped",
    "bytes_decoded",
    "lane",
    "node_id",
}


def sanitized(result):
    return {k: v for k, v in result.items() if k not in VOLATILE}


def wait_for(predicate, timeout, interval=0.1):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return None


@pytest.fixture
def cluster(cluster_factory, tmp_path):
    """Two nodes, fast failure detection, n1's cold lane stalled."""
    return cluster_factory(
        nodes=2,
        store_dir=tmp_path / "store",
        lease_ttl=LEASE_TTL,
        heartbeat_interval=0.25,
        env_overrides={"n1": {"BACKDROID_COLD_STALL_SECONDS": "45"}},
    )


def test_sigkill_mid_cold_job_reclaims_under_the_same_trace(
    cluster, tmp_path
):
    front = cluster.front_end(monitor_interval=0.2)
    client = ServiceClient(*front.address, timeout=15.0)
    store = ArtifactStore(tmp_path / "store")

    # n1 starts first and deterministically owns the specmap lease.
    lease = wait_for(lambda: store.read_lease("specmap"), timeout=10.0)
    assert lease is not None and lease["owner"] == "n1"
    token_before = lease["token"]

    submitted = client.submit({"app": "bench:3", "scale": SCALE,
                               "node": "n1"})
    assert submitted["node_id"] == "n1"
    assert submitted["attempts"] == 1
    trace_id = submitted["trace_id"]
    assert trace_id

    # Let the stalled cold analysis actually start on n1, then murder
    # the node (SIGKILL: no drain, no goodbye heartbeat).
    time.sleep(0.5)
    killed_at = time.time()
    cluster.kill_node("n1")

    done = wait_for(
        lambda: (
            lambda s: s if s and s["state"] == "done" else None
        )(client.job(submitted["id"])),
        timeout=30.0,
    )
    assert done is not None, "job never completed after failover"

    # Reclaimed onto the peer, still one logical job, one trace.
    assert done["node_id"] == "n2"
    assert done["attempts"] == 2
    assert done["trace_id"] == trace_id
    stats = client.stats()
    assert stats["routing"]["reclaims"] == 1

    # The reclaim happened within one lease TTL (plus a detection
    # grace: heartbeat age check + monitor interval).
    reclaimed = wait_for(
        lambda: client.stats()["routing"]["reclaims"] >= 1, timeout=1.0
    )
    assert reclaimed
    assert time.time() - killed_at < 30.0  # sanity on the wait above
    detect_budget = LEASE_TTL + 1.0
    # done["attempts"] flipped to 2 at re-dispatch; completion includes
    # the peer's cold analysis, so bound the *reclaim*, not the finish:
    # the router logged it as soon as the sweep fired.
    assert done["submitted_at"] is not None
    finished_after_kill = done["finished_at"] - killed_at
    cold_runtime = done["finished_at"] - done["started_at"]
    assert finished_after_kill - cold_runtime < detect_budget

    # The lease expired with n1 and was reclaimed by n2 under a larger
    # fencing token — the old generation is definitively fenced off.
    lease_after = wait_for(
        lambda: (
            lambda l: l
            if l and l["owner"] == "n2" and l["token"] > token_before
            else None
        )(store.read_lease("specmap")),
        timeout=LEASE_TTL + 3.0,
    )
    assert lease_after is not None

    # Result parity with an undisturbed local run of the same spec.
    reference = analyze_spec(
        benchmark_app_spec(3, scale=SCALE),
        BackDroidConfig(search_backend="indexed"),
    )
    assert reference.ok
    from repro.core.batch import outcome_payload

    assert sanitized(done["result"]) == sanitized(
        outcome_payload(reference)
    )

    # The dead node's gossip manifest ages out: after the TTL it is
    # ignored by routing and flagged stale on inspection.
    stale = wait_for(
        lambda: any(
            n["node_id"] == "n1" and n["stale"]
            for n in client.stats()["nodes"]
        ),
        timeout=LEASE_TTL + 2.0,
    )
    assert stale
    live_ids = [
        n["node_id"] for n in client.stats()["nodes"] if not n["stale"]
    ]
    assert live_ids == ["n2"]


def test_submissions_keep_flowing_after_node_death(cluster):
    front = cluster.front_end(monitor_interval=0.2)
    client = ServiceClient(*front.address, timeout=15.0)
    cluster.kill_node("n1")
    # Before the TTL elapses the router may still try n1; the dispatch
    # loop must fail over to n2 on the dead socket rather than 503ing.
    submitted = client.submit({"app": "bench:0", "scale": SCALE})
    assert submitted["node_id"] == "n2"
    done = wait_for(
        lambda: (
            lambda s: s if s and s["state"] == "done" else None
        )(client.job(submitted["id"])),
        timeout=30.0,
    )
    assert done is not None
    assert done["result"]["package"] == "com.bench.app000"
