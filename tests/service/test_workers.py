"""Tests for the process-isolated worker substrate (`repro.service.workers`)."""

import os
import signal
import time

import pytest

from repro.core import BackDroidConfig
from repro.core.batch import analyze_spec, outcome_payload
from repro.service.workers import ProcessLane, run_analysis, run_analysis_payload
from repro.workload.corpus import benchmark_app_spec

SCALE = 0.05


def _config(tmp_path=None):
    kwargs = {"search_backend": "indexed"}
    if tmp_path is not None:
        kwargs["store_dir"] = str(tmp_path / "store")
    return BackDroidConfig(**kwargs)


class TestWorkerEntryPoints:
    def test_run_analysis_matches_analyze_spec(self, tmp_path):
        spec = benchmark_app_spec(0, scale=SCALE)
        config = _config(tmp_path)
        ours = run_analysis(spec, config)
        reference = analyze_spec(spec, config)
        assert ours.ok and reference.ok
        assert ours.package == reference.package
        assert ours.findings == reference.findings

    def test_run_analysis_payload_is_the_outcome_payload(self):
        spec = benchmark_app_spec(1, scale=SCALE)
        config = _config()
        payload = run_analysis_payload(spec, config)
        reference = outcome_payload(analyze_spec(spec, config))
        assert payload["package"] == reference["package"]
        assert payload["findings"] == reference["findings"]
        assert payload["schema_version"] == reference["schema_version"]
        assert payload["error"] is None


class TestProcessLane:
    def test_execute_runs_out_of_process_with_identical_results(self):
        spec = benchmark_app_spec(0, scale=SCALE)
        config = _config()
        with ProcessLane(workers=1) as lane:
            result = lane.execute("job-1", spec, config, None)
            assert result.payload is not None
            assert not result.killed and not result.died
            assert result.pid != os.getpid()
            assert result.pid in lane.pids()
        reference = run_analysis_payload(spec, config)
        assert result.payload["package"] == reference["package"]
        assert result.payload["findings"] == reference["findings"]

    def test_lane_has_one_process_per_worker(self):
        with ProcessLane(workers=2) as lane:
            pids = lane.pids()
            assert len(pids) == 2
            assert os.getpid() not in pids

    def test_kill_running_reaps_worker_and_respawns(self):
        spec = benchmark_app_spec(0, scale=SCALE)
        config = _config()
        with ProcessLane(workers=1) as lane:
            (original_pid,) = lane.pids()
            import threading

            results = []
            thread = threading.Thread(
                target=lambda: results.append(
                    lane.execute("job-1", spec, config, None, stall_seconds=30)
                )
            )
            thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not lane.kill("job-1"):
                time.sleep(0.01)
            thread.join(timeout=10)
            assert results, "execute never returned after kill"
            result = results[0]
            assert result.killed and not result.died
            assert result.payload is None
            assert result.pid == original_pid
            # Capacity is invariant: a replacement worker was forked.
            assert lane.workers_restarted == 1
            replacement = lane.pids()
            assert len(replacement) == 1
            assert replacement != [original_pid]
            # The replacement actually serves work.
            again = lane.execute("job-2", spec, config, None)
            assert again.payload is not None
            assert again.pid == replacement[0]

    def test_kill_before_dispatch_refuses_the_work(self):
        spec = benchmark_app_spec(0, scale=SCALE)
        with ProcessLane(workers=1) as lane:
            assert lane.kill("job-1") is False  # not bound yet: remembered
            result = lane.execute("job-1", spec, _config(), None)
            assert result.killed and result.payload is None
            # The lane is unharmed for other tokens.
            ok = lane.execute("job-2", spec, _config(), None)
            assert ok.payload is not None

    def test_worker_crash_reports_died_and_respawns(self):
        spec = benchmark_app_spec(0, scale=SCALE)
        with ProcessLane(workers=1) as lane:
            (pid,) = lane.pids()
            import threading

            results = []
            thread = threading.Thread(
                target=lambda: results.append(
                    lane.execute("job-1", spec, _config(), None,
                                 stall_seconds=30)
                )
            )
            thread.start()
            time.sleep(0.2)  # let the task land on the worker
            os.kill(pid, signal.SIGKILL)  # simulate an OOM-style death
            thread.join(timeout=10)
            assert results
            result = results[0]
            assert result.died and not result.killed
            assert result.payload is None
            assert lane.workers_restarted == 1
            assert len(lane.pids()) == 1

    def test_shutdown_stops_every_worker(self):
        lane = ProcessLane(workers=2)
        processes = [w.process for w in lane._all]
        lane.shutdown(wait=True)
        assert all(not p.is_alive() for p in processes)
        assert lane.pids() == []

    def test_worker_count_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessLane(workers=0)

    def test_unknown_start_method_is_rejected(self):
        with pytest.raises(ValueError, match="start method"):
            ProcessLane(workers=1, start_method="teleport")
