"""Pattern-level ground-truth tests against the whole-app baseline.

The mirror of ``test_patterns_backdroid.py``: every pattern's
``expect_amandroid`` label must match the baseline's actual verdict —
including its documented misses (liblist, Executor.execute) and its
false positive (unregistered components).
"""

import pytest

from repro.baseline import AmandroidConfig, AmandroidStyleAnalyzer
from repro.workload.generator import AppSpec, generate_app
from repro.workload.patterns import PATTERN_BUILDERS, PatternSpec

_DETECTION_PATTERNS = sorted(
    name for name in PATTERN_BUILDERS if name != "hazard_dangling"
)


def _analyze(pattern: str, insecure: bool):
    spec = AppSpec(
        package="com.gta",
        seed=31,
        patterns=(PatternSpec(pattern, insecure=insecure),),
        filler_classes=2,
    )
    generated = generate_app(spec)
    analyzer = AmandroidStyleAnalyzer(AmandroidConfig(timeout_seconds=None))
    return generated, analyzer.analyze(generated.apk)


class TestGroundTruthAgreement:
    @pytest.mark.parametrize("pattern", _DETECTION_PATTERNS)
    def test_insecure_variant_matches_expectation(self, pattern):
        generated, report = _analyze(pattern, insecure=True)
        expected = generated.truths[0].expect_amandroid
        assert report.succeeded
        assert report.vulnerable == expected, (
            f"{pattern}: expected vulnerable={expected}, "
            f"got {[str(f) for f in report.findings]}"
        )

    @pytest.mark.parametrize("pattern", _DETECTION_PATTERNS)
    def test_secure_variant_never_flagged(self, pattern):
        _, report = _analyze(pattern, insecure=False)
        assert report.succeeded and not report.vulnerable

    def test_hazard_masks_everything(self):
        spec = AppSpec(
            package="com.gta", seed=33,
            patterns=(
                PatternSpec("hazard_dangling"),
                PatternSpec("direct_entry", insecure=True),
            ),
            filler_classes=2,
        )
        generated = generate_app(spec)
        report = AmandroidStyleAnalyzer(
            AmandroidConfig(timeout_seconds=None)
        ).analyze(generated.apk)
        assert report.error is not None
        assert not report.vulnerable
        assert not generated.expected_amandroid_vulnerable()
