"""Whole-app baseline analyzers (the paper's comparators).

* :mod:`repro.baseline.config` — configuration mirroring the tools'
  documented behaviour: Amandroid's ``liblist.txt`` skipped libraries,
  its incomplete async/callback edge maps, timeouts, and FlowDroid's
  call-graph algorithm choice;
* :mod:`repro.baseline.callgraph` — whole-app, entry-driven call-graph
  construction (lifecycle-aware CHA with ICC and configured
  async/callback edges);
* :mod:`repro.baseline.wholeapp` — the Amandroid-style analyzer:
  whole-app call graph + whole-app forward constant propagation +
  sink detection;
* :mod:`repro.baseline.flowdroid_cg` — the FlowDroid-style call-graph-
  only generator used for the Fig. 1 experiment.

The weaknesses the paper measures in Sec. VI-C are reproduced as
explicit, documented behaviours — not accidents: skipped libraries cause
false negatives, unregistered components cause false positives, missing
``Executor.execute`` / callback edges cause false negatives, whole-app
cost causes timeouts, and unresolved procedure references cause
"occasional errors".
"""

from repro.baseline.config import (
    AnalysisError,
    AnalysisTimeout,
    AmandroidConfig,
    Deadline,
    FlowDroidConfig,
    LIBLIST,
)
from repro.baseline.callgraph import CallGraph, build_whole_app_callgraph
from repro.baseline.wholeapp import AmandroidStyleAnalyzer, BaselineReport
from repro.baseline.flowdroid_cg import FlowDroidStyleCallGraphGenerator, CgReport

__all__ = [
    "AmandroidConfig",
    "AmandroidStyleAnalyzer",
    "AnalysisError",
    "AnalysisTimeout",
    "BaselineReport",
    "CallGraph",
    "CgReport",
    "Deadline",
    "FlowDroidConfig",
    "FlowDroidStyleCallGraphGenerator",
    "LIBLIST",
    "build_whole_app_callgraph",
]
