"""Process-isolated analysis workers, shared by batch and serve.

Cold analyses are CPU-shaped (disassembly, index folds, slicing) while
warm restores are I/O-shaped (mmap reads); running both in one
interpreter makes every warm fetch queue behind the GIL whenever a cold
analysis is executing.  This module owns the *out-of-process* execution
substrate that fixes that:

* :func:`run_analysis` / :func:`run_analysis_payload` — the
  module-level worker entry points (they pickle by reference, which is
  what lets both ``run_batch --executor process`` and the service's
  cold lane ship work across a process boundary with one code path);
* :class:`ProcessLane` — a fixed-size pool of long-lived worker
  processes driven over pipes, with the lifecycle operations an
  interactive service needs and ``concurrent.futures`` cannot offer:
  cancel a *running* job by terminating its worker (the worker is
  reaped and a replacement is forked, so the lane never loses
  capacity), and survive worker crashes by failing only the job that
  was on the dead worker.

The parent process never sends analysis work to a worker without
registering which job it runs, so a cancellation can always find the
process to signal.  Results travel back as plain JSON-able outcome
payloads (the same versioned shape the store and the HTTP API use), so
nothing analysis-specific needs to pickle on the return path.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.batch import analyze_spec, outcome_payload
from repro.telemetry import tracing

#: Fault-injection hook (tests, chaos drills): when set in the parent's
#: environment at dispatch time, every cold task stalls this many
#: seconds inside the worker before analyzing — long enough to exercise
#: the cancel-a-running-worker path deterministically.
STALL_ENV_VAR = "BACKDROID_COLD_STALL_SECONDS"


# ======================================================================
# Worker entry points (module-level: they pickle by reference)
# ======================================================================

def run_analysis(spec, config=None, request=None):
    """Analyze one spec; the shared worker entry point.

    This is what ``run_batch(executor="process")`` submits to its
    ``ProcessPoolExecutor`` and what :class:`ProcessLane` workers run —
    one entry point, so per-app isolation, store warm starts and
    outcome shapes are identical whichever pool executed the app.
    Never raises: errors are captured in ``AppOutcome.error``.
    """
    return analyze_spec(spec, config, request=request)


def run_analysis_payload(spec, config=None, request=None) -> dict:
    """Analyze one spec and return the serialized outcome payload.

    The service's cross-process result shape: a plain JSON-able dict
    (versioned by the envelope ``schema_version``), so the parent never
    has to unpickle analysis objects from an untrusted-after-crash
    worker — only primitives cross back.
    """
    outcome = run_analysis(spec, config, request)
    with tracing.span("report.render"):
        return outcome_payload(outcome)


def _worker_main(conn, nice: int = 0) -> None:
    """One worker process's loop: recv task, analyze, send payload.

    A ``None`` task (or a closed pipe) is the shutdown signal.  The
    stall knob rides the task itself so the parent's environment at
    dispatch time — not the child's at fork time — controls it.

    Trace propagation: when the task carries a serialized span context,
    the worker runs the analysis under a local tracer's ``worker`` span
    parented on it and ships the finished span dicts home in the
    result, so the job's trace crosses the process boundary intact.
    """
    if nice:
        try:
            os.nice(nice)
        except (AttributeError, OSError):
            pass  # platform without nice(), or lowering denied
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        spec, config, request, stall_seconds, trace_ctx = task
        if stall_seconds:
            time.sleep(stall_seconds)
        spans: list = []
        if trace_ctx is not None:
            worker_tracer = tracing.Tracer(enabled=True)
            with worker_tracer.span(
                "worker", parent=trace_ctx, attrs={"stage": "cold-analysis"}
            ):
                payload = run_analysis_payload(spec, config, request)
            spans = worker_tracer.collect(trace_ctx["trace_id"])
        else:
            payload = run_analysis_payload(spec, config, request)
        try:
            conn.send(
                {"pid": os.getpid(), "payload": payload, "spans": spans}
            )
        except (BrokenPipeError, OSError):
            return


# ======================================================================
# The process lane
# ======================================================================

@dataclass(frozen=True)
class ColdResult:
    """What one out-of-process execution produced.

    Exactly one of three shapes: a completed ``payload`` (the analysis
    ran to the end — its own ``error`` field still distinguishes ok
    from failed), ``killed`` (the worker was terminated by an explicit
    cancel; the result is discarded by design), or ``died`` (the worker
    vanished without being asked to — crash, OOM kill — and the lane
    already forked a replacement).  ``spans`` carries the worker-side
    finished span dicts when the dispatch shipped a trace context.
    """

    payload: Optional[dict]
    pid: Optional[int]
    killed: bool = False
    died: bool = False
    spans: tuple = ()


class _Worker:
    """One long-lived worker process plus the parent's pipe end."""

    def __init__(self, ctx, nice: int = 0) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, nice),
            name="backdroid-cold-worker",
            daemon=True,
        )
        self.process.start()
        # The child holds its own copy; closing ours makes a dead child
        # surface as EOFError on recv instead of a hang.
        child_conn.close()
        self.conn = parent_conn

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def stop(self) -> None:
        """Graceful shutdown: signal, wait, escalate to terminate."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.close()

    def terminate(self) -> None:
        """Hard kill (cancellation, non-drain shutdown)."""
        self.process.terminate()

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        # Reap the child so a long-lived service never accumulates
        # zombies across cancellations.
        self.process.join(timeout=5.0)


class ProcessLane:
    """A fixed pool of analysis worker processes with kill semantics.

    ``execute`` blocks its (dispatcher-thread) caller for the duration
    of one out-of-process analysis; concurrency comes from the
    scheduler running one dispatcher thread per worker.  ``kill``
    terminates the worker currently bound to a job token — the
    dispatcher's pending ``recv`` observes the death and reports a
    ``killed``/``died`` result while the lane forks a replacement, so
    capacity is invariant under both cancellations and crashes.
    """

    #: Default CPU-priority handicap for cold workers.  Cold analyses
    #: are throughput work; the service interpreter (event loop + warm
    #: lane) is latency-sensitive.  A GIL-holding thread cannot be
    #: deprioritized, but a process can: niced workers soak up idle CPU
    #: without preempting warm restores when cores are scarce.
    DEFAULT_NICE = 10

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        nice: int = DEFAULT_NICE,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be a positive integer")
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            # fork keeps per-worker startup in the low milliseconds and
            # needs no importable __main__; everywhere it is missing
            # (Windows), spawn is the portable fallback.
            start_method = "fork" if "fork" in methods else methods[0]
        if start_method not in methods:
            raise ValueError(
                f"unknown start method {start_method!r}: choose from {methods}"
            )
        self.start_method = start_method
        self.workers = workers
        self.nice = nice
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()
        #: Job token -> the worker currently executing it.
        self._running: dict[str, _Worker] = {}
        #: Tokens whose kill raced the dispatch handshake; checked both
        #: before send (never start doomed work) and after recv.
        self._kill_requested: set[str] = set()
        self._closed = False
        self.workers_restarted = 0
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._all: list[_Worker] = []
        for _ in range(workers):
            worker = _Worker(self._ctx, nice=nice)
            self._all.append(worker)
            self._idle.put(worker)

    # ------------------------------------------------------------------
    def pids(self) -> list[int]:
        """Live worker process ids (stable between restarts)."""
        with self._lock:
            return sorted(
                w.pid for w in self._all
                if w.pid is not None and w.process.is_alive()
            )

    # ------------------------------------------------------------------
    def execute(
        self,
        token: str,
        spec,
        config,
        request,
        stall_seconds: float = 0.0,
        trace_ctx: Optional[dict] = None,
    ) -> ColdResult:
        """Run one analysis on an idle worker; blocks until it resolves.

        *token* is the handle :meth:`kill` targets (the scheduler uses
        the job id).  *trace_ctx* is a serialized span context
        (:meth:`repro.telemetry.tracing.Span.context`) the worker
        parents its spans on; the finished spans come back on
        ``ColdResult.spans``.  Returns a :class:`ColdResult`; never
        raises for worker-side trouble.
        """
        worker = self._idle.get()
        with self._lock:
            if self._closed or token in self._kill_requested:
                killed = token in self._kill_requested
                self._kill_requested.discard(token)
                self._idle.put(worker)
                return ColdResult(None, worker.pid, killed=killed,
                                  died=not killed)
            self._running[token] = worker
        result = None
        try:
            worker.conn.send(
                (spec, config, request, stall_seconds, trace_ctx)
            )
            result = worker.conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            result = None
        finally:
            with self._lock:
                self._running.pop(token, None)
                killed = token in self._kill_requested
                self._kill_requested.discard(token)
        if result is not None:
            self._idle.put(worker)
            return ColdResult(
                result["payload"],
                result["pid"],
                spans=tuple(result.get("spans") or ()),
            )
        # The worker is gone (terminated by kill(), or crashed).  Reap
        # it and fork a replacement so the lane keeps its capacity.
        pid = worker.pid
        worker.close()
        replacement: Optional[_Worker] = None
        with self._lock:
            if worker in self._all:
                self._all.remove(worker)
            closed = self._closed
            if not closed:
                replacement = _Worker(self._ctx, nice=self.nice)
                self._all.append(replacement)
                self.workers_restarted += 1
        if replacement is not None:
            self._idle.put(replacement)
        elif closed:
            # Recycle the dead handle so dispatchers queued behind a
            # non-drain shutdown never block on an empty idle queue —
            # the closed check up top returns it without touching its
            # pipe.
            self._idle.put(worker)
        return ColdResult(None, pid, killed=killed, died=not killed)

    # ------------------------------------------------------------------
    def kill(self, token: str) -> bool:
        """Terminate the worker running *token* (cancellation).

        Returns True when a running worker was signalled.  When the
        token is not (yet) bound — the kill raced the dispatch — it is
        remembered, and :meth:`execute` refuses to start the work.
        """
        with self._lock:
            worker = self._running.get(token)
            self._kill_requested.add(token)
        if worker is None:
            return False
        worker.terminate()
        return True

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop every worker.  ``wait=False`` terminates mid-analysis.

        With ``wait=True`` the caller must have drained its dispatchers
        first (the scheduler joins its dispatcher pool before calling
        this), so every worker is idle and exits on the ``None``
        signal.
        """
        with self._lock:
            self._closed = True
            workers = list(self._all)
            self._all.clear()
        for worker in workers:
            if wait:
                worker.stop()
            else:
                worker.terminate()
                worker.close()

    def __enter__(self) -> "ProcessLane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
