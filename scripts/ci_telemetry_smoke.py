#!/usr/bin/env python
"""CI smoke for the telemetry subsystem, end to end over a real server.

Boots ``backdroid serve`` as a subprocess (JSON logs, ephemeral port),
pushes one warm and one cold job through it, then asserts the three
telemetry surfaces:

* ``GET /v1/jobs/<id>?trace=1`` returns a single-trace span tree whose
  ``worker`` span ran in a *different process* than the server;
* ``GET /metrics`` serves Prometheus text carrying the expected
  instrument names;
* the server's stdout is parseable JSON log lines.

Exits nonzero on the first violated assertion, so CI can run it
directly::

    PYTHONPATH=src python scripts/ci_telemetry_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_ROOT / "src"))

from repro.core import BackDroidConfig, analyze_spec  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.workload.corpus import benchmark_app_spec  # noqa: E402

#: Instruments the scrape must carry (names are the public contract).
EXPECTED_INSTRUMENTS = (
    "backdroid_jobs_submitted_total",
    "backdroid_jobs_completed_total",
    "backdroid_job_wait_seconds",
    "backdroid_job_service_seconds",
    "backdroid_lane_depth",
    "backdroid_warm_submissions_total",
    "backdroid_store_probe_total",
    "backdroid_store_counter",
    "backdroid_http_requests_total",
    "backdroid_event_loop_lag_seconds",
)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="bdtelemetry-") as root:
        store = str(Path(root) / "store")
        # Pre-warm app 0 so the first submission rides the fast lane.
        config = BackDroidConfig(
            search_backend="indexed", store_dir=store, store_mode="full"
        )
        outcome = analyze_spec(benchmark_app_spec(0, scale=0.1), config)
        assert outcome.ok, outcome.error

        env = dict(os.environ)
        env["PYTHONPATH"] = str(_ROOT / "src")
        # -u: the banner must flush through the pipe before we read it.
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.cli", "serve",
                "--port", "0", "--store", store, "--store-mode", "full",
                "--backend", "indexed", "--cold-workers", "1",
                "--log-format", "json",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(_ROOT),
        )
        try:
            # The banner prints the bound ephemeral port.
            line = proc.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, f"no address in serve banner: {line!r}"
            host, port = match.group(1), int(match.group(2))
            client = ServiceClient(host=host, port=port, timeout=60)
            deadline = time.monotonic() + 30
            while True:
                try:
                    assert client.health() == {"ok": True}
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.1)

            server_pid = proc.pid
            warm = client.submit({"app": "bench:0", "scale": 0.1})
            assert warm["warm"], warm
            warm_done = client.wait(warm["id"], timeout=120)
            assert warm_done["state"] == "done", warm_done

            cold = client.submit({"app": "bench:90", "scale": 0.1})
            assert not cold["warm"], cold
            cold_done = client.wait(cold["id"], timeout=120)
            assert cold_done["state"] == "done", cold_done

            # Surface 1: the cross-process trace.
            traced = client.job(cold["id"], trace=True)
            spans = traced["trace"]
            assert spans, "cold job returned no trace"
            trace_ids = {s["trace_id"] for s in spans}
            assert trace_ids == {traced["trace_id"]}, trace_ids
            names = {s["name"] for s in spans}
            assert {"job", "queue", "dispatch", "worker"} <= names, names
            worker = next(s for s in spans if s["name"] == "worker")
            assert worker["pid"] not in (None, server_pid), (
                f"worker span pid {worker['pid']} is not a distinct "
                f"worker process (server pid {server_pid})"
            )
            print(
                f"trace ok: {len(spans)} spans, one trace, worker span "
                f"on pid {worker['pid']} (server pid {server_pid})"
            )

            # Surface 2: the Prometheus scrape.
            text = client.metrics()
            for name in EXPECTED_INSTRUMENTS:
                assert re.search(
                    rf"^{name}(_bucket|_sum|_count)?{{?", text, re.M
                ), f"instrument {name} missing from /metrics"
            assert 'le="+Inf"' in text, "histograms must end at +Inf"
            print(
                f"metrics ok: {len(EXPECTED_INSTRUMENTS)} instruments in "
                f"{len(text.splitlines())} exposition lines"
            )

            # /v1/stats embeds the same snapshot as JSON.
            stats = client.stats()
            assert stats["metrics"], "stats missing the metrics snapshot"
        finally:
            proc.terminate()
            try:
                out, err = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, err = proc.communicate()

        # Surface 3: structured logs — every stderr line the backdroid
        # logger tree emitted must parse as a JSON object.
        log_lines = [
            line for line in err.splitlines()
            if line.startswith("{")
        ]
        for line in log_lines:
            parsed = json.loads(line)
            assert "level" in parsed and "message" in parsed, parsed
        print(f"logs ok: {len(log_lines)} structured line(s)")
    print("telemetry smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
