"""Method-loop detection (Sec. IV-F).

Backward search and forward object taint analysis can both run into dead
method loops.  The paper names four types:

* ``CrossBackward`` — the backward method search revisits a method
  already on the current backtracking path (C == A in Fig. 5);
* ``InnerBackward`` — a method call chain inside one backtracked method
  revisits itself (B3 == B1 in Fig. 5);
* ``CrossForward`` / ``InnerForward`` — the same two shapes during the
  forward object taint analysis of the advanced search.

"By detecting at least one dead method loop per app, we can optimize the
path analysis of 60% apps ... the CrossBackward loop is the most common
one."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.dex.types import MethodSignature


class LoopKind(enum.Enum):
    CROSS_BACKWARD = "CrossBackward"
    INNER_BACKWARD = "InnerBackward"
    CROSS_FORWARD = "CrossForward"
    INNER_FORWARD = "InnerForward"


@dataclass
class LoopDetector:
    """Detects and counts dead method loops.

    The detector is stateless with respect to paths — callers pass their
    current path explicitly — but accumulates per-kind counters for the
    Sec. IV-F statistics.
    """

    counts: dict[LoopKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in LoopKind}
    )

    # ------------------------------------------------------------------
    def check_backward(
        self, path: Sequence[MethodSignature], next_method: MethodSignature
    ) -> bool:
        """True when stepping backward into *next_method* would loop.

        *path* is the current backtracking chain (sink-most first is
        fine; only membership matters).
        """
        if next_method in path:
            self.counts[LoopKind.CROSS_BACKWARD] += 1
            return True
        return False

    def check_inner_backward(
        self, inner_chain: Sequence[MethodSignature], next_method: MethodSignature
    ) -> bool:
        """True when a within-method call chain revisits *next_method*."""
        if next_method in inner_chain:
            self.counts[LoopKind.INNER_BACKWARD] += 1
            return True
        return False

    def check_forward(
        self, path: Sequence[MethodSignature], next_method: MethodSignature
    ) -> bool:
        """True when the forward taint analysis would revisit a method."""
        if next_method in path:
            self.counts[LoopKind.CROSS_FORWARD] += 1
            return True
        return False

    def check_inner_forward(
        self, inner_chain: Sequence[MethodSignature], next_method: MethodSignature
    ) -> bool:
        if next_method in inner_chain:
            self.counts[LoopKind.INNER_FORWARD] += 1
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def detected_any(self) -> bool:
        """Whether at least one dead loop was detected (per-app metric)."""
        return self.total > 0

    def most_common(self) -> LoopKind:
        return max(self.counts, key=lambda kind: self.counts[kind])
