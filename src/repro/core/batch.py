"""Corpus-scale batch analysis: many apps, one worker pool.

The paper vets one app at a time; serving corpus-scale traffic means
analyzing thousands.  This driver fans a list of generatable
:class:`~repro.workload.generator.AppSpec` recipes across a
``concurrent.futures`` pool (threads by default; processes for CPU-bound
corpora — the worker is a module-level function precisely so it
pickles), collects one compact :class:`AppOutcome` per app, and
aggregates the statistics the paper reports per app (analysis time,
command/sink cache rates, findings) across the whole run.

A failing app never aborts the batch: its exception is captured in
``AppOutcome.error`` and surfaces in the aggregate failure count,
mirroring how the paper's corpus runs tolerate per-app analyzer errors
(Sec. VI-C).
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.backdroid import BackDroid, BackDroidConfig
from repro.workload.generator import AppSpec, generate_app

#: Executor kinds selectable from the CLI.
EXECUTORS = ("thread", "process", "serial")


@dataclass(frozen=True)
class AppOutcome:
    """One app's per-run summary (cheap to pickle across processes)."""

    package: str
    seconds: float = 0.0
    method_count: int = 0
    sink_count: int = 0
    reachable_sinks: int = 0
    findings: tuple[tuple[str, str], ...] = ()  # (rule, class)
    search_cache_rate: float = 0.0
    search_cache_evictions: int = 0
    sink_cache_rate: float = 0.0
    backend: str = "linear"
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    @property
    def vulnerable(self) -> bool:
        return bool(self.findings)


def analyze_spec(
    spec: AppSpec, config: Optional[BackDroidConfig] = None
) -> AppOutcome:
    """Generate and analyze one app; never raises (errors are captured)."""
    config = config if config is not None else BackDroidConfig()
    try:
        apk = generate_app(spec).apk
        report = BackDroid(config).analyze(apk)
        return AppOutcome(
            package=apk.package,
            seconds=report.analysis_seconds,
            method_count=apk.method_count(),
            sink_count=report.sink_count,
            reachable_sinks=report.reachable_sink_count,
            findings=tuple(
                (f.rule, f.method.class_name) for f in report.findings
            ),
            search_cache_rate=report.search_cache_rate,
            search_cache_evictions=report.search_cache_evictions,
            sink_cache_rate=report.sink_cache_rate,
            backend=report.search_backend,
        )
    except Exception as exc:  # noqa: BLE001 - batch isolation by design
        return AppOutcome(
            package=spec.package, error=f"{type(exc).__name__}: {exc}"
        )


@dataclass
class BatchResult:
    """Per-app outcomes plus run-level aggregates."""

    outcomes: list[AppOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    executor: str = "thread"
    backend: str = "linear"

    # ------------------------------------------------------------------
    @property
    def analyzed(self) -> list[AppOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[AppOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def app_count(self) -> int:
        return len(self.outcomes)

    @property
    def total_analysis_seconds(self) -> float:
        return sum(o.seconds for o in self.analyzed)

    @property
    def total_sinks(self) -> int:
        return sum(o.sink_count for o in self.analyzed)

    @property
    def total_findings(self) -> int:
        return sum(o.finding_count for o in self.analyzed)

    @property
    def vulnerable_apps(self) -> int:
        return sum(1 for o in self.analyzed if o.vulnerable)

    @property
    def mean_seconds(self) -> float:
        rows = self.analyzed
        return statistics.fmean(o.seconds for o in rows) if rows else 0.0

    @property
    def median_seconds(self) -> float:
        rows = self.analyzed
        return statistics.median(o.seconds for o in rows) if rows else 0.0

    @property
    def mean_search_cache_rate(self) -> float:
        rows = self.analyzed
        return (
            statistics.fmean(o.search_cache_rate for o in rows) if rows else 0.0
        )

    @property
    def mean_sink_cache_rate(self) -> float:
        rows = self.analyzed
        return (
            statistics.fmean(o.sink_cache_rate for o in rows) if rows else 0.0
        )

    @property
    def speedup_over_serial(self) -> float:
        """Summed per-app time / wall time — the pool's effective overlap."""
        return (
            self.total_analysis_seconds / self.wall_seconds
            if self.wall_seconds
            else 0.0
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Per-app rows plus the aggregate block, ready to print."""
        lines = [
            f"{'app':34}  {'methods':>7}  {'sinks':>5}  {'reach':>5}  "
            f"{'vulns':>5}  {'time(s)':>8}  {'cache':>7}"
        ]
        for o in self.outcomes:
            if o.ok:
                lines.append(
                    f"{o.package:34}  {o.method_count:7d}  {o.sink_count:5d}  "
                    f"{o.reachable_sinks:5d}  {o.finding_count:5d}  "
                    f"{o.seconds:8.3f}  {o.search_cache_rate:6.1%}"
                )
            else:
                lines.append(f"{o.package:34}  ERROR: {o.error}")
        lines.append("")
        lines.append(
            f"batch: {self.app_count} apps "
            f"({len(self.failures)} failed), backend={self.backend}, "
            f"{self.workers} {self.executor} worker(s)"
        )
        lines.append(
            f"  wall time      : {self.wall_seconds:.3f}s "
            f"(sum of per-app: {self.total_analysis_seconds:.3f}s, "
            f"overlap {self.speedup_over_serial:.2f}x)"
        )
        lines.append(
            f"  per-app time   : mean {self.mean_seconds:.3f}s, "
            f"median {self.median_seconds:.3f}s"
        )
        lines.append(
            f"  cache rates    : search {self.mean_search_cache_rate:.2%}, "
            f"sink {self.mean_sink_cache_rate:.2%} (per-app averages)"
        )
        lines.append(
            f"  findings       : {self.total_findings} across "
            f"{self.vulnerable_apps} vulnerable app(s), "
            f"{self.total_sinks} sinks analyzed"
        )
        return "\n".join(lines)


def _make_executor(kind: str, max_workers: Optional[int]) -> Executor:
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    if kind == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    raise ValueError(f"unknown executor {kind!r}: choose from {EXECUTORS}")


def run_batch(
    specs: Sequence[AppSpec],
    config: Optional[BackDroidConfig] = None,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    progress: Optional[Callable[[AppOutcome], None]] = None,
) -> BatchResult:
    """Analyze every spec across a worker pool, preserving input order.

    ``executor`` is ``"thread"`` (default: safe everywhere, overlaps
    generation and I/O), ``"process"`` (true CPU parallelism for large
    corpora) or ``"serial"`` (in-process, for debugging/determinism).
    ``progress`` is invoked with each outcome as it completes.
    """
    config = config if config is not None else BackDroidConfig()
    started = time.perf_counter()
    outcomes: list[Optional[AppOutcome]] = [None] * len(specs)

    if executor == "serial":
        workers = 1
        for i, spec in enumerate(specs):
            outcomes[i] = analyze_spec(spec, config)
            if progress is not None:
                progress(outcomes[i])
    else:
        with _make_executor(executor, max_workers) as pool:
            workers = getattr(pool, "_max_workers", max_workers or 1)
            futures = {
                pool.submit(analyze_spec, spec, config): i
                for i, spec in enumerate(specs)
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:  # noqa: BLE001 - e.g. a worker
                    # process died (BrokenProcessPool): record it against
                    # the spec instead of aborting the whole batch.
                    outcome = AppOutcome(
                        package=specs[index].package,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                outcomes[index] = outcome
                if progress is not None:
                    progress(outcome)

    return BatchResult(
        outcomes=[o for o in outcomes if o is not None],
        wall_seconds=time.perf_counter() - started,
        workers=workers,
        executor=executor,
        backend=config.search_backend,
    )
