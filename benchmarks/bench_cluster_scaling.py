#!/usr/bin/env python
"""Warm-throughput scaling of the multi-node service on one shared store.

The cluster's pitch (ROADMAP "Multi-node service") is near-linear
*warm* throughput: nodes share one artifact store, so adding a node
adds *session capacity* — the front end's content-key affinity routes
repeat submissions of an app to the node already holding its
generated APK and built index, and that node answers from its warm
session instead of regenerating.

The workload makes that mechanism measurable (and honest) on any
machine, including a single-core CI box:

* ``--apps`` distinct bench apps are pre-warmed into one shared store
  (index mode), then each is submitted ``--repeats`` times through a
  cluster front end, round-robin across apps so consecutive jobs
  never share an app.
* Every node runs with a bounded warm-session cache
  (``--session-cache``, default 4) **smaller than the app set**.  A
  single node therefore thrashes: with 12 apps cycling through 4
  session slots, every job pays regeneration + index restore.  Three
  nodes hold ~4 apps each — within one cache — so after the first
  round every job is a session hit (an order of magnitude cheaper),
  *without any node seeing more total work*.

That is the architecture's claim in miniature: scaling comes from
partitioning the working set (affinity), not just from adding CPUs —
which is also why the effect survives on one core, where raw
CPU-parallelism alone could never show a speedup.

Bar (enforced; the script exits nonzero on failure):

* 3-node warm throughput **>= --min-ratio x** (default 2.0) the
  1-node throughput on the same pre-warmed store.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py
    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py --smoke

``--smoke`` shrinks the corpus and drops the enforced bar to a sanity
threshold (>= 1.0x) for noisy CI boxes.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.backdroid import BackDroidConfig  # noqa: E402
from repro.core.batch import analyze_spec  # noqa: E402
from repro.service import ClusterHarness, ServiceClient  # noqa: E402
from repro.workload.corpus import app_spec_from_request  # noqa: E402

TERMINAL = ("done", "failed", "cancelled")


def prewarm(store: Path, apps: int, scale: float) -> None:
    """Publish every app's index + specmap entry into the shared store."""
    config = BackDroidConfig(
        search_backend="indexed", store_dir=str(store), store_mode="index"
    )
    for index in range(apps):
        spec = app_spec_from_request({"app": f"bench:{index}", "scale": scale})
        outcome = analyze_spec(spec, config)
        if not outcome.ok:
            raise SystemExit(
                f"pre-warm failed for bench:{index}: {outcome.error}"
            )


def run_cluster(
    store: Path,
    nodes: int,
    apps: int,
    repeats: int,
    scale: float,
    session_cache: int,
) -> dict:
    """One measured run: ``apps * repeats`` warm jobs via a front end."""
    with ClusterHarness(
        store,
        nodes=nodes,
        backend="indexed",
        store_mode="index",
        lease_ttl=5.0,
        heartbeat_interval=0.3,
        workers=1,
        cold_workers=0,
        fast_lane_workers=1,
        session_cache=session_cache,
    ) as harness:
        # The monitor is only a failover path here; a long interval
        # keeps its per-record polling out of the measurement.
        front = harness.front_end(monitor_interval=5.0)
        client = ServiceClient(*front.address, timeout=30.0)
        node_clients = [
            ServiceClient(host, port, timeout=10.0)
            for host, port in harness.endpoints()
        ]
        total = apps * repeats
        started = time.perf_counter()
        for repeat in range(repeats):
            for index in range(apps):
                # Distinct max_frames per round: repeats must be real
                # jobs, not in-flight dedup coalesces of one analysis.
                client.submit(
                    {
                        "app": f"bench:{index}",
                        "scale": scale,
                        "max_frames": 8 + repeat,
                    }
                )
        while True:
            finished = 0
            for node_client in node_clients:
                by_state = node_client.stats()["jobs"]["by_state"]
                finished += sum(by_state.get(s, 0) for s in TERMINAL)
            if finished >= total:
                break
            time.sleep(0.25)
        elapsed = time.perf_counter() - started
        stats = client.stats()
        failed = 0
        for node_client in node_clients:
            by_state = node_client.stats()["jobs"]["by_state"]
            failed += by_state.get("failed", 0) + by_state.get(
                "cancelled", 0
            )
        if failed:
            raise SystemExit(f"{failed} job(s) failed in the {nodes}-node run")
        return {
            "nodes": nodes,
            "jobs": total,
            "seconds": elapsed,
            "throughput": total / elapsed,
            "routing": stats["routing"],
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", type=int, default=12,
                        help="distinct apps (default: 12)")
    parser.add_argument("--repeats", type=int, default=8,
                        help="submissions per app (default: 8)")
    parser.add_argument("--scale", type=float, default=0.35,
                        help="bulk-code scale factor (default: 0.35)")
    parser.add_argument("--session-cache", type=int, default=4,
                        help="per-node warm-session slots (default: 4; "
                        "must be < --apps for the 1-node run to thrash)")
    parser.add_argument("--min-ratio", type=float, default=2.0,
                        help="enforced 3-node/1-node throughput ratio "
                        "(default: 2.0)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized corpus; bar drops to 1.0x")
    parser.add_argument("--json", action="store_true",
                        help="emit the result payload as JSON")
    args = parser.parse_args(argv)
    if args.smoke:
        args.apps = min(args.apps, 8)
        args.repeats = min(args.repeats, 3)
        args.scale = min(args.scale, 0.1)
        args.min_ratio = min(args.min_ratio, 1.0)
    if args.session_cache >= args.apps:
        raise SystemExit("--session-cache must be smaller than --apps "
                         "(the 1-node run must overflow its cache)")

    tmp = Path(tempfile.mkdtemp(prefix="bench-cluster-"))
    store = tmp / "store"
    try:
        warm_start = time.perf_counter()
        prewarm(store, args.apps, args.scale)
        warm_seconds = time.perf_counter() - warm_start
        print(f"pre-warmed {args.apps} app(s) into the shared store in "
              f"{warm_seconds:.1f}s")
        results = {}
        for nodes in (1, 3):
            results[nodes] = run_cluster(
                store,
                nodes,
                args.apps,
                args.repeats,
                args.scale,
                args.session_cache,
            )
            r = results[nodes]
            print(f"{nodes} node(s): {r['jobs']} warm jobs in "
                  f"{r['seconds']:.2f}s -> {r['throughput']:.1f} jobs/s  "
                  f"(routing: {r['routing']})")
        ratio = results[3]["throughput"] / results[1]["throughput"]
        print(f"scaling ratio (3 nodes / 1 node): {ratio:.2f}x "
              f"(bar: >= {args.min_ratio:g}x)")
        if args.json:
            print(json.dumps({"results": results, "ratio": ratio}))
        if ratio < args.min_ratio:
            print("FAIL: below the scaling bar", file=sys.stderr)
            return 1
        print("OK")
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
