"""Unit tests for the SSG structure and the analysis report."""

from repro.android.framework import sinks_for_rules
from repro.core.report import AnalysisReport, SinkRecord
from repro.core.slicer import SinkCallSite
from repro.core.ssg import SSG, CallBinding
from repro.dex.instructions import AssignStmt, Local, StringConstant
from repro.dex.types import FieldSignature, MethodSignature
from repro.search.loops import LoopKind

_SPEC = sinks_for_rules(("crypto-ecb",))[0]
_M1 = MethodSignature("com.a.A", "one", (), "void")
_M2 = MethodSignature("com.a.B", "two", (), "void")


def _stmt(name="x", value="v"):
    return AssignStmt(lhs=Local(name, "java.lang.String"), rhs=StringConstant(value))


class TestSSG:
    def test_add_unit_interned_per_location(self):
        ssg = SSG(_M1, 0, _SPEC)
        first = ssg.add_unit(_M1, 3, _stmt())
        second = ssg.add_unit(_M1, 3, _stmt())
        assert first is second
        assert len(ssg) == 1

    def test_flow_edges_and_tails(self):
        ssg = SSG(_M1, 0, _SPEC)
        producer = ssg.add_unit(_M2, 1, _stmt("a"))
        consumer = ssg.add_unit(_M1, 0, _stmt("b"))
        ssg.add_flow_edge(producer, consumer)
        assert ssg.tail_units() == [producer]
        assert ssg.successors(producer) == [consumer]

    def test_self_edge_ignored(self):
        ssg = SSG(_M1, 0, _SPEC)
        unit = ssg.add_unit(_M1, 0, _stmt())
        ssg.add_flow_edge(unit, unit)
        assert ssg.tail_units() == [unit]

    def test_hierarchical_taint_map(self):
        ssg = SSG(_M1, 0, _SPEC)
        ssg.taint_local(_M1, "r0")
        ssg.taint_local(_M1, "r3")
        ssg.taint_local(_M2, "r0")
        assert ssg.taint_map[_M1] == {"r0", "r3"}
        assert ssg.taint_map[_M2] == {"r0"}
        field = FieldSignature("com.a.A", "PORT", "int")
        ssg.taint_field(field)
        assert field in ssg.field_taints

    def test_bindings_into(self):
        ssg = SSG(_M1, 0, _SPEC)
        ssg.add_binding(CallBinding(_M2, 4, _M1, kind="param"))
        ssg.add_binding(CallBinding(_M2, 5, _M2, kind="return"))
        assert len(ssg.bindings_into(_M1)) == 1

    def test_units_of_sorted_by_index(self):
        ssg = SSG(_M1, 0, _SPEC)
        ssg.add_unit(_M1, 5, _stmt("c"))
        ssg.add_unit(_M1, 1, _stmt("a"))
        ssg.add_unit(_M1, 3, _stmt("b"))
        assert [u.stmt_index for u in ssg.units_of(_M1)] == [1, 3, 5]

    def test_render_contains_structure(self):
        ssg = SSG(_M1, 0, _SPEC)
        ssg.add_unit(_M1, 0, _stmt())
        ssg.reached_entry = True
        ssg.entry_points.add(_M2)
        text = ssg.render()
        assert "reached entry: True" in text
        assert _M1.to_soot() in text


class TestAnalysisReport:
    def _record(self, reachable=True, finding=None):
        return SinkRecord(
            site=SinkCallSite(method=_M1, stmt_index=0, spec=_SPEC),
            reachable=reachable,
            finding=finding,
            facts_repr={0: '"AES"'},
        )

    def test_counters(self):
        report = AnalysisReport(package="com.a")
        report.records.append(self._record(reachable=True))
        report.records.append(self._record(reachable=False))
        assert report.sink_count == 2
        assert report.reachable_sink_count == 1
        assert not report.vulnerable

    def test_findings_by_rule(self):
        from repro.core.detectors import Finding

        finding = Finding(rule="crypto-ecb", method=_M1, stmt_index=0,
                          value_repr='"AES"', detail="ECB")
        report = AnalysisReport(package="com.a")
        report.records.append(self._record(finding=finding))
        assert report.vulnerable
        assert len(report.findings_by_rule("crypto-ecb")) == 1
        assert report.findings_by_rule("ssl-verifier") == []

    def test_loop_bookkeeping(self):
        report = AnalysisReport(package="com.a")
        report.loop_counts = {LoopKind.CROSS_BACKWARD: 2}
        assert report.detected_any_loop

    def test_to_text_renders_everything(self):
        report = AnalysisReport(package="com.a", analysis_seconds=1.25)
        report.records.append(self._record())
        text = report.to_text()
        assert "com.a" in text
        assert "1.250s" in text
        assert '"AES"' in text
