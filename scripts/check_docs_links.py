#!/usr/bin/env python
"""Check that intra-repo markdown links resolve.

Walks every ``*.md`` file in the repository (skipping generated and
vendor directories), extracts inline links, and verifies:

* relative file links point at files/directories that exist;
* fragment links (``path#anchor`` and same-file ``#anchor``) name a
  heading that actually occurs in the target file, using GitHub's
  heading-slug rules.

External links (``http(s)://``, ``mailto:``) are ignored — CI must not
depend on the network.  Exits nonzero listing every broken link.

Run from the repo root (CI does)::

    python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
             "results", ".backdroid-store"}

#: Inline markdown links: [text](target) — images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def markdown_files() -> list[Path]:
    """Every tracked-ish markdown file under the repo root."""
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading line."""
    # Strip inline code/links/emphasis markers, then slugify.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in HEADING_RE.finditer(body):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    body = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                              f"-> {target}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix != ".md" or not resolved.is_file():
                continue  # anchors into non-markdown targets: skip
            if fragment.lower() not in heading_slugs(resolved):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor "
                    f"#{fragment} in {resolved.relative_to(REPO_ROOT)}"
                )
    return errors


def main() -> int:
    files = markdown_files()
    errors = [error for path in files for error in check_file(path)]
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
