"""Multi-node ``backdroid serve``: store-coordinated job sharding.

The shared :class:`~repro.store.ArtifactStore` already makes analysis
*artifacts* safe to share between hosts (content-addressed shards,
atomic publishes); this module adds the small coordination layer that
makes whole *services* shareable:

* :class:`NodeDirectory` — node registration heartbeats plus
  shard-availability gossip, written as small JSON manifests under
  ``<store>/cluster/nodes/``.  A node that stops heartbeating simply
  ages out: liveness is a property of the file's freshness, no
  membership protocol required.
* :class:`SpecmapLease` — an advisory file lease (TTL + monotonic
  fencing token) under ``<store>/cluster/leases/`` so exactly one node
  owns spec → key mapping writes; expired leases are reclaimable by
  any peer, and the fencing token makes each ownership generation
  distinguishable after the fact.
* :class:`ClusterNode` — the per-``serve``-process agent: heartbeats
  the directory, renews (or reclaims) the specmap lease, and installs
  the store's specmap write guard so non-holders skip the write.
* :class:`ClusterRouter` / :class:`ClusterFrontEnd` — the front end:
  routes ``POST /v1/jobs`` to the node already holding the app's
  shards (content-key affinity via gossip + rendezvous hashing,
  falling back to least-loaded), forwards over plain HTTP, and
  monitors in-flight jobs so work on a dead node is reclaimed and
  retried on a peer **under the same trace** (per-attempt ``dispatch``
  spans, exactly like the cold lane's died-worker retries).
* :class:`ClusterHarness` — N real ``backdroid serve`` subprocesses
  over one shared store, with guaranteed teardown: the substrate for
  the fault-injection tests, the CI smoke job and the scaling
  benchmark.

Failure model: nodes fail by *silence* (crash, SIGKILL, partition).
A silent node's manifest goes stale after one TTL, the front end
reclaims its in-flight jobs onto live peers, and the specmap lease —
if the node held it — expires and is reclaimed with a bumped fencing
token.  Everything is advisory and idempotent: the worst outcome of a
race is a duplicate analysis or a skipped specmap write, both of
which the store's content addressing absorbs.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional
from urllib.error import URLError

from repro.core.batch import probe_spec
from repro.service.jobs import TERMINAL_STATES
from repro.service.server import ServiceClient, _ServiceHTTPServer
from repro.store.artifacts import ArtifactStore, set_specmap_guard
from repro.telemetry import tracing
from repro.telemetry.logs import get_logger
from repro.workload.corpus import app_spec_from_request

_log = get_logger("repro.service.cluster")

#: Default lease/heartbeat TTL (seconds): a node silent this long is
#: treated as dead.
DEFAULT_LEASE_TTL = 10.0

#: The lease name guarding spec → content-key mapping writes.
SPECMAP_LEASE = "specmap"


# ----------------------------------------------------------------------
# Lease + directory (thin OO faces over the store primitives)
# ----------------------------------------------------------------------
class SpecmapLease:
    """One node's handle on an advisory store lease.

    ``try_acquire`` both acquires and renews; the store serializes
    reclaim races with an ``O_EXCL`` claim file per fencing-token
    generation (see :meth:`ArtifactStore.acquire_lease`).
    """

    def __init__(
        self,
        store: ArtifactStore,
        owner: str,
        ttl_seconds: float = DEFAULT_LEASE_TTL,
        name: str = SPECMAP_LEASE,
    ) -> None:
        self.store = store
        self.owner = owner
        self.ttl_seconds = ttl_seconds
        self.name = name
        #: Fencing token of the last successful acquire/renew.
        self.token: Optional[int] = None
        #: Successful acquisitions/renewals (observability).
        self.acquisitions = 0

    def try_acquire(self) -> bool:
        """Acquire or renew; False when another owner holds the lease
        (or a reclaim race was lost — just retry next heartbeat)."""
        payload = self.store.acquire_lease(
            self.name, self.owner, self.ttl_seconds
        )
        if payload is None:
            return False
        self.token = payload.get("token")
        self.acquisitions += 1
        return True

    def holds(self) -> bool:
        """Disk-checked ownership: unexpired and ours, right now."""
        lease = self.store.read_lease(self.name)
        if lease is None or lease.get("owner") != self.owner:
            return False
        expires = lease.get("expires_at")
        return isinstance(expires, (int, float)) and expires > time.time()

    def release(self) -> bool:
        return self.store.release_lease(self.name, self.owner)

    def info(self) -> Optional[dict]:
        """The on-disk lease payload (any owner's), or None."""
        return self.store.read_lease(self.name)


class NodeDirectory:
    """The gossip view: every node manifest, aged against one TTL."""

    def __init__(
        self, store: ArtifactStore, ttl_seconds: float = DEFAULT_LEASE_TTL
    ) -> None:
        self.store = store
        self.ttl_seconds = ttl_seconds

    def announce(self, node_id: str, payload: dict) -> None:
        """Publish one heartbeat manifest (stamps ``updated_at``)."""
        self.store.save_node_manifest(node_id, payload)

    def nodes(self, include_stale: bool = False) -> list[dict]:
        """Manifests with computed ``age_seconds``/``stale`` flags;
        stale ones (silent past the TTL) are dropped unless asked for."""
        now = time.time()
        out = []
        for manifest in self.store.load_node_manifests():
            updated = manifest.get("updated_at")
            if not isinstance(updated, (int, float)):
                continue
            age = max(0.0, now - updated)
            manifest = dict(manifest)
            manifest["age_seconds"] = age
            manifest["stale"] = age > self.ttl_seconds
            if manifest["stale"] and not include_stale:
                continue
            out.append(manifest)
        return out

    def live(self) -> dict:
        """``node_id -> manifest`` for every fresh node."""
        return {m["node_id"]: m for m in self.nodes()}

    def remove(self, node_id: str) -> None:
        self.store.remove_node_manifest(node_id)


def install_specmap_guard(
    store_root, node_id: str, lease_name: str = SPECMAP_LEASE
):
    """Gate specmap writes on holding the lease **on disk**.

    Installed before the scheduler is built so the cold lane's forked
    worker processes inherit it; the predicate deliberately reads the
    lease from disk on every call (no captured token or in-memory
    state), so a worker forked long ago still evaluates current
    ownership.  Returns the guard (tests call it directly).
    """
    store = ArtifactStore(store_root)

    def guard() -> bool:
        lease = store.read_lease(lease_name)
        if lease is None or lease.get("owner") != node_id:
            return False
        expires = lease.get("expires_at")
        return isinstance(expires, (int, float)) and expires > time.time()

    set_specmap_guard(store_root, guard)
    return guard


# ----------------------------------------------------------------------
# The per-process cluster agent
# ----------------------------------------------------------------------
class ClusterNode:
    """Heartbeat agent attached to one running ``serve`` process.

    Each beat renews (or tries to reclaim) the specmap lease and
    publishes the node manifest: address, queue depth, busy workers
    and the node's recently served content keys — the gossip a front
    end routes on.  The first beat runs synchronously in
    :meth:`start`, so by the time the serve banner prints the node is
    routable and (if uncontended) the lease has an owner.
    """

    def __init__(
        self,
        scheduler,
        store_root,
        node_id: str,
        address: tuple,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: Optional[float] = None,
        gossip_keys: int = 64,
    ) -> None:
        self.scheduler = scheduler
        self.node_id = node_id
        self.address = address
        self.store = ArtifactStore(store_root)
        self.lease = SpecmapLease(self.store, node_id, lease_ttl)
        self.directory = NodeDirectory(self.store, lease_ttl)
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else max(0.05, lease_ttl / 3.0)
        )
        self.gossip_keys = gossip_keys
        self.beats = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def beat(self) -> None:
        """One heartbeat: lease renew/reclaim attempt + manifest."""
        held = self.lease.try_acquire()
        counts = self.scheduler.queue.counts()["by_state"]
        host, port = self.address
        self.directory.announce(
            self.node_id,
            {
                "host": host,
                "port": int(port),
                "pid": os.getpid(),
                "depth": counts.get("queued", 0) + counts.get("running", 0),
                "busy": sum(
                    lane.busy for lane in self.scheduler.lanes.values()
                ),
                "warm_keys": self.scheduler.warm_keys(self.gossip_keys),
                "lease_held": held,
                "lease_token": self.lease.token,
            },
        )
        self.beats += 1

    def _run(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.beat()
            except OSError:
                # A torn store (disk full, unmounted share) must not
                # kill the agent; the node just looks silent until the
                # store recovers.
                _log.warning(
                    "node %s heartbeat failed", self.node_id, exc_info=True
                )

    def start(self) -> "ClusterNode":
        if self._thread is not None:
            raise RuntimeError("cluster node already started")
        self.beat()  # synchronous: routable before the banner prints
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run,
            name=f"backdroid-node-{self.node_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Withdraw cleanly: stop beating, release the lease, remove
        the manifest, clear the specmap guard."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.lease.release()
            self.directory.remove(self.node_id)
        except OSError:
            pass
        set_specmap_guard(self.store.root, None)

    def __enter__(self) -> "ClusterNode":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Front-end routing
# ----------------------------------------------------------------------
@dataclass
class ClusterJob:
    """The front end's record of one routed submission."""

    id: str
    payload: dict
    package: Optional[str] = None
    #: Routing key (content key, or a spec-fingerprint surrogate).
    key: Optional[str] = None
    node_id: Optional[str] = None
    node_job_id: Optional[str] = None
    #: Dispatches accepted by some node (1 on the happy path).
    attempts: int = 0
    #: ``routed`` → (``reclaimed`` →)* ``done`` | ``failed``
    state: str = "routed"
    error: Optional[str] = None
    trace_id: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    #: Cached terminal snapshot from the executing node.
    snapshot: Optional[dict] = None
    #: Router-side spans, collected when the root span closes.
    trace: Optional[list] = None
    #: Node ids that accepted (then lost) this job — excluded from
    #: reclaim candidates.
    failed_nodes: list = field(default_factory=list)
    _root_span: object = None
    _dispatch_span: object = None


def _rendezvous_score(key: str, node_id: str) -> int:
    digest = hashlib.sha256(f"{key}|{node_id}".encode("utf-8")).hexdigest()
    return int(digest[:8], 16)


class ClusterRouter:
    """Route, forward and babysit jobs across the live nodes.

    Transport-compatible with :class:`ServiceAPI` (``handle(method,
    path, body) -> (status, payload, close)``), so the stock
    ``_ServiceHTTPServer`` serves it unchanged.

    Routing policy, in order:

    1. an explicit ``"node"`` pin in the submission body (tests,
       draining);
    2. the router's own sticky map — the node this key was last
       dispatched to, if still live (affinity without waiting a
       gossip round);
    3. gossip affinity — live nodes advertising the key in their
       ``warm_keys``, highest rendezvous hash wins (``affinity_hits``);
    4. least-loaded (router in-flight + gossiped depth), rendezvous
       hash as the deterministic tiebreak.

    A monitor thread polls in-flight jobs: terminal results are
    cached; a job whose node went silent past the TTL is **reclaimed**
    — re-dispatched to a live peer under the same root span with a
    fresh per-attempt ``dispatch`` span — up to ``max_attempts``
    accepted dispatches.
    """

    def __init__(
        self,
        store_root,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        monitor_interval: Optional[float] = None,
        max_attempts: int = 3,
        retain_jobs: int = 1024,
        client_timeout: float = 10.0,
        tracing_enabled: bool = True,
    ) -> None:
        self.store = ArtifactStore(store_root)
        self.directory = NodeDirectory(self.store, lease_ttl)
        self.lease_ttl = lease_ttl
        self.monitor_interval = (
            monitor_interval
            if monitor_interval is not None
            else max(0.05, lease_ttl / 4.0)
        )
        self.max_attempts = max_attempts
        self.retain_jobs = retain_jobs
        self.client_timeout = client_timeout
        self.tracer = tracing.Tracer(enabled=tracing_enabled)
        self.draining = False
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._records: "dict[str, ClusterJob]" = {}
        self._order: list = []
        #: key -> node_id of the last dispatch (affinity memory).
        self._sticky: dict = {}
        self._clients: dict = {}
        # Routing counters (served under /v1/stats).
        self.routed = 0
        self.affinity_hits = 0
        self.reclaims = 0
        self.forward_failovers = 0
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "ClusterRouter":
        if self._monitor is None:
            self._stop.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="backdroid-cluster-monitor",
                daemon=True,
            )
            self._monitor.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None

    # ------------------------------------------------------------------
    def _client(self, manifest: dict) -> ServiceClient:
        address = (manifest["host"], int(manifest["port"]))
        client = self._clients.get(address)
        if client is None:
            client = self._clients[address] = ServiceClient(
                address[0],
                address[1],
                timeout=self.client_timeout,
                retries=0,
            )
        return client

    def _inflight_by_node(self) -> dict:
        counts: dict = {}
        for record in self._records.values():
            if record.state == "routed" and record.node_id:
                counts[record.node_id] = counts.get(record.node_id, 0) + 1
        return counts

    def _candidates(
        self,
        key: Optional[str],
        live: dict,
        pin: Optional[str] = None,
        exclude: tuple = (),
    ) -> list:
        """Node ids to try, preferred first (see class docstring)."""
        usable = [n for n in live if n not in exclude]
        if not usable:
            return []
        if pin is not None and pin in usable:
            return [pin] + [n for n in usable if n != pin]
        ordered: list = []
        with self._lock:
            sticky = self._sticky.get(key)
            inflight = self._inflight_by_node()
        if sticky in usable:
            ordered.append(sticky)
        if key is not None:
            holders = [
                n
                for n in usable
                if key in (live[n].get("warm_keys") or ())
                and n not in ordered
            ]
            holders.sort(key=lambda n: -_rendezvous_score(key, n))
            if holders and not ordered:
                self.affinity_hits += 1
            ordered.extend(holders)
        rest = [n for n in usable if n not in ordered]
        rest.sort(
            key=lambda n: (
                inflight.get(n, 0) + int(live[n].get("depth") or 0),
                -_rendezvous_score(key or "", n),
            )
        )
        ordered.extend(rest)
        return ordered

    # ------------------------------------------------------------------
    def _dispatch(
        self, record: ClusterJob, live: dict, exclude: tuple = (),
        pin: Optional[str] = None,
    ) -> Optional[dict]:
        """Forward the submission to the first accepting candidate.

        Returns the accepting node's job snapshot, or None when every
        candidate refused/was unreachable (the record is untouched and
        may be retried by the monitor once gossip changes).
        """
        candidates = self._candidates(
            record.key, live, pin=pin, exclude=exclude
        )
        for node_id in candidates:
            manifest = live[node_id]
            dispatch_span = self.tracer.start_span(
                "dispatch",
                parent=record._root_span,
                attrs={"node": node_id, "attempt": record.attempts + 1},
            )
            body = dict(record.payload)
            ctx = dispatch_span.context()
            if ctx is not None:
                body["trace"] = ctx
            try:
                snapshot = self._client(manifest).submit(body)
            except (ValueError, OSError, URLError) as exc:
                # 4xx/5xx (draining, bad body vs this node's rules) or
                # a dead socket: next candidate.
                dispatch_span.set_attrs(forward_error=str(exc))
                dispatch_span.end()
                self.forward_failovers += 1
                continue
            with self._lock:
                record.attempts += 1
                record.node_id = node_id
                record.node_job_id = snapshot.get("id")
                record.state = "routed"
                if record._dispatch_span is not None:
                    record._dispatch_span.end()
                record._dispatch_span = dispatch_span
                dispatch_span.set_attrs(node_job_id=record.node_job_id)
                if record.key is not None:
                    self._sticky[record.key] = node_id
            return snapshot
        return None

    def _finalize(self, record: ClusterJob, snapshot: dict) -> None:
        """Cache a terminal node snapshot and close the trace."""
        with self._lock:
            if record.state in ("done", "failed"):
                return
            record.snapshot = snapshot
            record.state = (
                "done" if snapshot.get("state") == "done" else "failed"
            )
            record.error = snapshot.get("error")
            span, dispatch = record._root_span, record._dispatch_span
            record._root_span = record._dispatch_span = None
        if dispatch is not None:
            dispatch.set_attrs(state=snapshot.get("state"))
            dispatch.end()
        if span is not None and span:
            span.set_attrs(
                state=record.state,
                node=record.node_id,
                attempts=record.attempts,
            )
            span.end()
            record.trace = self.tracer.collect(span.trace_id)

    def _fail(self, record: ClusterJob, error: str) -> None:
        with self._lock:
            if record.state in ("done", "failed"):
                return
            record.state = "failed"
            record.error = error
            span, dispatch = record._root_span, record._dispatch_span
            record._root_span = record._dispatch_span = None
        if dispatch is not None:
            dispatch.end()
        if span is not None and span:
            span.set_attrs(state="failed", error=error)
            span.end()
            record.trace = self.tracer.collect(span.trace_id)

    # ------------------------------------------------------------------
    def _poll_node(
        self, record: ClusterJob, manifest: dict, trace: bool = False
    ) -> Optional[dict]:
        try:
            return self._client(manifest).job(
                record.node_job_id, trace=trace
            )
        except (OSError, URLError, ValueError):
            return None

    def _sweep(self) -> None:
        """One monitor pass over the in-flight records."""
        live = self.directory.live()
        with self._lock:
            pending = [
                r
                for r in self._records.values()
                if r.state in ("routed", "reclaimed")
            ]
        for record in pending:
            if record.state == "routed" and record.node_id in live:
                snapshot = self._poll_node(record, live[record.node_id])
                if snapshot is not None and snapshot.get(
                    "state"
                ) in TERMINAL_STATES:
                    self._finalize(record, snapshot)
                continue
            # The owner is silent (or the record is awaiting a peer):
            # reclaim.
            if record.state == "routed":
                with self._lock:
                    if record.node_id not in record.failed_nodes:
                        record.failed_nodes.append(record.node_id)
                    record.state = "reclaimed"
                    self.reclaims += 1
                    if record._dispatch_span is not None:
                        record._dispatch_span.set_attrs(died=True)
                        record._dispatch_span.end()
                        record._dispatch_span = None
                _log.warning(
                    "node %s went silent; reclaiming job %s "
                    "(attempt %d/%d)",
                    record.node_id,
                    record.id,
                    record.attempts + 1,
                    self.max_attempts,
                    extra={"trace_id": record.trace_id},
                )
            if record.attempts >= self.max_attempts:
                self._fail(
                    record,
                    f"job lost on {record.failed_nodes} after "
                    f"{record.attempts} attempt(s)",
                )
                continue
            snapshot = self._dispatch(
                record, live, exclude=tuple(record.failed_nodes)
            )
            if snapshot is None and not live:
                # No live peers at all; keep waiting for gossip.
                continue

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.monitor_interval):
            try:
                self._sweep()
            except Exception:
                _log.warning("cluster monitor sweep failed", exc_info=True)

    # ------------------------------------------------------------------
    # Transport-facing API (ServiceAPI-compatible)
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, body=None):
        try:
            if method == "GET":
                return self._get(path)
            if method == "POST":
                return self._post(path, body)
            if method == "DELETE":
                return self._delete(path)
        except Exception as exc:  # defensive: a router bug is a 500
            _log.warning("router error on %s %s", method, path,
                         exc_info=True)
            return 500, {"error": f"router error: {exc}"}, True
        return 405, {"error": f"unsupported method {method}"}, True

    def _post(self, path: str, body) -> tuple:
        import json as _json

        if path != "/v1/jobs":
            return 404, {"error": f"no such endpoint {path!r}"}, True
        if self.draining:
            return (
                503,
                {"error": "front end is draining; not accepting "
                          "submissions"},
                True,
            )
        if not body:
            return (
                400,
                {"error": "submission body required (a small JSON "
                          "object)"},
                True,
            )
        try:
            payload = _json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return 400, {"error": "submission body is not valid JSON"}, True
        if not isinstance(payload, dict):
            return 400, {"error": "submission body must be an object"}, True
        pin = payload.pop("node", None)
        try:
            spec = app_spec_from_request(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}, True
        key, _level = probe_spec(spec, self.store)
        live = self.directory.live()
        if not live:
            return 503, {"error": "no live nodes"}, True
        if pin is not None and pin not in live:
            return 400, {"error": f"unknown or dead node {pin!r}"}, True
        record = ClusterJob(
            id=f"cjob-{next(self._ids):06d}",
            payload=payload,
            package=spec.package,
            key=key,
        )
        record._root_span = self.tracer.start_span(
            "cluster.job",
            attrs={"package": spec.package, "job_id": record.id},
        )
        if record._root_span:
            record.trace_id = record._root_span.trace_id
        with self._lock:
            self._records[record.id] = record
            self._order.append(record.id)
            self.routed += 1
            while len(self._order) > self.retain_jobs:
                evicted = self._order.pop(0)
                old = self._records.get(evicted)
                if old is not None and old.state in ("done", "failed"):
                    del self._records[evicted]
                else:
                    self._order.insert(0, evicted)
                    break
        snapshot = self._dispatch(record, live, pin=pin)
        if snapshot is None:
            self._fail(record, "no node accepted the submission")
            return 503, self._view(record), True
        return 202, self._view(record, node_snapshot=snapshot), False

    def _get(self, path: str) -> tuple:
        if path == "/healthz":
            return 200, {"ok": True, "role": "front-end"}, False
        if path == "/v1/stats":
            return 200, self.stats(), False
        if path == "/v1/jobs":
            with self._lock:
                ids = list(self._order)
                records = [self._records[i] for i in ids]
            return 200, {"jobs": [self._view(r) for r in records]}, False
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            want_trace = False
            if "?" in tail:
                tail, _, query = tail.partition("?")
                want_trace = "trace=1" in query
            with self._lock:
                record = self._records.get(tail)
            if record is None:
                return 404, {"error": f"unknown job {tail!r}"}, True
            return 200, self._view(record, trace=want_trace), False
        return 404, {"error": f"no such endpoint {path!r}"}, True

    def _delete(self, path: str) -> tuple:
        if not path.startswith("/v1/jobs/"):
            return 404, {"error": f"no such endpoint {path!r}"}, True
        job_id = path[len("/v1/jobs/"):]
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            return 404, {"error": f"unknown job {job_id!r}"}, True
        if record.state in ("done", "failed"):
            return 409, {"error": f"job {job_id} already {record.state}"}, True
        live = self.directory.live()
        manifest = live.get(record.node_id)
        if manifest is None:
            self._fail(record, "cancelled while its node was silent")
            return 200, self._view(record), False
        try:
            self._client(manifest).cancel(record.node_job_id)
        except KeyError:
            pass
        except (ValueError, OSError, URLError) as exc:
            return 409, {"error": str(exc)}, True
        snapshot = self._poll_node(record, manifest)
        if snapshot is not None and snapshot.get("state") in TERMINAL_STATES:
            self._finalize(record, snapshot)
        return 200, self._view(record), False

    # ------------------------------------------------------------------
    def _view(
        self,
        record: ClusterJob,
        node_snapshot: Optional[dict] = None,
        trace: bool = False,
    ) -> dict:
        """The served job payload: node snapshot + cluster fields."""
        snapshot = record.snapshot or node_snapshot
        if snapshot is None and record.state in ("routed",):
            live = self.directory.live()
            manifest = live.get(record.node_id)
            if manifest is not None:
                snapshot = self._poll_node(record, manifest, trace=trace)
                if snapshot is not None and snapshot.get(
                    "state"
                ) in TERMINAL_STATES:
                    self._finalize(record, snapshot)
                    snapshot = record.snapshot
        if snapshot is not None:
            view = dict(snapshot)
        else:
            view = {
                "package": record.package,
                "state": (
                    "queued" if record.state == "reclaimed"
                    else record.state
                ),
                "result": None,
                "error": record.error,
            }
        view["id"] = record.id
        view["node_id"] = record.node_id
        view["node_job_id"] = record.node_job_id
        view["attempts"] = record.attempts
        view["key"] = record.key
        view["trace_id"] = record.trace_id
        if record.state == "failed":
            view["state"] = "failed"
            view["error"] = record.error
        if trace:
            spans = list(record.trace or [])
            node_trace = (
                snapshot.get("trace") if snapshot is not None else None
            )
            if node_trace:
                spans.extend(node_trace)
            view["trace"] = spans or None
        return view

    def stats(self) -> dict:
        with self._lock:
            states: dict = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            counters = {
                "routed": self.routed,
                "affinity_hits": self.affinity_hits,
                "reclaims": self.reclaims,
                "forward_failovers": self.forward_failovers,
            }
        lease = self.store.read_lease(SPECMAP_LEASE)
        return {
            "role": "front-end",
            "nodes": self.directory.nodes(include_stale=True),
            "lease": lease,
            "jobs": states,
            "routing": counters,
            "draining": self.draining,
        }


class ClusterFrontEnd:
    """The router behind the stock threaded HTTP transport."""

    def __init__(
        self,
        router: ClusterRouter,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.router = router
        self._http = _ServiceHTTPServer((host, port), router)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple:
        return self._http.server_address[0], self._http.server_address[1]

    def start(self) -> "ClusterFrontEnd":
        if self._thread is not None:
            raise RuntimeError("front end already started")
        self.router.start()
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="backdroid-front-end",
            daemon=True,
        )
        self._thread.start()
        return self

    def drain(self) -> None:
        self.router.draining = True

    def shutdown(self) -> None:
        if self._thread is not None:
            self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.router.stop()

    def __enter__(self) -> "ClusterFrontEnd":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# The real-process harness (tests, CI, benchmark)
# ----------------------------------------------------------------------
_BANNER_RE = re.compile(r"http://([\d.]+):(\d+)")


class _NodeProcess:
    """One spawned ``backdroid serve`` node and its log pump."""

    def __init__(self, node_id: str, process: subprocess.Popen) -> None:
        self.node_id = node_id
        self.process = process
        self.address: Optional[tuple] = None
        self.log: list = []
        self._banner = threading.Event()
        self._pump = threading.Thread(
            target=self._drain, name=f"log-{node_id}", daemon=True
        )
        self._pump.start()

    def _drain(self) -> None:
        # Keeps the child's stdout pipe from filling (a full pipe
        # deadlocks the service's print statements) while retaining
        # the log for debugging.
        for line in self.process.stdout:
            self.log.append(line.rstrip("\n"))
            if self.address is None:
                match = _BANNER_RE.search(line)
                if match:
                    self.address = (match.group(1), int(match.group(2)))
                    self._banner.set()
        self._banner.set()  # EOF: unblock waiters even without a banner

    def wait_banner(self, timeout: float) -> tuple:
        if not self._banner.wait(timeout) or self.address is None:
            raise RuntimeError(
                f"node {self.node_id} printed no listen banner; log:\n"
                + "\n".join(self.log[-20:])
            )
        return self.address


class ClusterHarness:
    """N real ``backdroid serve`` subprocesses over one shared store.

    Nodes are spawned sequentially (``n1`` first, so the first node
    deterministically grabs the specmap lease), each on an ephemeral
    port, and health-checked before the next starts.  Teardown is
    guaranteed: ``stop()`` terminates then kills every child, and the
    context manager/fixture finalizer always runs it.
    """

    def __init__(
        self,
        store_dir,
        nodes: int = 2,
        backend: str = "indexed",
        store_mode: str = "index",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        heartbeat_interval: Optional[float] = None,
        workers: int = 1,
        cold_workers: int = 1,
        fast_lane_workers: int = 1,
        session_cache: int = 4,
        rules: str = "",
        env_overrides: Optional[dict] = None,
        extra_args: Optional[list] = None,
        startup_timeout: float = 30.0,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.node_count = nodes
        self.backend = backend
        self.store_mode = store_mode
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = heartbeat_interval
        self.workers = workers
        self.cold_workers = cold_workers
        self.fast_lane_workers = fast_lane_workers
        self.session_cache = session_cache
        self.rules = rules
        self.env_overrides = env_overrides or {}
        self.extra_args = list(extra_args or [])
        self.startup_timeout = startup_timeout
        self.nodes: "dict[str, _NodeProcess]" = {}
        self._front_ends: list = []

    # ------------------------------------------------------------------
    def _spawn(self, node_id: str) -> _NodeProcess:
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        env.update(self.env_overrides.get(node_id, {}))
        cmd = [
            sys.executable,
            "-u",
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--store",
            str(self.store_dir),
            "--store-mode",
            self.store_mode,
            "--backend",
            self.backend,
            "--node-id",
            node_id,
            "--lease-ttl",
            str(self.lease_ttl),
            "--workers",
            str(self.workers),
            "--cold-workers",
            str(self.cold_workers),
            "--fast-lane-workers",
            str(self.fast_lane_workers),
            "--session-cache",
            str(self.session_cache),
        ]
        if self.heartbeat_interval is not None:
            cmd += ["--heartbeat-interval", str(self.heartbeat_interval)]
        if self.rules:
            cmd += ["--rules", self.rules]
        cmd += self.extra_args
        process = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        return _NodeProcess(node_id, process)

    def start(self) -> "ClusterHarness":
        try:
            for index in range(1, self.node_count + 1):
                node_id = f"n{index}"
                node = self._spawn(node_id)
                self.nodes[node_id] = node
                host, port = node.wait_banner(self.startup_timeout)
                self._wait_health(host, port)
        except BaseException:
            self.stop()
            raise
        return self

    def _wait_health(self, host: str, port: int) -> None:
        client = ServiceClient(host, port, timeout=2.0, retries=0)
        deadline = time.time() + self.startup_timeout
        while True:
            try:
                if client.health().get("ok"):
                    return
            except (OSError, URLError, ValueError):
                pass
            if time.time() > deadline:
                raise RuntimeError(f"node at {host}:{port} never healthy")
            time.sleep(0.05)

    # ------------------------------------------------------------------
    def endpoints(self) -> list:
        """Live ``(host, port)`` pairs, spawn order."""
        return [
            node.address
            for node in self.nodes.values()
            if node.address is not None
        ]

    def client(self, node_id: str, **kwargs) -> ServiceClient:
        node = self.nodes[node_id]
        host, port = node.wait_banner(self.startup_timeout)
        kwargs.setdefault("timeout", 10.0)
        return ServiceClient(host, port, **kwargs)

    def front_end(self, **kwargs) -> ClusterFrontEnd:
        """A started front end routing over this harness's store."""
        kwargs.setdefault("lease_ttl", self.lease_ttl)
        front = ClusterFrontEnd(
            ClusterRouter(self.store_dir, **kwargs)
        ).start()
        self._front_ends.append(front)
        return front

    # ------------------------------------------------------------------
    def kill_node(self, node_id: str, sig: int = signal.SIGKILL) -> None:
        """Fault injection: deliver ``sig`` (default SIGKILL) now."""
        node = self.nodes[node_id]
        try:
            node.process.send_signal(sig)
        except ProcessLookupError:
            pass
        node.process.wait(timeout=10.0)

    def stop(self) -> None:
        """Terminate every child; escalate to SIGKILL after a grace."""
        for front in self._front_ends:
            try:
                front.shutdown()
            except Exception:
                pass
        self._front_ends = []
        for node in self.nodes.values():
            if node.process.poll() is None:
                try:
                    node.process.terminate()
                except ProcessLookupError:
                    pass
        deadline = time.time() + 5.0
        for node in self.nodes.values():
            while node.process.poll() is None and time.time() < deadline:
                time.sleep(0.05)
            if node.process.poll() is None:
                try:
                    node.process.kill()
                except ProcessLookupError:
                    pass
                node.process.wait(timeout=10.0)

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
