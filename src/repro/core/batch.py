"""Corpus-scale batch analysis: many apps, one worker pool.

The paper vets one app at a time; serving corpus-scale traffic means
analyzing thousands.  This driver fans a list of generatable
:class:`~repro.workload.generator.AppSpec` recipes across a
``concurrent.futures`` pool (threads by default; processes for CPU-bound
corpora — the worker is a module-level function precisely so it
pickles), collects one compact :class:`AppOutcome` per app, and
aggregates the statistics the paper reports per app (analysis time,
command/sink cache rates, findings) across the whole run.

A failing app never aborts the batch: its exception is captured in
``AppOutcome.error`` and surfaces in the aggregate failure count,
mirroring how the paper's corpus runs tolerate per-app analyzer errors
(Sec. VI-C).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import statistics
import time
from concurrent.futures import (
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.backdroid import BackDroidConfig
from repro.store import WARM_LEVELS, ArtifactStore, store_key
from repro.telemetry import tracing
from repro.workload.generator import AppSpec, generate_app, spec_fingerprint

#: Executor kinds selectable from the CLI.
EXECUTORS = ("thread", "process", "serial")


@dataclass(frozen=True)
class AppOutcome:
    """One app's per-run summary (cheap to pickle across processes)."""

    package: str
    seconds: float = 0.0
    method_count: int = 0
    sink_count: int = 0
    reachable_sinks: int = 0
    findings: tuple[tuple[str, str], ...] = ()  # (rule, class)
    search_cache_rate: float = 0.0
    search_cache_evictions: int = 0
    sink_cache_rate: float = 0.0
    backend: str = "linear"
    #: Served whole from the warm-start store (``seconds`` is then the
    #: restore time, not an analysis time).
    store_hit: bool = False
    #: The indexed backend restored its posting lists instead of folding
    #: the token stream.
    index_restored: bool = False
    #: Shard groups the store re-folded during a warm-partial restore
    #: (0 for cold builds and full-shard restores).
    shards_patched: int = 0
    #: Time this run spent building an inverted index (0.0 whenever the
    #: index was restored, the outcome was served from the store, or the
    #: linear backend ran).
    index_build_seconds: float = 0.0
    #: Shard groups a lazy restore decoded for this app's queries (0
    #: for cold builds and eager restores).
    materialized_groups: int = 0
    #: Shard bytes mmapped by this app's lazy restore.
    bytes_mapped: int = 0
    #: Shard bytes actually decoded; ``bytes_mapped - bytes_decoded``
    #: is what laziness avoided parsing.
    bytes_decoded: int = 0
    #: Which dispatch lane ran the app (store-aware scheduling).
    lane: str = "main"
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def finding_count(self) -> int:
        return len(self.findings)

    @property
    def vulnerable(self) -> bool:
        return bool(self.findings)


def outcome_payload(outcome: AppOutcome) -> dict:
    """A JSON-able snapshot of one outcome (store entries, service
    results, ``--json`` output).

    Carries the shared envelope ``schema_version`` so every serialized
    result in the system — full report envelopes, store outcomes, HTTP
    job payloads — is versioned by one constant.
    """
    from repro.api.envelope import SCHEMA_VERSION

    payload = dataclasses.asdict(outcome)
    payload["findings"] = [list(f) for f in outcome.findings]
    payload["schema_version"] = SCHEMA_VERSION
    return payload


def _outcome_from_payload(payload: dict) -> AppOutcome:
    """Rebuild an outcome from its stored snapshot (raises on mismatch)."""
    from repro.api.envelope import SCHEMA_VERSION

    kwargs = dict(payload)
    if kwargs.pop("schema_version", None) != SCHEMA_VERSION:
        raise ValueError("outcome payload schema_version mismatch")
    names = {f.name for f in dataclasses.fields(AppOutcome)}
    if not names.issuperset(kwargs):
        raise ValueError("unknown outcome fields in store payload")
    kwargs["findings"] = tuple(
        (str(rule), str(cls)) for rule, cls in kwargs.get("findings", ())
    )
    return AppOutcome(**kwargs)


def _outcome_fingerprint(config: BackDroidConfig, registry=None) -> str:
    """The store key suffix finished outcomes are cached under.

    A custom registry changes detectors (and hence findings), so its
    fingerprint must key the outcome cache alongside the config's.
    """
    fingerprint = config.store_fingerprint()
    if registry is not None:
        fingerprint = hashlib.sha256(
            f"{fingerprint}|{registry.fingerprint()}".encode()
        ).hexdigest()[:16]
    return fingerprint


def analyze_spec(
    spec: AppSpec,
    config: Optional[BackDroidConfig] = None,
    request=None,
    sessions=None,
    registry=None,
) -> AppOutcome:
    """Generate and analyze one app; never raises (errors are captured).

    With a ``"full"``-mode store configured, a finished outcome for the
    same bytecode and config is restored instead of re-analyzed; the
    returned outcome then has ``store_hit`` set and reports the restore
    time as its ``seconds``.

    ``request`` (an :class:`~repro.api.request.AnalysisRequest`)
    overrides the config's targets/knobs for this run.  ``sessions`` (a
    :class:`~repro.api.session.SessionCache`) lets repeated runs against
    one recipe — including differently-targeted ones — share a warm
    :class:`~repro.api.session.AnalysisSession` instead of regenerating
    and re-indexing the app.  ``registry`` threads client sink specs and
    detectors into the session.
    """
    from repro.api.request import AnalysisRequest
    from repro.api.session import AnalysisSession

    config = config if config is not None else BackDroidConfig()
    effective = request.to_config(config) if request is not None else config
    try:
        # Sessions are only interchangeable when every session-level
        # input matches: the app recipe, the registry driving sink
        # specs/detectors, and the config knobs the session captures at
        # construction (store, cache bound).  Keying on all of them
        # keeps a shared cache correct across differently-configured
        # callers.
        cache_key = "|".join((
            spec_fingerprint(spec),
            registry.fingerprint() if registry is not None else "default",
            repr(effective.store_dir),
            repr(effective.store_mode),
            repr(effective.search_cache_max_entries),
        ))
        session = sessions.get(cache_key) if sessions is not None else None
        with tracing.span(
            "app.generate",
            attrs={"package": spec.package, "session_reused": session is not None},
        ):
            apk = session.apk if session is not None else generate_app(spec).apk
            # Render the plaintext up front: preprocessing is paid
            # identically by cold and warm paths, so neither the restore
            # time below nor the analysis time should include it.
            apk.disassembly
        started = time.perf_counter()
        store = effective.artifact_store()
        outcome_fp = _outcome_fingerprint(effective, registry)
        if store is not None:
            # Teach the store which content key this recipe hashes to, so
            # future scheduler probes resolve it without generating.
            store.save_spec_key(
                spec_fingerprint(spec), store_key(apk.disassembly)
            )
        reuse_outcomes = store is not None and effective.store_mode == "full"
        if reuse_outcomes:
            with tracing.span("store.outcome_restore") as outcome_span:
                payload = store.load_outcome(apk.disassembly, outcome_fp)
                outcome_span.set_attr("hit", payload is not None)
                if payload is not None:
                    try:
                        restored = _outcome_from_payload(payload)
                    except (TypeError, ValueError):
                        # corrupt snapshot: fall through to re-analysis
                        outcome_span.set_attr("hit", False)
                    else:
                        return dataclasses.replace(
                            restored,
                            seconds=time.perf_counter() - started,
                            store_hit=True,
                            index_build_seconds=0.0,
                        )
        if session is None:
            session = AnalysisSession.from_config(
                apk, effective, registry=registry
            )
            if sessions is not None:
                sessions.put(cache_key, session)
        run_request = (
            request
            if request is not None
            else AnalysisRequest.from_config(effective)
        )
        if run_request.backend is None:
            # Pin the backend explicitly: a cached session may carry a
            # different default than this run's config.
            run_request = dataclasses.replace(
                run_request, backend=effective.search_backend
            )
        report = session.run(run_request).report
        outcome = AppOutcome(
            package=apk.package,
            seconds=report.analysis_seconds,
            method_count=apk.method_count(),
            sink_count=report.sink_count,
            reachable_sinks=report.reachable_sink_count,
            findings=tuple(
                (f.rule, f.method.class_name) for f in report.findings
            ),
            search_cache_rate=report.search_cache_rate,
            search_cache_evictions=report.search_cache_evictions,
            sink_cache_rate=report.sink_cache_rate,
            backend=report.search_backend,
            index_restored=bool(
                report.backend_stats.get("index_restored", False)
            ),
            shards_patched=int(
                report.backend_stats.get("shards_patched", 0)
            ),
            index_build_seconds=float(
                report.backend_stats.get("index_build_seconds", 0.0)
            ),
            materialized_groups=int(
                report.backend_stats.get("materialized_groups", 0)
            ),
            bytes_mapped=int(report.backend_stats.get("bytes_mapped", 0)),
            bytes_decoded=int(report.backend_stats.get("bytes_decoded", 0)),
        )
        if reuse_outcomes:
            store.save_outcome(
                apk.disassembly, outcome_fp, outcome_payload(outcome)
            )
        return outcome
    except Exception as exc:  # noqa: BLE001 - batch isolation by design
        return AppOutcome(
            package=spec.package, error=f"{type(exc).__name__}: {exc}"
        )


def probe_spec(
    spec: AppSpec,
    store: Optional[ArtifactStore],
    config_fingerprint: Optional[str] = None,
) -> tuple[str, str]:
    """``(dedup_key, probe_level)`` for one submission, without generating.

    The dedup key is the app's disassembly sha when the store has seen
    the recipe before (so two specs producing identical bytecode
    coalesce), and a spec-fingerprint surrogate otherwise — still stable
    across duplicate submissions of the same recipe.
    """
    fingerprint = spec_fingerprint(spec)
    if store is None:
        return f"spec:{fingerprint}", "none"
    key = store.load_spec_key(fingerprint)
    if key is None:
        return f"spec:{fingerprint}", "none"
    return key, store.probe(key, config_fingerprint).level


def level_is_warm(level: str, config: BackDroidConfig) -> bool:
    """Whether a probe level means *cheap under this config*.

    An outcome-level hit (already fingerprint-matched to the config) is
    warm whenever outcomes may be reused (``"full"`` mode).  An index-
    or partial-level hit only saves work for the indexed backend — the
    linear scan never restores posting lists, so for it a stored index
    is not warmth, it is a full-cost analysis.  A *partial* hit (some
    shards present, e.g. another app already published this app's
    libraries) still rides the fast lane: composing the present shards
    and re-folding only the missing groups is far cheaper than a cold
    build.
    """
    if level not in WARM_LEVELS:
        return False
    if level == "outcome" and config.store_mode == "full":
        return True
    return config.search_backend == "indexed"


def plan_lanes(
    specs: Sequence[AppSpec], config: BackDroidConfig
) -> list[str]:
    """The store-aware lane of every spec (``"fast"`` or ``"main"``)."""
    store = config.artifact_store()
    if store is None:
        return ["main"] * len(specs)
    config_fingerprint = config.store_fingerprint()
    return [
        "fast"
        if level_is_warm(
            probe_spec(spec, store, config_fingerprint)[1], config
        )
        else "main"
        for spec in specs
    ]


@dataclass
class BatchResult:
    """Per-app outcomes plus run-level aggregates."""

    outcomes: list[AppOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    executor: str = "thread"
    backend: str = "linear"
    #: Whether a warm-start store was configured for this run (hit/miss
    #: lines are only rendered when it was).
    store_enabled: bool = False

    # ------------------------------------------------------------------
    @property
    def analyzed(self) -> list[AppOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[AppOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def app_count(self) -> int:
        return len(self.outcomes)

    @property
    def total_analysis_seconds(self) -> float:
        return sum(o.seconds for o in self.analyzed)

    @property
    def total_sinks(self) -> int:
        return sum(o.sink_count for o in self.analyzed)

    @property
    def total_findings(self) -> int:
        return sum(o.finding_count for o in self.analyzed)

    @property
    def vulnerable_apps(self) -> int:
        return sum(1 for o in self.analyzed if o.vulnerable)

    @property
    def mean_seconds(self) -> float:
        rows = self.analyzed
        return statistics.fmean(o.seconds for o in rows) if rows else 0.0

    @property
    def median_seconds(self) -> float:
        rows = self.analyzed
        return statistics.median(o.seconds for o in rows) if rows else 0.0

    @property
    def mean_search_cache_rate(self) -> float:
        rows = self.analyzed
        return (
            statistics.fmean(o.search_cache_rate for o in rows) if rows else 0.0
        )

    @property
    def mean_sink_cache_rate(self) -> float:
        rows = self.analyzed
        return (
            statistics.fmean(o.sink_cache_rate for o in rows) if rows else 0.0
        )

    @property
    def store_hits(self) -> int:
        """Apps whose finished outcome was served from the warm store."""
        return sum(1 for o in self.analyzed if o.store_hit)

    @property
    def store_misses(self) -> int:
        return len(self.analyzed) - self.store_hits

    @property
    def warm_hit_rate(self) -> float:
        rows = self.analyzed
        return self.store_hits / len(rows) if rows else 0.0

    @property
    def index_restores(self) -> int:
        """Apps whose inverted index was restored instead of rebuilt."""
        return sum(1 for o in self.analyzed if o.index_restored)

    @property
    def partial_restores(self) -> int:
        """Apps restored warm-partial (some shards patched in place)."""
        return sum(1 for o in self.analyzed if o.shards_patched > 0)

    @property
    def shards_patched(self) -> int:
        """Total shard groups re-folded across all warm-partial apps."""
        return sum(o.shards_patched for o in self.analyzed)

    @property
    def lazy_restores(self) -> int:
        """Apps restored lazily (mmapped shards, on-demand decode)."""
        return sum(1 for o in self.analyzed if o.materialized_groups > 0
                   or o.bytes_mapped > 0)

    @property
    def groups_materialized(self) -> int:
        """Total shard groups decoded across all lazy restores."""
        return sum(o.materialized_groups for o in self.analyzed)

    @property
    def total_bytes_mapped(self) -> int:
        return sum(o.bytes_mapped for o in self.analyzed)

    @property
    def total_bytes_decoded(self) -> int:
        return sum(o.bytes_decoded for o in self.analyzed)

    @property
    def fast_lane_apps(self) -> int:
        """Apps the up-front store probe routed to the warm fast lane."""
        return sum(1 for o in self.outcomes if o.lane == "fast")

    @property
    def main_lane_apps(self) -> int:
        return len(self.outcomes) - self.fast_lane_apps

    @property
    def speedup_over_serial(self) -> float:
        """Summed per-app time / wall time — the pool's effective overlap."""
        return (
            self.total_analysis_seconds / self.wall_seconds
            if self.wall_seconds
            else 0.0
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Per-app rows plus the aggregate block, ready to print."""
        lines = [
            f"{'app':34}  {'methods':>7}  {'sinks':>5}  {'reach':>5}  "
            f"{'vulns':>5}  {'time(s)':>8}  {'cache':>7}"
        ]
        for o in self.outcomes:
            if o.ok:
                warm = "  [warm]" if o.store_hit else ""
                lines.append(
                    f"{o.package:34}  {o.method_count:7d}  {o.sink_count:5d}  "
                    f"{o.reachable_sinks:5d}  {o.finding_count:5d}  "
                    f"{o.seconds:8.3f}  {o.search_cache_rate:6.1%}{warm}"
                )
            else:
                lines.append(f"{o.package:34}  ERROR: {o.error}")
        lines.append("")
        lines.append(
            f"batch: {self.app_count} apps "
            f"({len(self.failures)} failed), backend={self.backend}, "
            f"{self.workers} {self.executor} worker(s)"
        )
        lines.append(
            f"  wall time      : {self.wall_seconds:.3f}s "
            f"(sum of per-app: {self.total_analysis_seconds:.3f}s, "
            f"overlap {self.speedup_over_serial:.2f}x)"
        )
        lines.append(
            f"  per-app time   : mean {self.mean_seconds:.3f}s, "
            f"median {self.median_seconds:.3f}s"
        )
        lines.append(
            f"  cache rates    : search {self.mean_search_cache_rate:.2%}, "
            f"sink {self.mean_sink_cache_rate:.2%} (per-app averages)"
        )
        lines.append(
            f"  findings       : {self.total_findings} across "
            f"{self.vulnerable_apps} vulnerable app(s), "
            f"{self.total_sinks} sinks analyzed"
        )
        if self.store_enabled:
            lines.append(
                f"  store          : {self.store_hits} hit(s) / "
                f"{self.store_misses} miss(es) "
                f"({self.warm_hit_rate:.0%} warm), "
                f"{self.index_restores} restored index(es), "
                f"{self.partial_restores} partial "
                f"({self.shards_patched} shard(s) patched)"
            )
            if self.lazy_restores:
                lines.append(
                    f"  lazy restores  : {self.lazy_restores} app(s), "
                    f"{self.groups_materialized} group(s) materialized, "
                    f"{self.total_bytes_decoded} of "
                    f"{self.total_bytes_mapped} mapped byte(s) decoded"
                )
            lines.append(
                f"  lanes          : {self.fast_lane_apps} fast / "
                f"{self.main_lane_apps} main (store-aware dispatch)"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """A machine-readable snapshot (the CLI's ``--json`` output)."""
        from repro.api.envelope import SCHEMA_VERSION

        aggregate = {
            "app_count": self.app_count,
            "failed": len(self.failures),
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "executor": self.executor,
            "backend": self.backend,
            "total_analysis_seconds": self.total_analysis_seconds,
            "mean_seconds": self.mean_seconds,
            "median_seconds": self.median_seconds,
            "speedup_over_serial": self.speedup_over_serial,
            "mean_search_cache_rate": self.mean_search_cache_rate,
            "mean_sink_cache_rate": self.mean_sink_cache_rate,
            "total_sinks": self.total_sinks,
            "total_findings": self.total_findings,
            "vulnerable_apps": self.vulnerable_apps,
            "store_enabled": self.store_enabled,
        }
        if self.store_enabled:
            aggregate["store"] = {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "warm_hit_rate": self.warm_hit_rate,
                "index_restores": self.index_restores,
                "partial_restores": self.partial_restores,
                "shards_patched": self.shards_patched,
                "lazy_restores": self.lazy_restores,
                "groups_materialized": self.groups_materialized,
                "bytes_mapped": self.total_bytes_mapped,
                "bytes_decoded": self.total_bytes_decoded,
                "fast_lane_apps": self.fast_lane_apps,
                "main_lane_apps": self.main_lane_apps,
            }
        return {
            "schema_version": SCHEMA_VERSION,
            "apps": [outcome_payload(o) for o in self.outcomes],
            "aggregate": aggregate,
        }


def _make_executor(kind: str, max_workers: Optional[int]) -> Executor:
    if kind == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    if kind == "process":
        return ProcessPoolExecutor(max_workers=max_workers)
    raise ValueError(f"unknown executor {kind!r}: choose from {EXECUTORS}")


def resolve_worker_count(
    executor: str, max_workers: Optional[int] = None
) -> int:
    """The pool size a run will use, computed from public inputs.

    Mirrors the ``concurrent.futures`` documented defaults instead of
    poking the executor's private ``_max_workers`` attribute.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}: choose from {EXECUTORS}"
        )
    if executor == "serial":
        return 1
    if max_workers is not None:
        return max_workers
    cpus = os.cpu_count() or 1
    if executor == "thread":
        # ThreadPoolExecutor's documented default since Python 3.8.
        return min(32, cpus + 4)
    return cpus


def run_batch(
    specs: Sequence[AppSpec],
    config: Optional[BackDroidConfig] = None,
    max_workers: Optional[int] = None,
    executor: str = "thread",
    progress: Optional[Callable[[AppOutcome], None]] = None,
    request=None,
    session_cache_size: int = 4,
) -> BatchResult:
    """Analyze every spec across a worker pool, preserving input order.

    ``executor`` is ``"thread"`` (default: safe everywhere, overlaps
    generation and I/O), ``"process"`` (true CPU parallelism for large
    corpora) or ``"serial"`` (in-process, for debugging/determinism).
    ``progress`` is invoked with each outcome as it completes.

    ``request`` (an :class:`~repro.api.request.AnalysisRequest`)
    overrides the config's targets/knobs for every app in the run.  For
    in-process executors (``thread``/``serial``) a bounded
    :class:`~repro.api.session.SessionCache` of ``session_cache_size``
    warm sessions is shared across the run, so duplicate specs reuse
    one generated app and one built index (process pools cannot share
    sessions; pass ``session_cache_size=0`` to disable sharing).

    With a store configured, every spec is probed up front
    (:func:`plan_lanes`) and warm apps are dispatched first — the cheap
    fast-lane work drains ahead of the cold pool instead of queueing
    behind it.  The result (and its rendered table) stays in input
    order regardless of dispatch order.
    """
    config = config if config is not None else BackDroidConfig()
    effective = request.to_config(config) if request is not None else config
    started = time.perf_counter()
    outcomes: list[Optional[AppOutcome]] = [None] * len(specs)
    workers = resolve_worker_count(executor, max_workers)
    lanes = plan_lanes(specs, effective)
    sessions = None
    if executor != "process" and session_cache_size > 0:
        from repro.api.session import SessionCache

        sessions = SessionCache(max_sessions=session_cache_size)
    # Warm-first priority; ties keep input order, so dispatch stays
    # deterministic.
    order = sorted(
        range(len(specs)), key=lambda i: (0 if lanes[i] == "fast" else 1, i)
    )

    def _with_lane(index: int, outcome: AppOutcome) -> AppOutcome:
        return dataclasses.replace(outcome, lane=lanes[index])

    if executor == "serial":
        for i in order:
            outcomes[i] = _with_lane(
                i, analyze_spec(specs[i], config, request, sessions)
            )
            if progress is not None:
                progress(outcomes[i])
    else:
        if executor == "process":
            # The shared worker entry point (also the service's cold
            # lane): one module-level function crosses the process
            # boundary, so batch and serve ship identical work.
            # Imported lazily — the service package imports this module.
            from repro.service.workers import run_analysis

            def _submit(pool, i):
                return pool.submit(run_analysis, specs[i], config, request)
        else:
            def _submit(pool, i):
                return pool.submit(
                    analyze_spec, specs[i], config, request, sessions
                )
        with _make_executor(executor, max_workers) as pool:
            futures = {_submit(pool, i): i for i in order}
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:  # noqa: BLE001 - e.g. a worker
                    # process died (BrokenProcessPool): record it against
                    # the spec instead of aborting the whole batch.
                    outcome = AppOutcome(
                        package=specs[index].package,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                outcomes[index] = _with_lane(index, outcome)
                if progress is not None:
                    progress(outcomes[index])

    return BatchResult(
        outcomes=[o for o in outcomes if o is not None],
        wall_seconds=time.perf_counter() - started,
        workers=workers,
        executor=executor,
        backend=effective.search_backend,
        store_enabled=effective.store_dir is not None,
    )
